//! Parser for the SMT-LIB2 CHC subset accepted by the original RInGen.
//!
//! Supported commands: `set-logic`, `set-info`, `set-option`,
//! `declare-sort`, `declare-datatype`, `declare-datatypes` (SMT-LIB 2.6
//! arity-list syntax), `declare-fun`, `declare-const`, `assert`,
//! `check-sat`, `get-model`, `exit`. Assertions must be Horn:
//! `(forall (...) (=> body head))`, `(forall (...) (not body))`,
//! `(assert (not (exists (...) body)))` or quantifier-free variants.
//!
//! Terms may use constructors, previously declared free functions,
//! selectors and `(_ is c)` testers.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ringen_terms::{Signature, SortId, Term, VarContext, VarId};

use crate::formula::{formula_to_clauses, FAtom, Formula};
use crate::system::{ChcSystem, Relations};

/// A parse failure, with a 1-based line number when available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line where the error was detected (1-based, 0 when unknown).
    pub line: usize,
    /// Description of the failure.
    pub message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl Error for ParseError {}

/// An S-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sexp {
    Atom(String, usize),
    List(Vec<Sexp>, usize),
}

impl Sexp {
    fn line(&self) -> usize {
        match self {
            Sexp::Atom(_, l) | Sexp::List(_, l) => *l,
        }
    }

    fn as_atom(&self) -> Option<&str> {
        match self {
            Sexp::Atom(s, _) => Some(s),
            Sexp::List(..) => None,
        }
    }

    fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::List(items, _) => Some(items),
            Sexp::Atom(..) => None,
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<(String, usize)>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '(' | ')' => {
                out.push((c.to_string(), line));
                chars.next();
            }
            '|' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('|') => break,
                        Some('\n') => {
                            line += 1;
                            s.push('\n');
                        }
                        Some(c) => s.push(c),
                        None => return Err(ParseError::new(line, "unterminated |symbol|")),
                    }
                }
                out.push((s, line));
            }
            '"' => {
                chars.next();
                let mut s = String::from("\"");
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') => {
                            line += 1;
                            s.push('\n');
                        }
                        Some(c) => s.push(c),
                        None => return Err(ParseError::new(line, "unterminated string")),
                    }
                }
                out.push((s, line));
            }
            _ => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' {
                        break;
                    }
                    s.push(c);
                    chars.next();
                }
                out.push((s, line));
            }
        }
    }
    Ok(out)
}

fn parse_sexps(input: &str) -> Result<Vec<Sexp>, ParseError> {
    let tokens = tokenize(input)?;
    let mut stack: Vec<(Vec<Sexp>, usize)> = Vec::new();
    let mut top: Vec<Sexp> = Vec::new();
    for (tok, line) in tokens {
        match tok.as_str() {
            "(" => stack.push((std::mem::take(&mut top), line)),
            ")" => {
                let (mut parent, open_line) = stack
                    .pop()
                    .ok_or_else(|| ParseError::new(line, "unbalanced ')'"))?;
                let list = Sexp::List(std::mem::take(&mut top), open_line);
                parent.push(list);
                top = parent;
            }
            _ => top.push(Sexp::Atom(tok, line)),
        }
    }
    if let Some((_, line)) = stack.pop() {
        return Err(ParseError::new(line, "unbalanced '('"));
    }
    Ok(top)
}

/// Parses a full SMT-LIB CHC script into a [`ChcSystem`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending command.
///
/// # Example
///
/// ```
/// let src = r#"
///   (set-logic HORN)
///   (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
///   (declare-fun even (Nat) Bool)
///   (assert (even Z))
///   (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
///   (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
///   (check-sat)
/// "#;
/// let sys = ringen_chc::parse_str(src)?;
/// assert_eq!(sys.clauses.len(), 3);
/// assert_eq!(sys.queries().count(), 1);
/// # Ok::<(), ringen_chc::ParseError>(())
/// ```
pub fn parse_str(input: &str) -> Result<ChcSystem, ParseError> {
    let sexps = parse_sexps(input)?;
    let mut p = Parser::default();
    for s in &sexps {
        p.command(s)?;
    }
    let sys = ChcSystem {
        sig: p.sig,
        rels: p.rels,
        clauses: p.clauses,
    };
    sys.well_sorted()
        .map_err(|e| ParseError::new(0, e.to_string()))?;
    Ok(sys)
}

#[derive(Default)]
struct Parser {
    sig: Signature,
    rels: Relations,
    clauses: Vec<crate::system::Clause>,
    /// Free functions introduced by declare-fun with non-Bool range.
    selectors_by_name: HashMap<String, ()>,
}

impl Parser {
    fn command(&mut self, s: &Sexp) -> Result<(), ParseError> {
        let items = s
            .as_list()
            .ok_or_else(|| ParseError::new(s.line(), "expected a command list"))?;
        let head = items
            .first()
            .and_then(Sexp::as_atom)
            .ok_or_else(|| ParseError::new(s.line(), "expected a command name"))?;
        match head {
            "set-logic" | "set-info" | "set-option" | "check-sat" | "get-model" | "exit"
            | "get-info" => Ok(()),
            "declare-sort" => self.declare_sort(items, s.line()),
            "declare-datatype" => self.declare_datatype_single(items, s.line()),
            "declare-datatypes" => self.declare_datatypes(items, s.line()),
            "declare-fun" => self.declare_fun(items, s.line()),
            "declare-const" => self.declare_const(items, s.line()),
            "assert" => self.assert(items, s.line()),
            other => Err(ParseError::new(
                s.line(),
                format!("unsupported command {other:?}"),
            )),
        }
    }

    fn declare_sort(&mut self, items: &[Sexp], line: usize) -> Result<(), ParseError> {
        let name = items
            .get(1)
            .and_then(Sexp::as_atom)
            .ok_or_else(|| ParseError::new(line, "declare-sort needs a name"))?;
        if self.sig.sort_by_name(name).is_some() {
            return Err(ParseError::new(line, format!("duplicate sort {name:?}")));
        }
        self.sig.add_sort(name);
        Ok(())
    }

    fn sort_by_name(&mut self, name: &str, line: usize) -> Result<SortId, ParseError> {
        self.sig
            .sort_by_name(name)
            .ok_or_else(|| ParseError::new(line, format!("unknown sort {name:?}")))
    }

    /// `(declare-datatype T ((c (sel S) ...) ...))`
    fn declare_datatype_single(&mut self, items: &[Sexp], line: usize) -> Result<(), ParseError> {
        let name = items
            .get(1)
            .and_then(Sexp::as_atom)
            .ok_or_else(|| ParseError::new(line, "declare-datatype needs a name"))?;
        let ctors = items
            .get(2)
            .and_then(Sexp::as_list)
            .ok_or_else(|| ParseError::new(line, "declare-datatype needs constructors"))?;
        if self.sig.sort_by_name(name).is_some() {
            return Err(ParseError::new(line, format!("duplicate sort {name:?}")));
        }
        self.sig.add_sort(name);
        let sort = self.sig.sort_by_name(name).expect("just added");
        self.add_ctor_group(sort, ctors)
    }

    /// `(declare-datatypes ((T1 0) (T2 0)) ((ctors1...) (ctors2...)))`,
    /// also accepting the pre-2.6 `((T1) (T2))` name list.
    fn declare_datatypes(&mut self, items: &[Sexp], line: usize) -> Result<(), ParseError> {
        let names = items
            .get(1)
            .and_then(Sexp::as_list)
            .ok_or_else(|| ParseError::new(line, "declare-datatypes needs a sort list"))?;
        let bodies = items
            .get(2)
            .and_then(Sexp::as_list)
            .ok_or_else(|| ParseError::new(line, "declare-datatypes needs constructor lists"))?;
        if names.len() != bodies.len() {
            return Err(ParseError::new(
                line,
                "declare-datatypes: sort and constructor lists differ in length",
            ));
        }
        // Declare all sorts first so mutually recursive ADTs resolve.
        let mut sorts = Vec::new();
        for n in names {
            let name = match n {
                Sexp::Atom(a, _) => a.as_str(),
                Sexp::List(items, l) => items
                    .first()
                    .and_then(Sexp::as_atom)
                    .ok_or_else(|| ParseError::new(*l, "bad sort declaration"))?,
            };
            if self.sig.sort_by_name(name).is_some() {
                return Err(ParseError::new(line, format!("duplicate sort {name:?}")));
            }
            self.sig.add_sort(name);
            sorts.push(self.sig.sort_by_name(name).expect("just added"));
        }
        for (sort, body) in sorts.into_iter().zip(bodies) {
            let ctors = body
                .as_list()
                .ok_or_else(|| ParseError::new(body.line(), "expected constructor list"))?;
            self.add_ctor_group(sort, ctors)?;
        }
        Ok(())
    }

    fn add_ctor_group(&mut self, sort: SortId, ctors: &[Sexp]) -> Result<(), ParseError> {
        for c in ctors {
            match c {
                Sexp::Atom(name, _) => {
                    self.sig.add_constructor(name, vec![], sort);
                }
                Sexp::List(items, l) => {
                    let name = items
                        .first()
                        .and_then(Sexp::as_atom)
                        .ok_or_else(|| ParseError::new(*l, "constructor needs a name"))?;
                    let mut domain = Vec::new();
                    let mut sel_names = Vec::new();
                    for field in &items[1..] {
                        let f = field
                            .as_list()
                            .ok_or_else(|| ParseError::new(*l, "field must be (sel Sort)"))?;
                        let sel = f
                            .first()
                            .and_then(Sexp::as_atom)
                            .ok_or_else(|| ParseError::new(*l, "field selector name"))?;
                        let sort_name = f
                            .get(1)
                            .and_then(Sexp::as_atom)
                            .ok_or_else(|| ParseError::new(*l, "field sort name"))?;
                        domain.push(self.sort_by_name(sort_name, *l)?);
                        sel_names.push(sel.to_owned());
                    }
                    let ctor = self.sig.add_constructor(name, domain, sort);
                    for (i, sel) in sel_names.into_iter().enumerate() {
                        self.sig.add_selector(&sel, ctor, i);
                        self.selectors_by_name.insert(sel, ());
                    }
                }
            }
        }
        Ok(())
    }

    fn declare_fun(&mut self, items: &[Sexp], line: usize) -> Result<(), ParseError> {
        let name = items
            .get(1)
            .and_then(Sexp::as_atom)
            .ok_or_else(|| ParseError::new(line, "declare-fun needs a name"))?
            .to_owned();
        let args = items
            .get(2)
            .and_then(Sexp::as_list)
            .ok_or_else(|| ParseError::new(line, "declare-fun needs argument sorts"))?;
        let ret = items
            .get(3)
            .and_then(Sexp::as_atom)
            .ok_or_else(|| ParseError::new(line, "declare-fun needs a result sort"))?
            .to_owned();
        let mut domain = Vec::new();
        for a in args {
            let n = a
                .as_atom()
                .ok_or_else(|| ParseError::new(line, "argument sorts must be atoms"))?;
            domain.push(self.sort_by_name(n, line)?);
        }
        if ret == "Bool" {
            self.rels.add(name, domain);
        } else {
            let range = self.sort_by_name(&ret, line)?;
            self.sig.add_free(name, domain, range);
        }
        Ok(())
    }

    fn declare_const(&mut self, items: &[Sexp], line: usize) -> Result<(), ParseError> {
        let name = items
            .get(1)
            .and_then(Sexp::as_atom)
            .ok_or_else(|| ParseError::new(line, "declare-const needs a name"))?
            .to_owned();
        let ret = items
            .get(2)
            .and_then(Sexp::as_atom)
            .ok_or_else(|| ParseError::new(line, "declare-const needs a sort"))?;
        let range = self.sort_by_name(ret, line)?;
        self.sig.add_free(name, vec![], range);
        Ok(())
    }

    fn assert(&mut self, items: &[Sexp], line: usize) -> Result<(), ParseError> {
        let body = items
            .get(1)
            .ok_or_else(|| ParseError::new(line, "assert needs a formula"))?;
        let mut vars = VarContext::new();
        let mut scope: HashMap<String, VarId> = HashMap::new();
        let mut exist_vars = Vec::new();
        let f = self.assertion(body, &mut vars, &mut scope, true, &mut exist_vars)?;
        let mut clauses =
            formula_to_clauses(&vars, &f).map_err(|e| ParseError::new(line, e.to_string()))?;
        if !exist_vars.is_empty() {
            // ∃ does not distribute over clause conjunction, so a ∀∃
            // assertion must clausify to a single (query) clause.
            if clauses.len() != 1 || !clauses[0].is_query() {
                return Err(ParseError::new(
                    line,
                    "existential assertion must be a single query clause",
                ));
            }
            clauses[0].exist_vars = exist_vars;
        }
        self.clauses.extend(clauses);
        Ok(())
    }

    /// Parses the top-level quantifier structure of an assertion. `positive`
    /// tracks whether we are under an even number of negations; `forall` is
    /// accepted positively, `exists` under a negation.
    fn assertion(
        &mut self,
        s: &Sexp,
        vars: &mut VarContext,
        scope: &mut HashMap<String, VarId>,
        positive: bool,
        exist_vars: &mut Vec<VarId>,
    ) -> Result<Formula, ParseError> {
        if let Some(items) = s.as_list() {
            match items.first().and_then(Sexp::as_atom) {
                Some("forall") if positive => {
                    let body = quantifier_body(items, s.line())?;
                    self.bind(items, vars, scope, s.line())?;
                    return self.assertion(body, vars, scope, positive, exist_vars);
                }
                Some("exists") if !positive => {
                    let body = quantifier_body(items, s.line())?;
                    self.bind(items, vars, scope, s.line())?;
                    return self.assertion(body, vars, scope, positive, exist_vars);
                }
                Some("exists") if positive => {
                    // The §5 ∀∃ query shape: inner existentials become
                    // Clause::exist_vars (validated in `assert`).
                    let body = quantifier_body(items, s.line())?;
                    let before: std::collections::BTreeSet<VarId> =
                        scope.values().copied().collect();
                    self.bind(items, vars, scope, s.line())?;
                    for v in scope.values() {
                        if !before.contains(v) && !exist_vars.contains(v) {
                            exist_vars.push(*v);
                        }
                    }
                    return self.assertion(body, vars, scope, positive, exist_vars);
                }
                Some("forall" | "exists") => {
                    return Err(ParseError::new(
                        s.line(),
                        "quantifier alternation is not expressible as Horn clauses",
                    ));
                }
                Some("not") => {
                    let arg = unary_arg(items, "not", s.line())?;
                    let inner = self.assertion(arg, vars, scope, !positive, exist_vars)?;
                    return Ok(Formula::Not(Box::new(inner)));
                }
                _ => {}
            }
        }
        self.formula(s, vars, scope)
    }

    fn bind(
        &mut self,
        items: &[Sexp],
        vars: &mut VarContext,
        scope: &mut HashMap<String, VarId>,
        line: usize,
    ) -> Result<(), ParseError> {
        let binders = items
            .get(1)
            .and_then(Sexp::as_list)
            .ok_or_else(|| ParseError::new(line, "quantifier needs a binder list"))?;
        for b in binders {
            let pair = b
                .as_list()
                .ok_or_else(|| ParseError::new(line, "binder must be (name Sort)"))?;
            let name = pair
                .first()
                .and_then(Sexp::as_atom)
                .ok_or_else(|| ParseError::new(line, "binder name"))?;
            let sort_name = pair
                .get(1)
                .and_then(Sexp::as_atom)
                .ok_or_else(|| ParseError::new(line, "binder sort"))?;
            let sort = self.sort_by_name(sort_name, line)?;
            let v = vars.fresh(name, sort);
            scope.insert(name.to_owned(), v);
        }
        Ok(())
    }

    fn formula(
        &mut self,
        s: &Sexp,
        vars: &mut VarContext,
        scope: &mut HashMap<String, VarId>,
    ) -> Result<Formula, ParseError> {
        match s {
            Sexp::Atom(a, line) => match a.as_str() {
                "true" => Ok(Formula::True),
                "false" => Ok(Formula::False),
                name => {
                    // A nullary predicate.
                    let p = self
                        .rels
                        .by_name(name)
                        .ok_or_else(|| ParseError::new(*line, format!("unknown atom {name:?}")))?;
                    Ok(Formula::Atom(FAtom::Pred(p, vec![])))
                }
            },
            Sexp::List(items, line) => {
                let head = items
                    .first()
                    .ok_or_else(|| ParseError::new(*line, "empty formula"))?;
                match head.as_atom() {
                    Some("and") => Ok(Formula::And(
                        items[1..]
                            .iter()
                            .map(|g| self.formula(g, vars, scope))
                            .collect::<Result<_, _>>()?,
                    )),
                    Some("or") => Ok(Formula::Or(
                        items[1..]
                            .iter()
                            .map(|g| self.formula(g, vars, scope))
                            .collect::<Result<_, _>>()?,
                    )),
                    Some("not") => {
                        let arg = unary_arg(items, "not", *line)?;
                        Ok(Formula::Not(Box::new(self.formula(arg, vars, scope)?)))
                    }
                    Some("=>") => {
                        // Right-associate chains: (=> a b c) = a → (b → c).
                        let parts: Vec<Formula> = items[1..]
                            .iter()
                            .map(|g| self.formula(g, vars, scope))
                            .collect::<Result<_, _>>()?;
                        let mut it = parts.into_iter().rev();
                        let mut acc = it
                            .next()
                            .ok_or_else(|| ParseError::new(*line, "=> needs arguments"))?;
                        for a in it {
                            acc = Formula::implies(a, acc);
                        }
                        Ok(acc)
                    }
                    Some("=") => {
                        let (l, r) = binary_args(items, "=", *line)?;
                        let a = self.term(l, vars, scope)?;
                        let b = self.term(r, vars, scope)?;
                        Ok(Formula::Atom(FAtom::Eq(a, b)))
                    }
                    Some("distinct") => {
                        let (l, r) = binary_args(items, "distinct", *line)?;
                        let a = self.term(l, vars, scope)?;
                        let b = self.term(r, vars, scope)?;
                        Ok(Formula::Not(Box::new(Formula::Atom(FAtom::Eq(a, b)))))
                    }
                    Some(name) => {
                        if let Some(p) = self.rels.by_name(name) {
                            let args = items[1..]
                                .iter()
                                .map(|t| self.term(t, vars, scope))
                                .collect::<Result<_, _>>()?;
                            Ok(Formula::Atom(FAtom::Pred(p, args)))
                        } else {
                            Err(ParseError::new(
                                *line,
                                format!("unknown predicate {name:?}"),
                            ))
                        }
                    }
                    None => {
                        // ((_ is c) t): a tester application.
                        let tester = head
                            .as_list()
                            .filter(|l| {
                                l.first().and_then(Sexp::as_atom) == Some("_")
                                    && l.get(1).and_then(Sexp::as_atom) == Some("is")
                            })
                            .and_then(|l| l.get(2))
                            .and_then(Sexp::as_atom);
                        match tester {
                            Some(ctor_name) => {
                                let ctor = self.sig.func_by_name(ctor_name).ok_or_else(|| {
                                    ParseError::new(
                                        *line,
                                        format!("unknown constructor {ctor_name:?}"),
                                    )
                                })?;
                                let arg =
                                    items.get(1).filter(|_| items.len() == 2).ok_or_else(|| {
                                        ParseError::new(
                                            *line,
                                            format!(
                                                "expected ((_ is {ctor_name}) term), \
                                                 found {} arguments",
                                                items.len() - 1
                                            ),
                                        )
                                    })?;
                                let t = self.term(arg, vars, scope)?;
                                Ok(Formula::Atom(FAtom::Tester(ctor, t)))
                            }
                            None => Err(ParseError::new(*line, "unsupported formula head")),
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::only_used_in_recursion)] // `vars` is threaded for future binders
    fn term(
        &mut self,
        s: &Sexp,
        vars: &mut VarContext,
        scope: &mut HashMap<String, VarId>,
    ) -> Result<Term, ParseError> {
        match s {
            Sexp::Atom(a, line) => {
                if let Some(v) = scope.get(a) {
                    return Ok(Term::var(*v));
                }
                if let Some(f) = self.sig.func_by_name(a) {
                    if self.sig.func(f).arity() == 0 {
                        return Ok(Term::leaf(f));
                    }
                }
                Err(ParseError::new(*line, format!("unknown term {a:?}")))
            }
            Sexp::List(items, line) => {
                let head = items
                    .first()
                    .and_then(Sexp::as_atom)
                    .ok_or_else(|| ParseError::new(*line, "term head must be a symbol"))?;
                let f = self
                    .sig
                    .func_by_name(head)
                    .ok_or_else(|| ParseError::new(*line, format!("unknown function {head:?}")))?;
                let args = items[1..]
                    .iter()
                    .map(|t| self.term(t, vars, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                if args.len() != self.sig.func(f).arity() {
                    return Err(ParseError::new(
                        *line,
                        format!("function {head:?} applied at the wrong arity"),
                    ));
                }
                Ok(Term::app(f, args))
            }
        }
    }
}

/// `(quant (binders) body)` — exactly one body after the binder list.
/// Checked *before* the binders are bound, so a malformed quantifier
/// leaves no scope residue.
fn quantifier_body(items: &[Sexp], line: usize) -> Result<&Sexp, ParseError> {
    if items.len() != 3 {
        return Err(ParseError::new(
            line,
            format!(
                "expected (quantifier (binders) body), found {} items",
                items.len()
            ),
        ));
    }
    Ok(&items[2])
}

/// `(op arg)` — exactly one argument.
fn unary_arg<'s>(items: &'s [Sexp], op: &str, line: usize) -> Result<&'s Sexp, ParseError> {
    if items.len() != 2 {
        return Err(ParseError::new(
            line,
            format!("expected ({op} arg), found {} arguments", items.len() - 1),
        ));
    }
    Ok(&items[1])
}

/// `(op a b)` — exactly two arguments.
fn binary_args<'s>(
    items: &'s [Sexp],
    op: &str,
    line: usize,
) -> Result<(&'s Sexp, &'s Sexp), ParseError> {
    if items.len() != 3 {
        return Err(ParseError::new(
            line,
            format!("expected ({op} a b), found {} arguments", items.len() - 1),
        ));
    }
    Ok((&items[1], &items[2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Constraint;

    const EVEN: &str = r#"
        (set-logic HORN)
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun even (Nat) Bool)
        (assert (even Z))
        (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
        (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
        (check-sat)
    "#;

    #[test]
    fn parses_even_system() {
        let sys = parse_str(EVEN).unwrap();
        assert_eq!(sys.clauses.len(), 3);
        assert_eq!(sys.queries().count(), 1);
        assert_eq!(sys.rels.len(), 1);
        let nat = sys.sig.sort_by_name("Nat").unwrap();
        assert_eq!(sys.sig.constructors_of(nat).len(), 2);
        // The selector `pre` was registered too.
        assert!(sys.sig.func_by_name("pre").is_some());
    }

    #[test]
    fn parses_not_exists_query() {
        let src = r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat) Bool)
            (assert (forall ((x Nat)) (p x)))
            (assert (not (exists ((x Nat)) (p (S x)))))
        "#;
        let sys = parse_str(src).unwrap();
        assert_eq!(sys.clauses.len(), 2);
        assert_eq!(sys.queries().count(), 1);
    }

    #[test]
    fn parses_disequalities_and_testers() {
        let src = r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat Nat) Bool)
            (assert (forall ((x Nat) (y Nat))
              (=> (and (not (= x y)) ((_ is S) x)) (p x y))))
            (assert (forall ((x Nat) (y Nat))
              (=> (distinct x y) (p x y))))
        "#;
        let sys = parse_str(src).unwrap();
        assert!(sys.has_disequalities());
        assert!(sys.has_testers_or_selectors());
        let c = &sys.clauses[0];
        assert!(c
            .constraints
            .iter()
            .any(|k| matches!(k, Constraint::Neq(..))));
        assert!(c
            .constraints
            .iter()
            .any(|k| matches!(k, Constraint::Tester { positive: true, .. })));
    }

    #[test]
    fn parses_selector_terms() {
        let src = r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat) Bool)
            (assert (forall ((x Nat)) (=> (= (pre x) Z) (p x))))
        "#;
        let sys = parse_str(src).unwrap();
        assert!(sys.has_testers_or_selectors());
    }

    #[test]
    fn parses_declare_datatype_and_const() {
        let src = r#"
            (declare-datatype Col ((red) (green)))
            (declare-const c0 Col)
            (declare-fun p (Col) Bool)
            (assert (p c0))
        "#;
        let sys = parse_str(src).unwrap();
        let col = sys.sig.sort_by_name("Col").unwrap();
        assert_eq!(sys.sig.constructors_of(col).len(), 2);
        assert!(sys.sig.func_by_name("c0").is_some());
    }

    #[test]
    fn parses_mutually_recursive_datatypes() {
        let src = r#"
            (declare-datatypes ((Tree 0) (Forest 0))
              (((leaf) (node (kids Forest)))
               ((fnil) (fcons (head Tree) (tail Forest)))))
            (declare-fun p (Tree) Bool)
            (assert (p leaf))
        "#;
        let sys = parse_str(src).unwrap();
        assert!(sys.well_sorted().is_ok());
        assert_eq!(sys.sig.sort_count(), 2);
    }

    #[test]
    fn forall_exists_is_a_query_only_shape() {
        // A definite ∀∃ clause is not Horn-expressible …
        let src = r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat Nat) Bool)
            (assert (forall ((x Nat)) (exists ((y Nat)) (p x y))))
        "#;
        let err = parse_str(src).unwrap_err();
        assert!(err.message.contains("query"));
        // … but the §5 ∀∃ *query* shape parses, with exist_vars set.
        let src = r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat Nat) Bool)
            (assert (forall ((x Nat)) (exists ((y Nat)) (=> (p x y) false))))
        "#;
        let sys = parse_str(src).unwrap();
        assert!(sys.well_sorted().is_ok());
        assert_eq!(sys.clauses.len(), 1);
        assert!(sys.clauses[0].is_query());
        assert_eq!(sys.clauses[0].exist_vars.len(), 1);
    }

    #[test]
    fn rejects_unknowns_with_line_numbers() {
        let err = parse_str("(assert (foo))").unwrap_err();
        assert_eq!(err.line, 1);
        let err2 = parse_str("(declare-fun p (Missing) Bool)").unwrap_err();
        assert!(err2.message.contains("Missing"));
        let err3 = parse_str("(bogus)").unwrap_err();
        assert!(err3.message.contains("unsupported"));
    }

    #[test]
    fn rejects_unbalanced_parens() {
        assert!(parse_str("(assert").is_err());
        assert!(parse_str("(assert))").is_err());
    }

    #[test]
    fn malformed_wire_input_errors_instead_of_panicking() {
        const PRELUDE: &str = r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat) Bool)
        "#;
        // Every case used to be a raw-index panic site; each must now
        // come back as a typed error naming the expected shape.
        for (frag, expect) in [
            ("(assert (forall ((x Nat))))", "body"),
            ("(assert (forall ((x Nat)) (p x) (p x)))", "body"),
            ("(assert (exists ((x Nat))))", "body"),
            ("(assert (not))", "(not arg)"),
            ("(assert (forall ((x Nat)) (=> (not) false)))", "(not arg)"),
            ("(assert (forall ((x Nat)) (=> (= x) false)))", "(= a b)"),
            (
                "(assert (forall ((x Nat)) (=> (= x x x) false)))",
                "(= a b)",
            ),
            (
                "(assert (forall ((x Nat)) (=> (distinct x) false)))",
                "(distinct a b)",
            ),
            (
                "(assert (forall ((x Nat)) (=> ((_ is Z)) false)))",
                "(_ is Z)",
            ),
            (
                "(assert (forall ((x Nat)) (=> ((_ is Z) x x) false)))",
                "(_ is Z)",
            ),
        ] {
            let src = format!("{PRELUDE}{frag}");
            let err = std::panic::catch_unwind(|| parse_str(&src))
                .unwrap_or_else(|_| panic!("parser panicked on {frag}"))
                .expect_err(frag);
            assert!(
                err.message.contains(expect),
                "{frag}: error {:?} does not mention {expect:?}",
                err.message
            );
            assert!(err.line > 0, "{frag}: no position");
        }
    }

    #[test]
    fn comments_and_pipes_are_tolerated() {
        let src = r#"
            ; a comment
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun |my pred| (Nat) Bool)
            (assert (|my pred| Z)) ; trailing comment
        "#;
        let sys = parse_str(src).unwrap();
        assert!(sys.rels.by_name("my pred").is_some());
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let src = r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat) Bool)
            (assert (p (S Z Z)))
        "#;
        assert!(parse_str(src).is_err());
    }
}
