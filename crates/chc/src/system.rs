//! Constrained Horn clauses over ADTs (Definition 1).

use std::fmt;

use ringen_terms::{
    FuncId, FuncKind, Signature, SortError, SortId, Substitution, Term, VarContext, VarId,
};

/// Identifier of an uninterpreted relation symbol `P ∈ ℛ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub(crate) u32);

impl PredId {
    /// Raw index, usable for dense tables indexed by predicate.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `PredId` from a raw index previously obtained from
    /// [`PredId::index`].
    pub fn from_index(i: usize) -> Self {
        PredId(i as u32)
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Declaration of an uninterpreted relation symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredDecl {
    /// Unique name.
    pub name: String,
    /// Argument sorts `σ1 × … × σn`.
    pub domain: Vec<SortId>,
}

impl PredDecl {
    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.domain.len()
    }
}

/// The finite set `ℛ = {P₁, …, Pₙ}` of uninterpreted relation symbols.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relations {
    preds: Vec<PredDecl>,
}

impl Relations {
    /// Creates an empty set of relations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used.
    pub fn add(&mut self, name: impl Into<String>, domain: Vec<SortId>) -> PredId {
        let name = name.into();
        assert!(
            self.preds.iter().all(|p| p.name != name),
            "duplicate predicate name {name:?}"
        );
        self.preds.push(PredDecl { name, domain });
        PredId((self.preds.len() - 1) as u32)
    }

    /// Declaration of a relation.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    pub fn decl(&self, id: PredId) -> &PredDecl {
        &self.preds[id.index()]
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether no relation is declared.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// All relation ids.
    pub fn iter(&self) -> impl Iterator<Item = PredId> + '_ {
        (0..self.preds.len() as u32).map(PredId)
    }

    /// Looks a relation up by name.
    pub fn by_name(&self, name: &str) -> Option<PredId> {
        self.preds
            .iter()
            .position(|p| p.name == name)
            .map(|i| PredId(i as u32))
    }
}

/// An applied relation symbol `P(t₁, …, tₙ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation symbol.
    pub pred: PredId,
    /// Its arguments.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(pred: PredId, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// Applies a substitution to every argument.
    pub fn apply(&self, sub: &Substitution) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|t| sub.apply(t)).collect(),
        }
    }
}

/// A literal of the assertion language appearing in a clause constraint:
/// (dis)equalities between terms and (negated) constructor testers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// `t = u`.
    Eq(Term, Term),
    /// `t ≠ u`.
    Neq(Term, Term),
    /// `c?(t)` (positive) or `¬c?(t)` (negative).
    Tester {
        /// The constructor being tested for.
        ctor: FuncId,
        /// The tested term.
        term: Term,
        /// Polarity of the literal.
        positive: bool,
    },
}

impl Constraint {
    /// Applies a substitution to the constrained terms.
    pub fn apply(&self, sub: &Substitution) -> Constraint {
        match self {
            Constraint::Eq(a, b) => Constraint::Eq(sub.apply(a), sub.apply(b)),
            Constraint::Neq(a, b) => Constraint::Neq(sub.apply(a), sub.apply(b)),
            Constraint::Tester {
                ctor,
                term,
                positive,
            } => Constraint::Tester {
                ctor: *ctor,
                term: sub.apply(term),
                positive: *positive,
            },
        }
    }

    /// The terms appearing in the constraint.
    pub fn terms(&self) -> Vec<&Term> {
        match self {
            Constraint::Eq(a, b) | Constraint::Neq(a, b) => vec![a, b],
            Constraint::Tester { term, .. } => vec![term],
        }
    }
}

/// A constrained Horn clause
/// `φ ∧ R₁(t̄₁) ∧ … ∧ Rₘ(t̄ₘ) → H` (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Sorts and names of the clause's variables.
    pub vars: VarContext,
    /// Variables quantified *existentially* inside the clause matrix
    /// (the `∀e ∃a,b` query shape of the §5 STLC case study). Must be a
    /// subset of `vars`, may only occur on query clauses, and may not
    /// appear in constraints; all other clauses leave this empty.
    pub exist_vars: Vec<VarId>,
    /// The constraint `φ`, as a conjunction of literals.
    pub constraints: Vec<Constraint>,
    /// The uninterpreted body atoms `Rᵢ(t̄ᵢ)`.
    pub body: Vec<Atom>,
    /// The head `H`: an atom for definite clauses, `None` for queries (⊥).
    pub head: Option<Atom>,
    /// Optional label for diagnostics.
    pub name: Option<String>,
}

impl Clause {
    /// Creates a clause.
    pub fn new(
        vars: VarContext,
        constraints: Vec<Constraint>,
        body: Vec<Atom>,
        head: Option<Atom>,
    ) -> Self {
        Clause {
            vars,
            exist_vars: Vec::new(),
            constraints,
            body,
            head,
            name: None,
        }
    }

    /// Marks variables as existentially quantified (only meaningful on
    /// query clauses; see [`Clause::exist_vars`]).
    pub fn with_exists(mut self, vars: Vec<VarId>) -> Self {
        self.exist_vars = vars;
        self
    }

    /// Attaches a diagnostic label.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Whether this is a query clause (head ⊥).
    pub fn is_query(&self) -> bool {
        self.head.is_none()
    }

    /// Whether the clause has no constraint part (`φ = ⊤`).
    pub fn is_constraint_free(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Every term of the clause, bodies and head alike.
    pub fn terms(&self) -> Vec<&Term> {
        let mut out: Vec<&Term> = Vec::new();
        for c in &self.constraints {
            out.extend(c.terms());
        }
        for a in self.body.iter().chain(&self.head) {
            out.extend(a.args.iter());
        }
        out
    }
}

/// A CHC system `𝒮` (Definition 1): a signature, relation symbols, and a
/// finite set of clauses.
///
/// # Example
///
/// ```
/// use ringen_chc::SystemBuilder;
///
/// // The Even system of the paper's Example 1.
/// let mut b = SystemBuilder::new();
/// let nat = b.sort("Nat");
/// let z = b.ctor("Z", vec![], nat);
/// let s = b.ctor("S", vec![nat], nat);
/// let even = b.pred("even", vec![nat]);
/// b.clause(|c| {
///     c.head(even, vec![c.app0(z)]);
/// });
/// b.clause(|c| {
///     let x = c.var("x", nat);
///     c.body(even, vec![c.v(x)]);
///     c.head(even, vec![c.app(s, vec![c.app(s, vec![c.v(x)])])]);
/// });
/// b.clause(|c| {
///     let x = c.var("x", nat);
///     c.body(even, vec![c.v(x)]);
///     c.body(even, vec![c.app(s, vec![c.v(x)])]);
///     // no head: a query clause
/// });
/// let sys = b.finish();
/// assert_eq!(sys.clauses.len(), 3);
/// assert!(sys.well_sorted().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChcSystem {
    /// The assertion-language signature (ADT sorts and constructors).
    pub sig: Signature,
    /// The uninterpreted relation symbols `ℛ`.
    pub rels: Relations,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl ChcSystem {
    /// Creates an empty system over a signature.
    pub fn new(sig: Signature) -> Self {
        ChcSystem {
            sig,
            rels: Relations::new(),
            clauses: Vec::new(),
        }
    }

    /// Checks every clause for well-sortedness.
    ///
    /// # Errors
    ///
    /// Returns the index of the first offending clause and the underlying
    /// [`SortError`] or arity mismatch, as a [`SystemError`].
    pub fn well_sorted(&self) -> Result<(), SystemError> {
        for (i, c) in self.clauses.iter().enumerate() {
            self.check_clause(c)
                .map_err(|kind| SystemError { clause: i, kind })?;
        }
        Ok(())
    }

    fn check_clause(&self, c: &Clause) -> Result<(), SystemErrorKind> {
        if !c.exist_vars.is_empty() {
            if c.head.is_some() {
                return Err(SystemErrorKind::ExistentialInDefiniteClause);
            }
            for &v in &c.exist_vars {
                if c.vars.sort(v).is_none() {
                    return Err(SystemErrorKind::ExistentialNotDeclared);
                }
            }
            for con in &c.constraints {
                let touches = match con {
                    Constraint::Eq(a, b) | Constraint::Neq(a, b) => c
                        .exist_vars
                        .iter()
                        .any(|v| a.contains_var(*v) || b.contains_var(*v)),
                    Constraint::Tester { term, .. } => {
                        c.exist_vars.iter().any(|v| term.contains_var(*v))
                    }
                };
                if touches {
                    return Err(SystemErrorKind::ExistentialInConstraint);
                }
            }
        }
        for con in &c.constraints {
            match con {
                Constraint::Eq(a, b) | Constraint::Neq(a, b) => {
                    let sa = a.sort(&self.sig, &c.vars)?;
                    let sb = b.sort(&self.sig, &c.vars)?;
                    if sa != sb {
                        return Err(SystemErrorKind::EqualitySorts(sa, sb));
                    }
                }
                Constraint::Tester { ctor, term, .. } => {
                    let decl = self.sig.func(*ctor);
                    if decl.kind != FuncKind::Constructor {
                        return Err(SystemErrorKind::TesterOfNonConstructor(*ctor));
                    }
                    let st = term.sort(&self.sig, &c.vars)?;
                    if st != decl.range {
                        return Err(SystemErrorKind::EqualitySorts(st, decl.range));
                    }
                }
            }
        }
        for a in c.body.iter().chain(&c.head) {
            let d = self.rels.decl(a.pred);
            if d.arity() != a.args.len() {
                return Err(SystemErrorKind::AtomArity {
                    pred: a.pred,
                    expected: d.arity(),
                    got: a.args.len(),
                });
            }
            for (t, want) in a.args.iter().zip(&d.domain) {
                let got = t.sort(&self.sig, &c.vars)?;
                if got != *want {
                    return Err(SystemErrorKind::EqualitySorts(got, *want));
                }
            }
        }
        Ok(())
    }

    /// The definite clauses (those with a head atom).
    pub fn definite_clauses(&self) -> impl Iterator<Item = &Clause> + '_ {
        self.clauses.iter().filter(|c| !c.is_query())
    }

    /// The query clauses (head ⊥).
    pub fn queries(&self) -> impl Iterator<Item = &Clause> + '_ {
        self.clauses.iter().filter(|c| c.is_query())
    }

    /// Whether any clause contains a disequality constraint (the `Diseq`
    /// benchmark family marker, §4.4).
    pub fn has_disequalities(&self) -> bool {
        self.clauses
            .iter()
            .flat_map(|c| &c.constraints)
            .any(|k| matches!(k, Constraint::Neq(..)))
    }

    /// Whether any clause mentions a tester or selector (removed by §4.5).
    pub fn has_testers_or_selectors(&self) -> bool {
        let tester = self
            .clauses
            .iter()
            .flat_map(|c| &c.constraints)
            .any(|k| matches!(k, Constraint::Tester { .. }));
        let selector = self.clauses.iter().any(|c| {
            c.terms()
                .iter()
                .any(|t| term_mentions_selector(&self.sig, t))
        });
        tester || selector
    }
}

fn term_mentions_selector(sig: &Signature, t: &Term) -> bool {
    match t {
        Term::Var(_) => false,
        Term::App(f, args) => {
            matches!(sig.func(*f).kind, FuncKind::Selector { .. })
                || args.iter().any(|a| term_mentions_selector(sig, a))
        }
    }
}

/// A sort or arity error in a clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemError {
    /// Index of the offending clause.
    pub clause: usize,
    /// What went wrong.
    pub kind: SystemErrorKind,
}

/// The kinds of [`SystemError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemErrorKind {
    /// A term inside the clause failed to sort.
    Term(SortError),
    /// The two sides of an equality (or an atom argument and its declared
    /// sort) disagree.
    EqualitySorts(SortId, SortId),
    /// An atom applied a relation at the wrong arity.
    AtomArity {
        /// The misapplied relation.
        pred: PredId,
        /// Declared arity.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// A tester constraint names a symbol that is not a constructor.
    TesterOfNonConstructor(FuncId),
    /// Existential variables are only allowed on query clauses.
    ExistentialInDefiniteClause,
    /// An existential variable is not declared in the clause context.
    ExistentialNotDeclared,
    /// Existential variables may not occur in constraints.
    ExistentialInConstraint,
}

impl From<SortError> for SystemErrorKind {
    fn from(e: SortError) -> Self {
        SystemErrorKind::Term(e)
    }
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clause {}: ", self.clause)?;
        match &self.kind {
            SystemErrorKind::Term(e) => write!(f, "{e}"),
            SystemErrorKind::EqualitySorts(a, b) => {
                write!(f, "sort mismatch between {a} and {b}")
            }
            SystemErrorKind::AtomArity {
                pred,
                expected,
                got,
            } => write!(f, "{pred} expects {expected} arguments, got {got}"),
            SystemErrorKind::TesterOfNonConstructor(c) => {
                write!(f, "tester of non-constructor {c}")
            }
            SystemErrorKind::ExistentialInDefiniteClause => {
                write!(f, "existential variables are only allowed on query clauses")
            }
            SystemErrorKind::ExistentialNotDeclared => {
                write!(f, "existential variable is not in the clause context")
            }
            SystemErrorKind::ExistentialInConstraint => {
                write!(f, "existential variables may not occur in constraints")
            }
        }
    }
}

impl std::error::Error for SystemError {}

/// Typed rejection of an ill-sorted input system: the error solver
/// entry points return instead of panicking, wrapping the underlying
/// [`SystemError`]. Convert with `?` from [`ChcSystem::well_sorted`]'s
/// result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IllSorted(pub SystemError);

impl From<SystemError> for IllSorted {
    fn from(e: SystemError) -> Self {
        IllSorted(e)
    }
}

impl fmt::Display for IllSorted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "input system is not well-sorted: {}", self.0)
    }
}

impl std::error::Error for IllSorted {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;

    #[test]
    fn relations_round_trip() {
        let mut sig = Signature::new();
        let nat = sig.add_sort("Nat");
        let mut rels = Relations::new();
        let p = rels.add("p", vec![nat, nat]);
        assert_eq!(rels.decl(p).arity(), 2);
        assert_eq!(rels.by_name("p"), Some(p));
        assert_eq!(rels.by_name("q"), None);
        assert_eq!(rels.len(), 1);
        assert_eq!(rels.iter().collect::<Vec<_>>(), vec![p]);
    }

    #[test]
    #[should_panic(expected = "duplicate predicate name")]
    fn duplicate_predicate_panics() {
        let mut rels = Relations::new();
        rels.add("p", vec![]);
        rels.add("p", vec![]);
    }

    #[test]
    fn well_sorted_catches_atom_arity() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let p = b.pred("p", vec![nat]);
        let mut sys = b.finish();
        // Manually build an ill-formed clause: p applied to 2 args.
        let vars = VarContext::new();
        sys.clauses.push(Clause::new(
            vars,
            vec![],
            vec![],
            Some(Atom::new(p, vec![Term::leaf(z), Term::leaf(z)])),
        ));
        assert!(matches!(
            sys.well_sorted(),
            Err(SystemError {
                clause: 0,
                kind: SystemErrorKind::AtomArity {
                    expected: 1,
                    got: 2,
                    ..
                }
            })
        ));
    }

    #[test]
    fn well_sorted_catches_equality_sorts() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let list = b.sort("List");
        let z = b.ctor("Z", vec![], nat);
        let nil = b.ctor("nil", vec![], list);
        let _p = b.pred("p", vec![]);
        let mut sys = b.finish();
        sys.clauses.push(Clause::new(
            VarContext::new(),
            vec![Constraint::Eq(Term::leaf(z), Term::leaf(nil))],
            vec![],
            None,
        ));
        assert!(matches!(
            sys.well_sorted(),
            Err(SystemError {
                kind: SystemErrorKind::EqualitySorts(..),
                ..
            })
        ));
    }

    #[test]
    fn queries_and_definites_are_split() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let p = b.pred("p", vec![nat]);
        b.clause(|c| {
            c.head(p, vec![c.app0(z)]);
        });
        b.clause(|c| {
            c.body(p, vec![c.app0(z)]);
        });
        let sys = b.finish();
        assert_eq!(sys.definite_clauses().count(), 1);
        assert_eq!(sys.queries().count(), 1);
        assert!(!sys.has_disequalities());
        assert!(!sys.has_testers_or_selectors());
    }

    #[test]
    fn detects_diseq_and_testers() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let _p = b.pred("p", vec![]);
        let mut sys = b.finish();
        sys.clauses.push(Clause::new(
            VarContext::new(),
            vec![Constraint::Neq(Term::leaf(z), Term::leaf(z))],
            vec![],
            None,
        ));
        assert!(sys.has_disequalities());
        sys.clauses.clear();
        sys.clauses.push(Clause::new(
            VarContext::new(),
            vec![Constraint::Tester {
                ctor: z,
                term: Term::leaf(z),
                positive: true,
            }],
            vec![],
            None,
        ));
        assert!(sys.has_testers_or_selectors());
    }

    #[test]
    fn clause_terms_lists_everything() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let p = b.pred("p", vec![nat]);
        b.clause(|c| {
            let x = c.var("x", nat);
            c.eq(c.v(x), c.app0(z));
            c.body(p, vec![c.v(x)]);
            c.head(p, vec![c.app0(z)]);
        });
        let sys = b.finish();
        assert_eq!(sys.clauses[0].terms().len(), 4);
        assert!(!sys.clauses[0].is_query());
        assert!(!sys.clauses[0].is_constraint_free());
    }
}
