//! Boolean formula layer used when reading CHCs from files.
//!
//! SMT-LIB input allows arbitrary boolean structure inside an assertion.
//! [`formula_to_clauses`] normalizes a universally-quantified formula to a
//! set of Horn clauses: negation normal form, conjunctive normal form by
//! distribution, then per-CNF-clause extraction of body atoms, constraints
//! and at most one positive head atom.

use std::error::Error;
use std::fmt;

use ringen_terms::{FuncId, Term, VarContext};

use crate::system::{Atom, Clause, Constraint, PredId};

/// An atomic formula as read from a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FAtom {
    /// An applied uninterpreted relation.
    Pred(PredId, Vec<Term>),
    /// Equality of two terms.
    Eq(Term, Term),
    /// A constructor tester `(_ is c)`.
    Tester(FuncId, Term),
}

/// A boolean combination of atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// ⊤.
    True,
    /// ⊥.
    False,
    /// An atom.
    Atom(FAtom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
}

impl Formula {
    /// Implication `a → b`, encoded as `¬a ∨ b`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Or(vec![Formula::Not(Box::new(a)), b])
    }
}

/// A literal after NNF: an atom with a polarity.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Literal {
    atom: FAtom,
    positive: bool,
}

/// Errors during clause extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClausifyError {
    /// A CNF clause had two positive relation atoms, so it is not Horn.
    NotHorn,
    /// The distribution blew past the internal limit.
    TooLarge,
}

impl fmt::Display for ClausifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClausifyError::NotHorn => write!(f, "assertion is not a Horn formula"),
            ClausifyError::TooLarge => write!(f, "assertion expands to too many clauses"),
        }
    }
}

impl Error for ClausifyError {}

/// Maximum number of CNF clauses one assertion may expand into.
const MAX_CNF: usize = 4096;

/// Converts a universally-quantified formula into Horn clauses.
///
/// The formula is the *matrix* of `∀ vars. F`; each resulting clause
/// shares (a clone of) `vars`.
///
/// # Errors
///
/// Returns [`ClausifyError::NotHorn`] when some CNF clause has two
/// positive relation atoms, and [`ClausifyError::TooLarge`] when CNF
/// distribution exceeds an internal limit.
pub fn formula_to_clauses(vars: &VarContext, f: &Formula) -> Result<Vec<Clause>, ClausifyError> {
    let nnf = to_nnf(f, true);
    let cnf = to_cnf(&nnf)?;
    let mut out = Vec::new();
    for disjuncts in cnf {
        if let Some(clause) = disjunction_to_clause(vars, disjuncts)? {
            out.push(clause);
        }
    }
    Ok(out)
}

/// NNF with polarity tracking; the result contains `Not` only around atoms
/// (represented via `Literal` in `to_cnf`).
fn to_nnf(f: &Formula, positive: bool) -> Formula {
    match (f, positive) {
        (Formula::True, true) | (Formula::False, false) => Formula::True,
        (Formula::True, false) | (Formula::False, true) => Formula::False,
        (Formula::Atom(a), true) => Formula::Atom(a.clone()),
        (Formula::Atom(a), false) => Formula::Not(Box::new(Formula::Atom(a.clone()))),
        (Formula::Not(g), _) => to_nnf(g, !positive),
        (Formula::And(gs), true) | (Formula::Or(gs), false) => {
            Formula::And(gs.iter().map(|g| to_nnf(g, positive)).collect())
        }
        (Formula::Or(gs), true) | (Formula::And(gs), false) => {
            Formula::Or(gs.iter().map(|g| to_nnf(g, positive)).collect())
        }
    }
}

/// CNF by distribution. Input must be in NNF.
/// Each inner vec is a disjunction of literals.
fn to_cnf(f: &Formula) -> Result<Vec<Vec<Literal>>, ClausifyError> {
    match f {
        Formula::True => Ok(vec![]),
        Formula::False => Ok(vec![vec![]]),
        Formula::Atom(a) => Ok(vec![vec![Literal {
            atom: a.clone(),
            positive: true,
        }]]),
        Formula::Not(g) => match g.as_ref() {
            Formula::Atom(a) => Ok(vec![vec![Literal {
                atom: a.clone(),
                positive: false,
            }]]),
            _ => unreachable!("input to to_cnf must be in NNF"),
        },
        Formula::And(gs) => {
            let mut out = Vec::new();
            for g in gs {
                out.extend(to_cnf(g)?);
                if out.len() > MAX_CNF {
                    return Err(ClausifyError::TooLarge);
                }
            }
            Ok(out)
        }
        Formula::Or(gs) => {
            let mut acc: Vec<Vec<Literal>> = vec![vec![]];
            for g in gs {
                let clauses = to_cnf(g)?;
                let mut next = Vec::new();
                for a in &acc {
                    for c in &clauses {
                        let mut merged = a.clone();
                        merged.extend(c.iter().cloned());
                        next.push(merged);
                        if next.len() > MAX_CNF {
                            return Err(ClausifyError::TooLarge);
                        }
                    }
                }
                acc = next;
            }
            Ok(acc)
        }
    }
}

/// Turns one CNF clause (a disjunction of literals) into a Horn clause.
///
/// Reading `L₁ ∨ … ∨ Lₖ` as `¬L₁ ∧ … → …`:
/// * a negative relation literal contributes a body atom;
/// * a positive relation literal is the head (at most one allowed);
/// * a positive equality/tester contributes its *negation* to the body;
/// * a negative equality/tester contributes itself to the body.
///
/// Returns `Ok(None)` for trivially-true clauses (`⊤` in the disjunction).
fn disjunction_to_clause(
    vars: &VarContext,
    disjuncts: Vec<Literal>,
) -> Result<Option<Clause>, ClausifyError> {
    let mut constraints = Vec::new();
    let mut body = Vec::new();
    let mut head: Option<Atom> = None;
    for lit in disjuncts {
        match (lit.atom, lit.positive) {
            (FAtom::Pred(p, args), true) => {
                if head.is_some() {
                    return Err(ClausifyError::NotHorn);
                }
                head = Some(Atom::new(p, args));
            }
            (FAtom::Pred(p, args), false) => body.push(Atom::new(p, args)),
            (FAtom::Eq(a, b), true) => constraints.push(Constraint::Neq(a, b)),
            (FAtom::Eq(a, b), false) => constraints.push(Constraint::Eq(a, b)),
            (FAtom::Tester(c, t), true) => constraints.push(Constraint::Tester {
                ctor: c,
                term: t,
                positive: false,
            }),
            (FAtom::Tester(c, t), false) => constraints.push(Constraint::Tester {
                ctor: c,
                term: t,
                positive: true,
            }),
        }
    }
    Ok(Some(Clause::new(vars.clone(), constraints, body, head)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_terms::Signature;

    fn setup() -> (VarContext, PredId, PredId, Term, Term) {
        let mut sig = Signature::new();
        let nat = sig.add_sort("Nat");
        let z = sig.add_constructor("Z", vec![], nat);
        let mut ctx = VarContext::new();
        let x = ctx.fresh("x", nat);
        (ctx, PredId(0), PredId(1), Term::var(x), Term::leaf(z))
    }

    #[test]
    fn implication_becomes_one_clause() {
        let (ctx, p, q, x, z) = setup();
        // p(x) ∧ x = Z → q(x)
        let f = Formula::implies(
            Formula::And(vec![
                Formula::Atom(FAtom::Pred(p, vec![x.clone()])),
                Formula::Atom(FAtom::Eq(x.clone(), z.clone())),
            ]),
            Formula::Atom(FAtom::Pred(q, vec![x.clone()])),
        );
        let clauses = formula_to_clauses(&ctx, &f).unwrap();
        assert_eq!(clauses.len(), 1);
        let c = &clauses[0];
        assert_eq!(c.body.len(), 1);
        assert_eq!(c.constraints, vec![Constraint::Eq(x, z)]);
        assert_eq!(c.head.as_ref().unwrap().pred, q);
    }

    #[test]
    fn disjunctive_body_splits_into_clauses() {
        let (ctx, p, q, x, z) = setup();
        // (p(x) ∨ x = Z) → q(x) gives two clauses.
        let f = Formula::implies(
            Formula::Or(vec![
                Formula::Atom(FAtom::Pred(p, vec![x.clone()])),
                Formula::Atom(FAtom::Eq(x.clone(), z.clone())),
            ]),
            Formula::Atom(FAtom::Pred(q, vec![x.clone()])),
        );
        let clauses = formula_to_clauses(&ctx, &f).unwrap();
        assert_eq!(clauses.len(), 2);
        assert!(clauses.iter().all(|c| c.head.is_some()));
    }

    #[test]
    fn negated_atom_head_is_query() {
        let (ctx, p, _q, x, _z) = setup();
        let f = Formula::Not(Box::new(Formula::Atom(FAtom::Pred(p, vec![x]))));
        let clauses = formula_to_clauses(&ctx, &f).unwrap();
        assert_eq!(clauses.len(), 1);
        assert!(clauses[0].is_query());
        assert_eq!(clauses[0].body.len(), 1);
    }

    #[test]
    fn two_positive_preds_is_not_horn() {
        let (ctx, p, q, x, _z) = setup();
        let f = Formula::Or(vec![
            Formula::Atom(FAtom::Pred(p, vec![x.clone()])),
            Formula::Atom(FAtom::Pred(q, vec![x])),
        ]);
        assert_eq!(formula_to_clauses(&ctx, &f), Err(ClausifyError::NotHorn));
    }

    #[test]
    fn true_assertion_yields_no_clauses() {
        let (ctx, ..) = setup();
        assert_eq!(formula_to_clauses(&ctx, &Formula::True).unwrap(), vec![]);
        // ¬⊥ likewise.
        let f = Formula::Not(Box::new(Formula::False));
        assert_eq!(formula_to_clauses(&ctx, &f).unwrap(), vec![]);
    }

    #[test]
    fn false_assertion_yields_empty_query() {
        let (ctx, ..) = setup();
        let clauses = formula_to_clauses(&ctx, &Formula::False).unwrap();
        assert_eq!(clauses.len(), 1);
        assert!(clauses[0].is_query());
        assert!(clauses[0].body.is_empty());
        assert!(clauses[0].constraints.is_empty());
    }

    #[test]
    fn double_negation_collapses() {
        let (ctx, p, _q, x, _z) = setup();
        let f = Formula::Not(Box::new(Formula::Not(Box::new(Formula::Atom(
            FAtom::Pred(p, vec![x]),
        )))));
        let clauses = formula_to_clauses(&ctx, &f).unwrap();
        assert_eq!(clauses.len(), 1);
        assert!(clauses[0].head.is_some());
    }

    #[test]
    fn testers_flip_polarity_into_body() {
        let (ctx, p, _q, x, _z) = setup();
        // c?(x) → p(x): disjunction ¬c?(x) ∨ p(x); ¬tester lands positive
        // in the body.
        let f = Formula::implies(
            Formula::Atom(FAtom::Tester(
                ringen_terms::FuncId::from_index(0),
                x.clone(),
            )),
            Formula::Atom(FAtom::Pred(p, vec![x])),
        );
        let clauses = formula_to_clauses(&ctx, &f).unwrap();
        assert_eq!(clauses.len(), 1);
        assert!(matches!(
            clauses[0].constraints[0],
            Constraint::Tester { positive: true, .. }
        ));
    }
}
