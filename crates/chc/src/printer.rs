//! SMT-LIB printer for CHC systems; inverse of [`crate::parse_str`].

use std::fmt::Write as _;

use ringen_terms::{FuncKind, Signature, Term, VarContext};

use crate::system::{Atom, ChcSystem, Clause, Constraint};

/// Renders a system as an SMT-LIB CHC script that [`crate::parse_str`]
/// accepts (datatypes, predicate declarations, one `assert` per clause,
/// `check-sat`).
///
/// # Example
///
/// ```
/// # fn demo() -> Result<(), ringen_chc::ParseError> {
/// let src = r#"
///   (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
///   (declare-fun even (Nat) Bool)
///   (assert (even Z))
/// "#;
/// let sys = ringen_chc::parse_str(src)?;
/// let printed = ringen_chc::to_smtlib(&sys);
/// let reparsed = ringen_chc::parse_str(&printed)?;
/// assert_eq!(reparsed.clauses.len(), sys.clauses.len());
/// # Ok(()) }
/// # demo().unwrap();
/// ```
pub fn to_smtlib(sys: &ChcSystem) -> String {
    let mut out = String::new();
    out.push_str("(set-logic HORN)\n");
    print_datatypes(&mut out, &sys.sig);
    for f in sys.sig.funcs() {
        let d = sys.sig.func(f);
        if d.kind == FuncKind::Free {
            let args: Vec<&str> = d
                .domain
                .iter()
                .map(|s| sys.sig.sort(*s).name.as_str())
                .collect();
            let _ = writeln!(
                out,
                "(declare-fun {} ({}) {})",
                quote(&d.name),
                args.join(" "),
                sys.sig.sort(d.range).name
            );
        }
    }
    for p in sys.rels.iter() {
        let d = sys.rels.decl(p);
        let args: Vec<&str> = d
            .domain
            .iter()
            .map(|s| sys.sig.sort(*s).name.as_str())
            .collect();
        let _ = writeln!(
            out,
            "(declare-fun {} ({}) Bool)",
            quote(&d.name),
            args.join(" ")
        );
    }
    for c in &sys.clauses {
        out.push_str(&clause_to_smtlib(sys, c));
        out.push('\n');
    }
    out.push_str("(check-sat)\n");
    out
}

fn print_datatypes(out: &mut String, sig: &Signature) {
    let adts: Vec<_> = sig.adts().collect();
    // Sorts without constructors become declare-sort.
    for s in sig.sorts() {
        if sig.constructors_of(s).is_empty() {
            let _ = writeln!(out, "(declare-sort {} 0)", sig.sort(s).name);
        }
    }
    if adts.is_empty() {
        return;
    }
    let names: Vec<String> = adts
        .iter()
        .map(|a| format!("({} 0)", sig.sort(a.sort).name))
        .collect();
    let mut bodies = Vec::new();
    for a in &adts {
        let mut ctors = Vec::new();
        for &c in &a.constructors {
            let d = sig.func(c);
            if d.arity() == 0 {
                ctors.push(format!("({})", quote(&d.name)));
            } else {
                let fields: Vec<String> = d
                    .domain
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let sel = selector_name(sig, c, i);
                        format!("({} {})", quote(&sel), sig.sort(*s).name)
                    })
                    .collect();
                ctors.push(format!("({} {})", quote(&d.name), fields.join(" ")));
            }
        }
        bodies.push(format!("({})", ctors.join(" ")));
    }
    let _ = writeln!(
        out,
        "(declare-datatypes ({}) ({}))",
        names.join(" "),
        bodies.join(" ")
    );
}

/// The declared selector for `(ctor, index)`, or a generated stable name.
fn selector_name(sig: &Signature, ctor: ringen_terms::FuncId, index: usize) -> String {
    for f in sig.funcs() {
        if sig.func(f).kind == (FuncKind::Selector { ctor, index }) {
            return sig.func(f).name.clone();
        }
    }
    format!("{}_{}", sig.func(ctor).name, index)
}

/// Renders one clause as an `assert`.
pub fn clause_to_smtlib(sys: &ChcSystem, c: &Clause) -> String {
    let mut body_parts: Vec<String> = Vec::new();
    for k in &c.constraints {
        body_parts.push(constraint_to_sexp(sys, &c.vars, k));
    }
    for a in &c.body {
        body_parts.push(atom_to_sexp(sys, &c.vars, a));
    }
    let head = match &c.head {
        Some(a) => atom_to_sexp(sys, &c.vars, a),
        None => "false".to_owned(),
    };
    let mut matrix = match body_parts.len() {
        0 => head,
        1 => format!("(=> {} {})", body_parts[0], head),
        _ => format!("(=> (and {}) {})", body_parts.join(" "), head),
    };
    if !c.exist_vars.is_empty() {
        let binders: Vec<String> = c
            .exist_vars
            .iter()
            .map(|&v| {
                format!(
                    "({} {})",
                    quote(c.vars.name(v)),
                    sys.sig.sort(c.vars.sort(v).expect("var in context")).name
                )
            })
            .collect();
        matrix = format!("(exists ({}) {matrix})", binders.join(" "));
    }
    if c.vars.is_empty() {
        format!("(assert {matrix})")
    } else {
        let binders: Vec<String> = c
            .vars
            .vars()
            .filter(|v| !c.exist_vars.contains(v))
            .map(|v| {
                format!(
                    "({} {})",
                    quote(c.vars.name(v)),
                    sys.sig.sort(c.vars.sort(v).expect("var in context")).name
                )
            })
            .collect();
        if binders.is_empty() {
            format!("(assert {matrix})")
        } else {
            format!("(assert (forall ({}) {matrix}))", binders.join(" "))
        }
    }
}

fn constraint_to_sexp(sys: &ChcSystem, vars: &VarContext, k: &Constraint) -> String {
    match k {
        Constraint::Eq(a, b) => format!(
            "(= {} {})",
            term_to_sexp(sys, vars, a),
            term_to_sexp(sys, vars, b)
        ),
        Constraint::Neq(a, b) => format!(
            "(not (= {} {}))",
            term_to_sexp(sys, vars, a),
            term_to_sexp(sys, vars, b)
        ),
        Constraint::Tester {
            ctor,
            term,
            positive,
        } => {
            let t = format!(
                "((_ is {}) {})",
                quote(&sys.sig.func(*ctor).name),
                term_to_sexp(sys, vars, term)
            );
            if *positive {
                t
            } else {
                format!("(not {t})")
            }
        }
    }
}

fn atom_to_sexp(sys: &ChcSystem, vars: &VarContext, a: &Atom) -> String {
    let name = quote(&sys.rels.decl(a.pred).name);
    if a.args.is_empty() {
        name
    } else {
        let args: Vec<String> = a.args.iter().map(|t| term_to_sexp(sys, vars, t)).collect();
        format!("({} {})", name, args.join(" "))
    }
}

fn term_to_sexp(sys: &ChcSystem, vars: &VarContext, t: &Term) -> String {
    match t {
        Term::Var(v) => quote(vars.name(*v)),
        Term::App(f, args) => {
            let name = quote(&sys.sig.func(*f).name);
            if args.is_empty() {
                name
            } else {
                let parts: Vec<String> = args.iter().map(|a| term_to_sexp(sys, vars, a)).collect();
                format!("({} {})", name, parts.join(" "))
            }
        }
    }
}

/// Quotes a symbol with `|...|` when it contains SMT-LIB-special characters.
fn quote(name: &str) -> String {
    let simple = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "~!@$%^&*_-+=<>.?/".contains(c))
        && !name.chars().next().is_some_and(|c| c.is_ascii_digit());
    if simple {
        name.to_owned()
    } else {
        format!("|{name}|")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_str;

    const EVEN: &str = r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun even (Nat) Bool)
        (assert (even Z))
        (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
        (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
    "#;

    #[test]
    fn round_trips_even() {
        let sys = parse_str(EVEN).unwrap();
        let printed = to_smtlib(&sys);
        let again = parse_str(&printed).unwrap();
        assert_eq!(again.clauses.len(), sys.clauses.len());
        assert_eq!(again.rels.len(), sys.rels.len());
        assert_eq!(again.sig.sort_count(), sys.sig.sort_count());
        // Second round trip is a fixpoint.
        assert_eq!(to_smtlib(&again), printed);
    }

    #[test]
    fn round_trips_constraints() {
        let src = r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat Nat) Bool)
            (assert (forall ((x Nat) (y Nat))
              (=> (and (not (= x y)) ((_ is S) x) (= (pre x) y)) (p x y))))
        "#;
        let sys = parse_str(src).unwrap();
        let printed = to_smtlib(&sys);
        let again = parse_str(&printed).unwrap();
        assert_eq!(again.clauses[0].constraints.len(), 3);
        assert_eq!(to_smtlib(&again), printed);
    }

    #[test]
    fn quoting_strange_names() {
        assert_eq!(quote("even"), "even");
        assert_eq!(quote("my pred"), "|my pred|");
        assert_eq!(quote("3x"), "|3x|");
        assert_eq!(quote("a.b+c"), "a.b+c");
    }

    #[test]
    fn prints_free_functions_and_sorts() {
        let src = r#"
            (declare-sort U 0)
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun f (Nat) Nat)
            (declare-fun p (Nat) Bool)
            (assert (forall ((x Nat)) (p (f x))))
        "#;
        let sys = parse_str(src).unwrap();
        let printed = to_smtlib(&sys);
        assert!(printed.contains("(declare-sort U 0)"));
        assert!(printed.contains("(declare-fun f (Nat) Nat)"));
        let again = parse_str(&printed).unwrap();
        assert_eq!(to_smtlib(&again), printed);
    }
}
