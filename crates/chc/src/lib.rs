//! Constrained Horn clauses (CHCs) over algebraic data types.
//!
//! Implements §3 of *"Beyond the Elementary Representations of Program
//! Invariants over Algebraic Data Types"* (PLDI 2021): the clause IR
//! ([`Clause`], [`ChcSystem`]), uninterpreted relation symbols
//! ([`Relations`]), an ergonomic [`SystemBuilder`], and an SMT-LIB2-subset
//! parser ([`parse_str`]) and printer ([`to_smtlib`]) compatible with the
//! input format of the original RInGen tool.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!   (set-logic HORN)
//!   (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
//!   (declare-fun even (Nat) Bool)
//!   (assert (even Z))
//!   (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
//!   (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
//! "#;
//! let sys = ringen_chc::parse_str(src)?;
//! assert_eq!(sys.clauses.len(), 3);
//! assert!(sys.well_sorted().is_ok());
//! println!("{}", ringen_chc::to_smtlib(&sys));
//! # Ok::<(), ringen_chc::ParseError>(())
//! ```

mod builder;
pub mod formula;
mod parser;
mod printer;
mod system;

pub use builder::{ClauseBuilder, SystemBuilder};
pub use formula::{formula_to_clauses, ClausifyError, FAtom, Formula};
pub use parser::{parse_str, ParseError};
pub use printer::{clause_to_smtlib, to_smtlib};
pub use system::{
    Atom, ChcSystem, Clause, Constraint, IllSorted, PredDecl, PredId, Relations, SystemError,
    SystemErrorKind,
};
