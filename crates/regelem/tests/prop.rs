//! Property and integration tests for the `RegElem` class.
//!
//! The decisive property is *UNSAT soundness* of the layered cube
//! procedure: whenever `check_cube` refutes a cube, no ground
//! assignment (up to a height bound) satisfies it. The integration
//! half certifies the two showcase programs (`EvenDiag`,
//! `EvenLeftDiag`) whose invariants live outside every Figure 3 class.

use proptest::prelude::*;
use ringen_automata::Dfta;
use ringen_benchgen::programs;
use ringen_core::{solve, Answer, RingenConfig};
use ringen_regelem::{
    check_cube, check_inductive, DpBudget, Lang, RegCubeSat, RegElemCheck, RegElemFormula,
    RegElemInvariant, RegLiteral,
};
use ringen_terms::signature_helpers::nat_signature;
use ringen_terms::{GroundTerm, Signature, Term, VarContext, VarId};

fn nat_langs(sig: &Signature) -> Vec<Lang> {
    let nat = sig.sort_by_name("Nat").unwrap();
    let z = sig.func_by_name("Z").unwrap();
    let s = sig.func_by_name("S").unwrap();
    let mut even_d = Dfta::new();
    let s0 = even_d.add_state(nat);
    let s1 = even_d.add_state(nat);
    even_d.add_transition(z, vec![], s0);
    even_d.add_transition(s, vec![s0], s1);
    even_d.add_transition(s, vec![s1], s0);
    let even = Lang::new("Even", sig, even_d.clone(), [s0]);
    let odd = Lang::new("Odd", sig, even_d, [s1]);
    let mut m3 = Dfta::new();
    let q: Vec<_> = (0..3).map(|_| m3.add_state(nat)).collect();
    m3.add_transition(z, vec![], q[0]);
    for i in 0..3 {
        m3.add_transition(s, vec![q[i]], q[(i + 1) % 3]);
    }
    let mult3 = Lang::new("Mult3", sig, m3, [q[0]]);
    vec![even, odd, mult3]
}

/// A pool of nat terms over variables `x`, `y`.
fn term_pool(sig: &Signature, x: VarId, y: VarId) -> Vec<Term> {
    let z = sig.func_by_name("Z").unwrap();
    let s = sig.func_by_name("S").unwrap();
    vec![
        Term::var(x),
        Term::var(y),
        Term::app(s, vec![Term::var(x)]),
        Term::iterate(s, Term::var(x), 2),
        Term::app(s, vec![Term::var(y)]),
        Term::leaf(z),
        Term::app(s, vec![Term::leaf(z)]),
    ]
}

#[allow(clippy::too_many_arguments)] // mirrors the strategy tuple it decodes
fn literal(
    sig: &Signature,
    kind: usize,
    ti: usize,
    ui: usize,
    li: usize,
    positive: bool,
    x: VarId,
    y: VarId,
) -> RegLiteral {
    let pool = term_pool(sig, x, y);
    let t = pool[ti % pool.len()].clone();
    let u = pool[ui % pool.len()].clone();
    let langs = nat_langs(sig);
    let z = sig.func_by_name("Z").unwrap();
    let s = sig.func_by_name("S").unwrap();
    match kind % 4 {
        0 => {
            if positive {
                RegLiteral::Eq(t, u)
            } else {
                RegLiteral::Neq(t, u)
            }
        }
        1 => RegLiteral::Member {
            term: t,
            lang: langs[li % langs.len()].clone(),
            positive,
        },
        2 => RegLiteral::Tester {
            ctor: z,
            term: t,
            positive,
        },
        _ => RegLiteral::Tester {
            ctor: s,
            term: t,
            positive,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// UNSAT answers of the layered procedure are sound: a refuted
    /// cube has no ground model with variables up to height 7.
    #[test]
    fn refuted_cubes_have_no_small_models(
        lits in prop::collection::vec(
            (0usize..4, 0usize..7, 0usize..7, 0usize..3, any::<bool>()), 1..5),
    ) {
        let (sig, nat, z, s) = nat_signature();
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let y = vars.fresh("y", nat);
        let cube: Vec<RegLiteral> = lits
            .iter()
            .map(|&(k, ti, ui, li, pos)| literal(&sig, k, ti, ui, li, pos, x, y))
            .collect();
        if check_cube(&sig, &vars, &cube, &DpBudget::default()) == RegCubeSat::Unsat {
            let num = |n: usize| GroundTerm::iterate(s, GroundTerm::leaf(z), n);
            for vx in 0..7 {
                for vy in 0..7 {
                    let gx = num(vx);
                    let gy = num(vy);
                    let env = |v: VarId| {
                        if v == x { Some(gx.clone()) }
                        else if v == y { Some(gy.clone()) }
                        else { None }
                    };
                    let all = cube.iter().all(|l| l.eval(&env) == Some(true));
                    prop_assert!(
                        !all,
                        "refuted cube satisfied by x={vx}, y={vy}: {cube:?}"
                    );
                }
            }
        }
    }

    /// Formula evaluation distributes over the DNF operations.
    #[test]
    fn and_negation_respect_semantics(
        lits_a in prop::collection::vec(
            (0usize..4, 0usize..7, 0usize..7, 0usize..3, any::<bool>()), 1..3),
        lits_b in prop::collection::vec(
            (0usize..4, 0usize..7, 0usize..7, 0usize..3, any::<bool>()), 1..3),
        vx in 0usize..6, vy in 0usize..6,
    ) {
        let (sig, nat, z, s) = nat_signature();
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let y = vars.fresh("y", nat);
        let mk = |lits: &[(usize, usize, usize, usize, bool)]| {
            RegElemFormula::cube(
                lits.iter()
                    .map(|&(k, ti, ui, li, pos)| literal(&sig, k, ti, ui, li, pos, x, y))
                    .collect(),
            )
        };
        let a = mk(&lits_a);
        let b = mk(&lits_b);
        let num = |n: usize| GroundTerm::iterate(s, GroundTerm::leaf(z), n);
        let gx = num(vx);
        let gy = num(vy);
        let env = move |v: VarId| {
            if v == x { Some(gx.clone()) } else if v == y { Some(gy.clone()) } else { None }
        };
        let va = a.eval(&env).unwrap();
        let vb = b.eval(&env).unwrap();
        if let Some(c) = a.and(&b, 64) {
            prop_assert_eq!(c.eval(&env).unwrap(), va && vb);
        }
        if let Some(n) = a.negated(64) {
            prop_assert_eq!(n.eval(&env).unwrap(), !va);
        }
        prop_assert_eq!(a.or(&b).eval(&env).unwrap(), va || vb);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `member_count_up_to` agrees with brute-force enumeration on
    /// random 2-state Nat automata: exact below the cap, saturated at
    /// the cap otherwise.
    #[test]
    fn member_counts_match_enumeration(
        zt in 0usize..2, st in prop::collection::vec(0usize..2, 2), fm in 1u8..4,
    ) {
        let (sig, nat, z, s) = nat_signature();
        let mut d = Dfta::new();
        let states = [d.add_state(nat), d.add_state(nat)];
        d.add_transition(z, vec![], states[zt]);
        d.add_transition(s, vec![states[0]], states[st[0]]);
        d.add_transition(s, vec![states[1]], states[st[1]]);
        let finals: Vec<_> = states
            .iter()
            .enumerate()
            .filter(|(i, _)| fm & (1 << i) != 0)
            .map(|(_, q)| *q)
            .collect();
        let lang = Lang::new("L", &sig, d, finals);
        // Brute force over numbers 0..64: a 2-state unary automaton's
        // language is determined by a transient ≤ 2 and period ≤ 2, so
        // the window is exhaustive for the ≤ 8 counting cap.
        let cap = 8usize;
        let brute = (0..64)
            .filter(|&n| lang.accepts(&GroundTerm::iterate(s, GroundTerm::leaf(z), n)))
            .count()
            .min(cap);
        prop_assert_eq!(lang.member_count_up_to(cap), brute);
    }
}

/// The EvenLeftDiag invariant `#0 = #1 ∧ #0 ∈ EvenLeft` is certified —
/// a relation outside `Elem` (diagonal pumping), outside `Reg`
/// (diagonal, Prop. 11) *and* outside `SizeElem` (spine parity,
/// Prop. 2), yet inside `RegElem`.
#[test]
fn evenleftdiag_combined_invariant_is_certified() {
    let sys = programs::even_left_diag();
    let tree = sys.sig.sort_by_name("Tree").unwrap();
    let leaf = sys.sig.func_by_name("leaf").unwrap();
    let node = sys.sig.func_by_name("node").unwrap();
    let mut d = Dfta::new();
    let s0 = d.add_state(tree);
    let s1 = d.add_state(tree);
    d.add_transition(leaf, vec![], s0);
    d.add_transition(node, vec![s0, s0], s1);
    d.add_transition(node, vec![s0, s1], s1);
    d.add_transition(node, vec![s1, s0], s0);
    d.add_transition(node, vec![s1, s1], s0);
    let evenleft = Lang::new("EvenLeft", &sys.sig, d, [s0]);

    let p = sys.rels.by_name("evenleftpair").unwrap();
    let formula = RegElemFormula::cube(vec![
        RegLiteral::Eq(Term::var(VarId(0)), Term::var(VarId(1))),
        RegLiteral::member(Term::var(VarId(0)), evenleft),
    ]);
    let inv = RegElemInvariant {
        formulas: [(p, formula)].into(),
    };
    assert_eq!(
        check_inductive(&sys, &inv, 64, &DpBudget::default()),
        RegElemCheck::Inductive
    );

    // Semantics spot checks.
    let l = GroundTerm::leaf(leaf);
    let spine1 = GroundTerm::app(node, vec![l.clone(), l.clone()]);
    let spine2 = GroundTerm::app(node, vec![spine1.clone(), l.clone()]);
    assert!(inv.holds(p, &[l.clone(), l.clone()]));
    assert!(inv.holds(p, &[spine2.clone(), spine2.clone()]));
    assert!(
        !inv.holds(p, &[spine1.clone(), spine1.clone()]),
        "odd spine"
    );
    assert!(!inv.holds(p, &[spine2, l]), "off-diagonal");
}

/// The regular embedding agrees with the regular invariant it came
/// from, on every Peano number up to 12.
#[test]
fn regular_embedding_preserves_acceptance() {
    let sys = programs::even();
    let (answer, _) = solve(&sys, &RingenConfig::quick());
    let sat = match answer {
        Answer::Sat(s) => s,
        other => panic!("Even is SAT, got {other:?}"),
    };
    let embedded = RegElemInvariant::from_regular(&sat.preprocessed.system, &sat.invariant);
    let even = sys.rels.by_name("even").unwrap();
    let z = sys.sig.func_by_name("Z").unwrap();
    let s = sys.sig.func_by_name("S").unwrap();
    for n in 0..12 {
        let t = GroundTerm::iterate(s, GroundTerm::leaf(z), n);
        assert_eq!(
            embedded.holds(even, std::slice::from_ref(&t)),
            sat.invariant.holds(even, std::slice::from_ref(&t)),
            "n = {n}"
        );
    }
}

/// Both builder-made showcase programs are well-sorted and their
/// queries mention the right predicates.
#[test]
fn showcase_programs_shape() {
    for (name, sys, preds) in [
        ("EvenDiag", programs::even_diag(), 1usize),
        ("EvenLeftDiag", programs::even_left_diag(), 1),
    ] {
        assert!(sys.well_sorted().is_ok(), "{name}");
        assert_eq!(sys.rels.len(), preds, "{name}");
        assert_eq!(sys.queries().count(), 2, "{name} has two queries");
    }
}

/// A certified invariant of the builder-made EvenDiag matches the
/// parse-based one used in unit tests: the combined solver finds it
/// and the answer has the forced semantics.
#[test]
fn evendiag_builder_solves_combined() {
    use ringen_regelem::{solve_regelem, Provenance, RegElemAnswer, RegElemConfig};
    let sys = programs::even_diag();
    let cfg = RegElemConfig {
        regular: None,
        elementary: None,
        ..RegElemConfig::quick()
    };
    let (answer, _) = solve_regelem(&sys, &cfg);
    let (inv, provenance) = match answer {
        RegElemAnswer::Sat(inv, p) => (inv, p),
        other => panic!("expected SAT, got {other:?}"),
    };
    assert_eq!(provenance, Provenance::Combined);
    let p = sys.rels.by_name("evenpair").unwrap();
    let z = sys.sig.func_by_name("Z").unwrap();
    let s = sys.sig.func_by_name("S").unwrap();
    let n = |k| GroundTerm::iterate(s, GroundTerm::leaf(z), k);
    assert!(inv.holds(p, &[n(0), n(0)]));
    assert!(inv.holds(p, &[n(8), n(8)]));
    assert!(!inv.holds(p, &[n(7), n(7)]));
    assert!(!inv.holds(p, &[n(4), n(2)]));
}

/// Multi-sort guard: a membership constraint over `Nat` must not leak
/// onto `List` variables sharing the cube, and a satisfiable mixed-sort
/// cube stays `Maybe`.
#[test]
fn membership_on_distinct_sorts_is_not_conflated() {
    let (sig, nat, list, z, s, _nil, cons) = ringen_terms::signature_helpers::nat_list_signature();
    // Parity language over the Nat component of the combined signature.
    let mut d = Dfta::new();
    let s0 = d.add_state(nat);
    let s1 = d.add_state(nat);
    d.add_transition(z, vec![], s0);
    d.add_transition(s, vec![s0], s1);
    d.add_transition(s, vec![s1], s0);
    let even = Lang::new("Even", &sig, d, [s0]);

    let mut vars = VarContext::new();
    let x = vars.fresh("x", nat);
    let xs = vars.fresh("xs", list);
    let ys = vars.fresh("ys", list);
    // x ∈ Even ∧ xs = cons(x, ys): satisfiable (x := Z, ys := nil).
    let cube = vec![
        RegLiteral::member(Term::var(x), even.clone()),
        RegLiteral::Eq(
            Term::var(xs),
            Term::app(cons, vec![Term::var(x), Term::var(ys)]),
        ),
    ];
    assert_eq!(
        check_cube(&sig, &vars, &cube, &DpBudget::default()),
        RegCubeSat::Maybe
    );
    // x ∈ Even ∧ S(x) ∈ Even stays refutable in the combined signature.
    let cube = vec![
        RegLiteral::member(Term::var(x), even.clone()),
        RegLiteral::member(Term::app(s, vec![Term::var(x)]), even),
    ];
    assert_eq!(
        check_cube(&sig, &vars, &cube, &DpBudget::default()),
        RegCubeSat::Unsat
    );
}
