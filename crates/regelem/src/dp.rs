//! A sound unsatisfiability check for conjunctions of `RegElem`
//! literals.
//!
//! The full first-order theory of ADTs with membership constraints is
//! decidable (Comon and Delor [15]), but its decision procedure is far
//! beyond what invariant checking needs. Inductiveness of a candidate
//! only ever asks one-sided questions — *prove this violation cube
//! unsatisfiable* — so this module implements a layered, sound-for-UNSAT
//! procedure and returns [`RegCubeSat::Maybe`] whenever no layer
//! applies. A candidate whose violation cube cannot be *proved*
//! unsatisfiable is rejected; the solver never claims inductiveness it
//! cannot certify (exactly how `ringen-elem` uses its Oppen-style
//! procedure).
//!
//! Layers, each individually sound over the Herbrand structure:
//!
//! 1. **Elementary projection** — membership atoms are dropped and the
//!    remaining cube goes to the Oppen-style procedure of
//!    `ringen-elem` (congruence closure, injectivity, distinctness,
//!    acyclicity, testers).
//! 2. **Unification** — the equality atoms are solved syntactically;
//!    a clash or occurs-cycle refutes the cube outright (constructors
//!    are injective, distinct and acyclic), otherwise the mgu `θ` is
//!    applied to every remaining literal. `t ≠ t` after `θ` refutes
//!    the cube.
//! 3. **State propagation** — every membership literal `t ∈ L` / `t ∉
//!    L` is compiled to the per-variable sets of automaton states its
//!    satisfying runs allow (a projection, hence an
//!    over-approximation). For each variable, the sets from literals
//!    over the *same* automaton are intersected; emptiness refutes the
//!    cube. A literal with no satisfying state assignment at all
//!    refutes the cube by itself.
//! 4. **Joint realizability** — a variable constrained by several
//!    *different* automata must denote one ground term whose run
//!    states agree with every constraint simultaneously; the reachable
//!    tuples of the product of all constraining automata (with the top
//!    constructors that can realize them, for tester interplay) decide
//!    whether such a term exists.
//! 5. **Pigeonhole counting** — variables restricted to the same
//!    *finite* value set (distinct-term counts of the deterministic
//!    product, exact below a saturation cap) cannot be pairwise
//!    disequal in greater number than the set holds. This recovers,
//!    inside the membership fragment, §4.4's observation that
//!    disequalities demand sufficiently populated domains.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use ringen_automata::store::{
    joint_member_counts, joint_reachable_products, JointCounts, JointReach,
};
use ringen_automata::{AutStore, Dfta, DftaId, StateId};
use ringen_elem::{check_cube as elem_check_cube, CubeSat};
use ringen_terms::{unify_all, FuncId, Signature, SortId, Term, UnifyError, VarContext, VarId};

use crate::formula::{RegCube, RegLiteral};
use crate::lang::Lang;

/// Verdict of the cube check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegCubeSat {
    /// The cube is provably contradictory modulo ADT axioms and the
    /// membership semantics.
    Unsat,
    /// No layer could refute the cube. It may or may not have a
    /// Herbrand model; callers must treat this conservatively.
    Maybe,
}

/// Resource guards for the propagation layers.
#[derive(Debug, Clone, Copy)]
pub struct DpBudget {
    /// Skip per-literal state enumeration beyond this many
    /// assignments (states ^ distinct variables).
    pub max_literal_assignments: usize,
    /// Skip the joint product fixpoint beyond this many product
    /// tuples.
    pub max_product_tuples: usize,
    /// Saturation point of the pigeonhole counting layer; counts at
    /// the cap are treated as "possibly infinite" and never refute.
    pub count_cap: usize,
}

impl Default for DpBudget {
    fn default() -> Self {
        DpBudget {
            max_literal_assignments: 4_096,
            max_product_tuples: 20_000,
            count_cap: 8,
        }
    }
}

/// Checks a cube of `RegElem` literals for provable unsatisfiability
/// over the Herbrand structure.
///
/// Sound for [`RegCubeSat::Unsat`]: every refutation corresponds to a
/// genuine contradiction. Incomplete: [`RegCubeSat::Maybe`] carries no
/// information.
///
/// # Example
///
/// The Example 1 query `even(x) ∧ even(S(x))`, phrased with
/// membership atoms:
///
/// ```
/// use ringen_automata::Dfta;
/// use ringen_regelem::{check_cube, DpBudget, Lang, RegCubeSat, RegLiteral};
/// use ringen_terms::{signature_helpers::nat_signature, Term, VarContext};
///
/// let (sig, nat, z, s) = nat_signature();
/// let mut d = Dfta::new();
/// let s0 = d.add_state(nat);
/// let s1 = d.add_state(nat);
/// d.add_transition(z, vec![], s0);
/// d.add_transition(s, vec![s0], s1);
/// d.add_transition(s, vec![s1], s0);
/// let even = Lang::new("Even", &sig, d, [s0]);
///
/// let mut vars = VarContext::new();
/// let x = vars.fresh("x", nat);
/// let cube = vec![
///     RegLiteral::member(Term::var(x), even.clone()),
///     RegLiteral::member(Term::app(s, vec![Term::var(x)]), even),
/// ];
/// assert_eq!(
///     check_cube(&sig, &vars, &cube, &DpBudget::default()),
///     RegCubeSat::Unsat
/// );
/// ```
pub fn check_cube(
    sig: &Signature,
    vars: &VarContext,
    cube: &RegCube,
    budget: &DpBudget,
) -> RegCubeSat {
    check_cube_impl(sig, vars, cube, budget, None)
}

/// [`check_cube`] routed through a hash-consed [`AutStore`]: the joint
/// products of layer 4 and the counting fixpoints of layer 5 are
/// memoized by the interned ids of the constraining automata, so the
/// thousands of cubes a solver loop checks against the same language
/// combinations pay one fixpoint and then one hash probe each.
pub fn check_cube_in(
    sig: &Signature,
    vars: &VarContext,
    cube: &RegCube,
    budget: &DpBudget,
    store: &mut AutStore,
) -> RegCubeSat {
    check_cube_impl(sig, vars, cube, budget, Some(store))
}

pub(crate) fn check_cube_impl(
    sig: &Signature,
    vars: &VarContext,
    cube: &RegCube,
    budget: &DpBudget,
    mut store: Option<&mut AutStore>,
) -> RegCubeSat {
    // Layer 1: the elementary projection.
    let elem_cube: Vec<_> = cube.iter().filter_map(RegLiteral::as_elem).collect();
    if elem_check_cube(sig, vars, &elem_cube) == CubeSat::Unsat {
        return RegCubeSat::Unsat;
    }
    if !cube.iter().any(|l| matches!(l, RegLiteral::Member { .. })) {
        // Nothing the remaining layers could add.
        return RegCubeSat::Maybe;
    }

    // Layer 2: solve the equalities syntactically.
    let eqs = cube.iter().filter_map(|l| match l {
        RegLiteral::Eq(a, b) => Some((a.clone(), b.clone())),
        _ => None,
    });
    let theta = match unify_all(eqs) {
        Ok(theta) => theta,
        Err(UnifyError::Clash(..) | UnifyError::Occurs(..)) => return RegCubeSat::Unsat,
    };

    let mut members: Vec<(Term, Lang, bool)> = Vec::new();
    let mut var_ctors: BTreeMap<VarId, BTreeSet<FuncId>> = BTreeMap::new();
    let mut neq_pairs: Vec<(VarId, VarId)> = Vec::new();
    for lit in cube {
        match lit.apply(&theta) {
            RegLiteral::Eq(..) => {}
            RegLiteral::Neq(a, b) => {
                if a == b {
                    return RegCubeSat::Unsat;
                }
                if let (Term::Var(x), Term::Var(y)) = (&a, &b) {
                    neq_pairs.push((*x.min(y), *x.max(y)));
                }
            }
            RegLiteral::Tester {
                ctor,
                term,
                positive,
            } => match &term {
                Term::App(f, _) => {
                    if (*f == ctor) != positive {
                        return RegCubeSat::Unsat;
                    }
                }
                Term::Var(v) => {
                    let Some(sort) = vars.sort(*v) else { continue };
                    let allowed = var_ctors
                        .entry(*v)
                        .or_insert_with(|| sig.constructors_of(sort).iter().copied().collect());
                    if positive {
                        allowed.retain(|c| *c == ctor);
                    } else {
                        allowed.remove(&ctor);
                    }
                    if allowed.is_empty() {
                        return RegCubeSat::Unsat;
                    }
                }
            },
            RegLiteral::Member {
                term,
                lang,
                positive,
            } => {
                members.push((term, lang, positive));
            }
        }
    }
    if members.is_empty() {
        return RegCubeSat::Maybe;
    }

    // Layer 3: per-literal state propagation.
    // allowed[(var, lang key)] = states the variable may run to in that
    // language's automaton.
    let mut allowed: BTreeMap<(VarId, usize), BTreeSet<StateId>> = BTreeMap::new();
    let mut langs: BTreeMap<usize, Lang> = BTreeMap::new();
    for (term, lang, positive) in &members {
        langs.entry(lang.key()).or_insert_with(|| lang.clone());
        match propagate_literal(vars, term, lang, *positive, budget) {
            Propagation::Unsat => return RegCubeSat::Unsat,
            Propagation::Skipped => {}
            Propagation::Allowed(per_var) => {
                for (v, states) in per_var {
                    let entry = allowed
                        .entry((v, lang.key()))
                        .or_insert_with(|| states.clone());
                    *entry = entry.intersection(&states).copied().collect();
                    if entry.is_empty() {
                        return RegCubeSat::Unsat;
                    }
                }
            }
        }
    }

    // Layer 4: joint realizability across distinct automata. The
    // feasible product tuples are kept per variable for the counting
    // layer below. With a store, the joint fixpoint is memoized by the
    // interned table ids — a warm solver-loop iteration pays one hash
    // probe here instead of re-running it.
    let constrained_vars: BTreeSet<VarId> = allowed.keys().map(|(v, _)| *v).collect();
    let keys: Vec<usize> = langs.keys().copied().collect();
    let dfta_ids: Option<Vec<DftaId>> = store.as_deref_mut().map(|st| {
        keys.iter()
            .map(|k| langs[k].intern_dfta_in(st))
            .collect::<Vec<_>>()
    });
    let products: Arc<JointReach> = match (&mut store, &dfta_ids) {
        (Some(st), Some(ids)) => match st.joint_reachable(sig, ids, budget.max_product_tuples) {
            Some(p) => p,
            None => return RegCubeSat::Maybe,
        },
        _ => {
            let dftas: Vec<&Dfta> = keys.iter().map(|k| langs[k].dfta()).collect();
            match joint_reachable_products(sig, &dftas, budget.max_product_tuples) {
                Some(p) => Arc::new(p),
                None => return RegCubeSat::Maybe,
            }
        }
    };
    let mut feasible_tuples: BTreeMap<VarId, BTreeSet<Vec<StateId>>> = BTreeMap::new();
    for &v in &constrained_vars {
        let Some(sort) = vars.sort(v) else { continue };
        let Some(tuples) = products.get(&sort) else {
            // No ground term of this sort at all: the membership
            // constraint (and hence the cube) is unsatisfiable.
            return RegCubeSat::Unsat;
        };
        let ctors = var_ctors.get(&v);
        let feas: BTreeSet<Vec<StateId>> = tuples
            .iter()
            .filter(|(tuple, tops)| {
                keys.iter()
                    .zip(tuple.iter())
                    .all(|(k, s)| allowed.get(&(v, *k)).is_none_or(|set| set.contains(s)))
                    && ctors.is_none_or(|cs| tops.iter().any(|t| cs.contains(t)))
            })
            .map(|(tuple, _)| tuple.clone())
            .collect();
        if feas.is_empty() {
            return RegCubeSat::Unsat;
        }
        feasible_tuples.insert(v, feas);
    }

    // Layer 5: pigeonhole counting. Variables restricted to the same
    // finite value set cannot be pairwise distinct in greater number
    // than the set holds; counts come from the deterministic product
    // (each ground term has exactly one run tuple, so tuple counts are
    // disjoint and add up exactly).
    if !neq_pairs.is_empty() && !feasible_tuples.is_empty() {
        let counts: Arc<JointCounts> = match (&mut store, &dfta_ids) {
            (Some(st), Some(ids)) => st.joint_counts(sig, ids, budget.count_cap),
            _ => {
                let dftas: Vec<&Dfta> = keys.iter().map(|k| langs[k].dfta()).collect();
                Arc::new(joint_member_counts(sig, &dftas, budget.count_cap))
            }
        };
        // Group the constrained variables by (sort, feasible set).
        let mut groups: BTreeMap<(SortId, &BTreeSet<Vec<StateId>>), Vec<VarId>> = BTreeMap::new();
        for (&v, feas) in &feasible_tuples {
            if let Some(sort) = vars.sort(v) {
                groups.entry((sort, feas)).or_default().push(v);
            }
        }
        for ((sort, feas), group) in groups {
            if group.len() < 2 {
                continue;
            }
            let Some(per_tuple) = counts.get(&sort) else {
                continue;
            };
            let values: usize = feas
                .iter()
                .map(|t| per_tuple.get(t).copied().unwrap_or(0))
                .fold(0usize, |acc, n| acc.saturating_add(n));
            // A value count at (or beyond) the cap may stand for an
            // arbitrarily large set: only exact counts refute.
            if values >= budget.count_cap || values >= group.len() {
                continue;
            }
            // Fewer values than variables: contradiction if the group
            // is fully pairwise disequal.
            let all_pairs = group.iter().enumerate().all(|(i, &x)| {
                group[i + 1..]
                    .iter()
                    .all(|&y| neq_pairs.contains(&(x.min(y), x.max(y))))
            });
            if all_pairs {
                return RegCubeSat::Unsat;
            }
        }
    }

    RegCubeSat::Maybe
}

enum Propagation {
    /// The literal alone has no satisfying state assignment.
    Unsat,
    /// Per-variable allowed state sets (a projection of the satisfying
    /// assignments).
    Allowed(BTreeMap<VarId, BTreeSet<StateId>>),
    /// Budget exceeded; the literal contributes no constraint.
    Skipped,
}

/// Enumerates state assignments for the distinct variables of `term`
/// and keeps those whose run matches the literal's polarity.
fn propagate_literal(
    vars: &VarContext,
    term: &Term,
    lang: &Lang,
    positive: bool,
    budget: &DpBudget,
) -> Propagation {
    let mut term_vars: Vec<VarId> = term.vars();
    term_vars.sort_unstable();
    term_vars.dedup();

    // Candidate states per variable: reachable states of the variable's
    // sort in this automaton.
    let mut domains: Vec<Vec<StateId>> = Vec::with_capacity(term_vars.len());
    for v in &term_vars {
        let Some(sort) = vars.sort(*v) else {
            return Propagation::Skipped;
        };
        let states = lang.reachable_of_sort(sort);
        if states.is_empty() {
            // No ground term of this sort runs anywhere: the literal is
            // vacuously unsatisfiable (its term has no ground instance
            // tracked by the automaton).
            return Propagation::Unsat;
        }
        domains.push(states);
    }
    let combinations: usize = domains.iter().map(Vec::len).product();
    if combinations > budget.max_literal_assignments {
        return Propagation::Skipped;
    }

    let mut satisfying: BTreeMap<VarId, BTreeSet<StateId>> =
        term_vars.iter().map(|v| (*v, BTreeSet::new())).collect();
    let mut any = false;
    let mut idx = vec![0usize; domains.len()];
    loop {
        let env: BTreeMap<VarId, StateId> = term_vars
            .iter()
            .enumerate()
            .map(|(k, v)| (*v, domains[k][idx[k]]))
            .collect();
        if let Some(state) = lang.dfta().eval(term, &env) {
            if lang.is_final(state) == positive {
                any = true;
                for (v, s) in &env {
                    satisfying.get_mut(v).unwrap().insert(*s);
                }
            }
        }
        // Advance the mixed-radix counter; overflow means every
        // assignment has been visited.
        let mut k = 0;
        loop {
            if k == idx.len() {
                return if any {
                    Propagation::Allowed(satisfying)
                } else {
                    Propagation::Unsat
                };
            }
            idx[k] += 1;
            if idx[k] < domains[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_terms::signature_helpers::{nat_signature, tree_signature};
    use ringen_terms::Term;

    fn even_lang(sig: &Signature) -> Lang {
        let nat = sig.sort_by_name("Nat").unwrap();
        let z = sig.func_by_name("Z").unwrap();
        let s = sig.func_by_name("S").unwrap();
        let mut d = Dfta::new();
        let s0 = d.add_state(nat);
        let s1 = d.add_state(nat);
        d.add_transition(z, vec![], s0);
        d.add_transition(s, vec![s0], s1);
        d.add_transition(s, vec![s1], s0);
        Lang::new("Even", sig, d, [s0])
    }

    fn evenleft_lang(sig: &Signature) -> Lang {
        let tree = sig.sort_by_name("Tree").unwrap();
        let leaf = sig.func_by_name("leaf").unwrap();
        let node = sig.func_by_name("node").unwrap();
        let mut d = Dfta::new();
        let s0 = d.add_state(tree);
        let s1 = d.add_state(tree);
        d.add_transition(leaf, vec![], s0);
        d.add_transition(node, vec![s0, s0], s1);
        d.add_transition(node, vec![s0, s1], s1);
        d.add_transition(node, vec![s1, s0], s0);
        d.add_transition(node, vec![s1, s1], s0);
        Lang::new("EvenLeft", sig, d, [s0])
    }

    #[test]
    fn parity_clash_between_x_and_sx() {
        // x ∈ Even ∧ S(x) ∈ Even is the paper's Example 1 query.
        let (sig, nat, _z, s) = nat_signature();
        let even = even_lang(&sig);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let cube = vec![
            RegLiteral::member(Term::var(x), even.clone()),
            RegLiteral::member(Term::app(s, vec![Term::var(x)]), even),
        ];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Unsat
        );
    }

    #[test]
    fn equalities_route_membership_through_unification() {
        // x = y ∧ x ∈ Even ∧ S(S(y)) ∉ Even: both memberships constrain
        // the same variable after unification and disagree.
        let (sig, nat, _z, s) = nat_signature();
        let even = even_lang(&sig);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let y = vars.fresh("y", nat);
        let cube = vec![
            RegLiteral::Eq(Term::var(x), Term::var(y)),
            RegLiteral::member(Term::var(x), even.clone()),
            RegLiteral::Member {
                term: Term::iterate(s, Term::var(y), 2),
                lang: even,
                positive: false,
            },
        ];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Unsat
        );
    }

    #[test]
    fn satisfiable_membership_is_maybe() {
        let (sig, nat, _z, s) = nat_signature();
        let even = even_lang(&sig);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let cube = vec![
            RegLiteral::member(Term::var(x), even.clone()),
            RegLiteral::Member {
                term: Term::app(s, vec![Term::var(x)]),
                lang: even,
                positive: false,
            },
        ];
        // x even ∧ S(x) odd — satisfiable, so not refuted.
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Maybe
        );
    }

    #[test]
    fn ground_membership_decided_exactly() {
        let (sig, _nat, z, s) = nat_signature();
        let even = even_lang(&sig);
        let vars = VarContext::new();
        let three = Term::iterate(s, Term::leaf(z), 3);
        let cube = vec![RegLiteral::member(three.clone(), even.clone())];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Unsat,
            "3 ∉ Even"
        );
        let cube = vec![RegLiteral::Member {
            term: three,
            lang: even,
            positive: false,
        }];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Maybe,
            "3 ∉ Even holds, nothing to refute"
        );
    }

    #[test]
    fn elementary_layer_still_fires() {
        // Z = S(x) clashes regardless of membership literals.
        let (sig, nat, z, s) = nat_signature();
        let even = even_lang(&sig);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let cube = vec![
            RegLiteral::Eq(Term::leaf(z), Term::app(s, vec![Term::var(x)])),
            RegLiteral::member(Term::var(x), even),
        ];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Unsat
        );
    }

    #[test]
    fn disequality_after_unification_refutes() {
        let (sig, nat, ..) = nat_signature();
        let even = even_lang(&sig);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let y = vars.fresh("y", nat);
        let cube = vec![
            RegLiteral::Eq(Term::var(x), Term::var(y)),
            RegLiteral::member(Term::var(x), even),
            RegLiteral::Neq(Term::var(x), Term::var(y)),
        ];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Unsat
        );
    }

    #[test]
    fn spine_parity_through_constructor_context() {
        // x ∈ EvenLeft ∧ node(x, u) ∈ EvenLeft: the EvenLeftDiag query.
        let (sig, tree, _leaf, node) = tree_signature();
        let el = evenleft_lang(&sig);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", tree);
        let u = vars.fresh("u", tree);
        let cube = vec![
            RegLiteral::member(Term::var(x), el.clone()),
            RegLiteral::member(Term::app(node, vec![Term::var(x), Term::var(u)]), el),
        ];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Unsat
        );
    }

    #[test]
    fn tester_and_membership_interact() {
        // Z?(x) ∧ x ∉ Even: Z is even, so the only allowed constructor
        // contradicts the negative membership.
        let (sig, nat, z, _s) = nat_signature();
        let even = even_lang(&sig);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let cube = vec![
            RegLiteral::Tester {
                ctor: z,
                term: Term::var(x),
                positive: true,
            },
            RegLiteral::Member {
                term: Term::var(x),
                lang: even,
                positive: false,
            },
        ];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Unsat
        );
    }

    #[test]
    fn distinct_automata_joint_realizability() {
        // x ∈ Even ∧ x ∈ Mult3 is satisfiable (x = 0, 6, …): Maybe.
        // x ∈ Even ∧ x ∈ Odd' where Odd' is a *separate* allocation of
        // the complement automaton: jointly unrealizable → Unsat.
        let (sig, nat, z, s) = nat_signature();
        let even = even_lang(&sig);
        let mut d = Dfta::new();
        let q0 = d.add_state(nat);
        let q1 = d.add_state(nat);
        d.add_transition(z, vec![], q0);
        d.add_transition(s, vec![q0], q1);
        d.add_transition(s, vec![q1], q0);
        let odd = Lang::new("Odd", &sig, d, [q1]);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let cube = vec![
            RegLiteral::member(Term::var(x), even.clone()),
            RegLiteral::member(Term::var(x), odd),
        ];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Unsat,
            "even ∧ odd jointly unrealizable"
        );

        let mut d = Dfta::new();
        let m: Vec<StateId> = (0..3).map(|_| d.add_state(nat)).collect();
        d.add_transition(z, vec![], m[0]);
        for i in 0..3 {
            d.add_transition(s, vec![m[i]], m[(i + 1) % 3]);
        }
        let mult3 = Lang::new("Mult3", &sig, d, [m[0]]);
        let cube = vec![
            RegLiteral::member(Term::var(x), even),
            RegLiteral::member(Term::var(x), mult3),
        ];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Maybe,
            "even ∧ mult3 realizable by 0"
        );
    }

    /// The language `{Z}`: everything past zero sinks.
    fn only_z_lang(sig: &Signature) -> Lang {
        let nat = sig.sort_by_name("Nat").unwrap();
        let z = sig.func_by_name("Z").unwrap();
        let s = sig.func_by_name("S").unwrap();
        let mut d = Dfta::new();
        let a = d.add_state(nat);
        let sink = d.add_state(nat);
        d.add_transition(z, vec![], a);
        d.add_transition(s, vec![a], sink);
        d.add_transition(s, vec![sink], sink);
        Lang::new("OnlyZ", sig, d, [a])
    }

    /// The language `{Z, S(Z)}`.
    fn zero_or_one_lang(sig: &Signature) -> Lang {
        let nat = sig.sort_by_name("Nat").unwrap();
        let z = sig.func_by_name("Z").unwrap();
        let s = sig.func_by_name("S").unwrap();
        let mut d = Dfta::new();
        let a = d.add_state(nat);
        let b = d.add_state(nat);
        let c = d.add_state(nat);
        d.add_transition(z, vec![], a);
        d.add_transition(s, vec![a], b);
        d.add_transition(s, vec![b], c);
        d.add_transition(s, vec![c], c);
        Lang::new("ZeroOrOne", sig, d, [a, b])
    }

    #[test]
    fn store_routed_cubes_agree_and_memoize_joint_products() {
        use ringen_automata::AutStore;
        let (sig, nat, z, s) = nat_signature();
        let mut store = AutStore::with_cache(true);
        let even = {
            let mut d = Dfta::new();
            let s0 = d.add_state(nat);
            let s1 = d.add_state(nat);
            d.add_transition(z, vec![], s0);
            d.add_transition(s, vec![s0], s1);
            d.add_transition(s, vec![s1], s0);
            Lang::new_in("Even", &sig, d, [s0], &mut store)
        };
        let mult3 = {
            let mut d = Dfta::new();
            let m: Vec<StateId> = (0..3).map(|_| d.add_state(nat)).collect();
            d.add_transition(z, vec![], m[0]);
            for i in 0..3 {
                d.add_transition(s, vec![m[i]], m[(i + 1) % 3]);
            }
            Lang::new_in("Mult3", &sig, d, [m[0]], &mut store)
        };
        assert_ne!(even.key(), mult3.key());
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let y = vars.fresh("y", nat);
        let cube = vec![
            RegLiteral::member(Term::var(x), even.clone()),
            RegLiteral::member(Term::var(x), mult3.clone()),
            RegLiteral::member(Term::var(y), even.clone()),
            RegLiteral::Neq(Term::var(x), Term::var(y)),
        ];
        let budget = DpBudget::default();
        let plain = check_cube(&sig, &vars, &cube, &budget);
        let routed = check_cube_in(&sig, &vars, &cube, &budget, &mut store);
        assert_eq!(plain, routed, "store routing must not change verdicts");
        assert_eq!(routed, RegCubeSat::Maybe, "x ∈ Even ∩ Mult3 is realizable");
        // A repeated check — the solver-loop shape — answers the joint
        // product and counting fixpoints from the memo.
        let after_cold = store.stats();
        let warm = check_cube_in(&sig, &vars, &cube, &budget, &mut store);
        assert_eq!(warm, routed);
        let after_warm = store.stats();
        assert_eq!(after_warm.memo_misses, after_cold.memo_misses);
        assert!(after_warm.memo_hits >= after_cold.memo_hits + 2);
    }

    #[test]
    fn store_backed_identity_strengthens_state_propagation() {
        use ringen_automata::AutStore;
        // Even and Odd built separately over the *same* parity table:
        // the store gives them one structural identity, so layer 3
        // already intersects their allowed-state sets (the plain path
        // needs the layer-4 joint product for the same verdict).
        let (sig, nat, z, s) = nat_signature();
        let mut store = AutStore::with_cache(true);
        let parity = |finals: usize, store: &mut AutStore| {
            let mut d = Dfta::new();
            let s0 = d.add_state(nat);
            let s1 = d.add_state(nat);
            d.add_transition(z, vec![], s0);
            d.add_transition(s, vec![s0], s1);
            d.add_transition(s, vec![s1], s0);
            let f = if finals == 0 { s0 } else { s1 };
            Lang::new_in(format!("P{finals}"), &sig, d, [f], store)
        };
        let even = parity(0, &mut store);
        let odd = parity(1, &mut store);
        assert_eq!(
            even.key(),
            odd.key(),
            "structurally equal tables share one identity"
        );
        assert_eq!(store.stats().dedup_hits, 1, "second table deduped");
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let cube = vec![
            RegLiteral::member(Term::var(x), even),
            RegLiteral::member(Term::var(x), odd),
        ];
        assert_eq!(
            check_cube_in(&sig, &vars, &cube, &DpBudget::default(), &mut store),
            RegCubeSat::Unsat
        );
    }

    #[test]
    fn pigeonhole_refutes_disequal_singletons() {
        let (sig, nat, ..) = nat_signature();
        let only_z = only_z_lang(&sig);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let y = vars.fresh("y", nat);
        let cube = vec![
            RegLiteral::member(Term::var(x), only_z.clone()),
            RegLiteral::member(Term::var(y), only_z),
            RegLiteral::Neq(Term::var(x), Term::var(y)),
        ];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Unsat
        );
    }

    #[test]
    fn pigeonhole_spares_infinite_languages() {
        let (sig, nat, ..) = nat_signature();
        let even = even_lang(&sig);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let y = vars.fresh("y", nat);
        let cube = vec![
            RegLiteral::member(Term::var(x), even.clone()),
            RegLiteral::member(Term::var(y), even),
            RegLiteral::Neq(Term::var(x), Term::var(y)),
        ];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Maybe,
            "two distinct evens exist"
        );
    }

    #[test]
    fn pigeonhole_counts_cliques() {
        let (sig, nat, ..) = nat_signature();
        let two = zero_or_one_lang(&sig);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        let y = vars.fresh("y", nat);
        let z = vars.fresh("z", nat);
        let member = |v| RegLiteral::member(Term::var(v), two.clone());
        let neq = |a, b| RegLiteral::Neq(Term::var(a), Term::var(b));
        // Three pairwise-distinct variables in a two-term language.
        let cube = vec![
            member(x),
            member(y),
            member(z),
            neq(x, y),
            neq(y, z),
            neq(x, z),
        ];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Unsat
        );
        // Dropping one edge leaves room: x = z is permitted.
        let cube = vec![member(x), member(y), member(z), neq(x, y), neq(y, z)];
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Maybe
        );
    }

    #[test]
    fn repeated_variable_in_one_literal() {
        // node(x, x) ∈ OnlyLeafPairs where the language accepts only
        // node(leaf, node(…)) shapes — no single x fits both positions.
        let (sig, tree, leaf, node) = tree_signature();
        let mut d = Dfta::new();
        let ql = d.add_state(tree); // leaf only
        let qn = d.add_state(tree); // node only
        let qf = d.add_state(tree); // the accepted shape
        d.add_transition(leaf, vec![], ql);
        d.add_transition(node, vec![ql, qn], qf);
        d.add_transition(node, vec![ql, ql], qn);
        let lang = Lang::new("Shape", &sig, d, [qf]);
        let mut vars = VarContext::new();
        let x = vars.fresh("x", tree);
        let cube = vec![RegLiteral::member(
            Term::app(node, vec![Term::var(x), Term::var(x)]),
            lang,
        )];
        // x would have to be both a leaf (state ql) and a node (state
        // qn) — the shared-state enumeration rules that out.
        assert_eq!(
            check_cube(&sig, &vars, &cube, &DpBudget::default()),
            RegCubeSat::Unsat
        );
    }
}
