//! `RegElem` invariants and their certified inductiveness check.
//!
//! A [`RegElemInvariant`] assigns one [`RegElemFormula`] to every
//! uninterpreted predicate. [`check_inductive`] reduces the validity of
//! each clause to the unsatisfiability of violation cubes — exactly the
//! reduction `ringen-elem` uses — and discharges the cubes with the
//! sound-for-UNSAT procedure of [`crate::dp`]. An `Inductive` verdict
//! is therefore a *certificate*; `NotProved` only means the check could
//! not certify the clause (the candidate may or may not be inductive).
//!
//! The two embeddings realize the subsumption claims of §7's future
//! work: [`RegElemInvariant::from_elem`] (no membership atoms) and
//! [`RegElemInvariant::from_regular`] (a regular relation is the
//! disjunction over its final tuples of per-component membership
//! atoms).

use std::collections::BTreeMap;

use ringen_automata::AutStore;
use ringen_chc::{ChcSystem, Clause, Constraint, PredId};
use ringen_core::invariant::RegularInvariant;
use ringen_elem::ElemInvariant;
use ringen_terms::{GroundTerm, Term, VarId};

use crate::dp::{check_cube_impl, DpBudget, RegCubeSat};
use crate::formula::{RegCube, RegElemFormula, RegLiteral};
use crate::lang::Lang;

/// A `RegElem` interpretation of every uninterpreted predicate.
#[derive(Debug, Clone)]
pub struct RegElemInvariant {
    /// Formula per predicate, over parameters `#0 … #(arity-1)`.
    pub formulas: BTreeMap<PredId, RegElemFormula>,
}

impl RegElemInvariant {
    /// Evaluates the invariant on a ground tuple.
    ///
    /// # Panics
    ///
    /// Panics if `p` has no formula.
    pub fn holds(&self, p: PredId, args: &[GroundTerm]) -> bool {
        self.formulas[&p].eval_tuple(args)
    }

    /// Embeds an elementary invariant: `Elem ⊆ RegElem`.
    pub fn from_elem(inv: &ElemInvariant) -> RegElemInvariant {
        RegElemInvariant {
            formulas: inv
                .formulas
                .iter()
                .map(|(&p, f)| (p, RegElemFormula::from_elem(f)))
                .collect(),
        }
    }

    /// Embeds a regular invariant: `Reg ⊆ RegElem`. For each predicate
    /// with final tuples `S_F`, the formula is
    /// `⋁_{⟨s₁…sₙ⟩ ∈ S_F} ⋀ᵢ #i ∈ L(A, sᵢ)` over the invariant's shared
    /// transition table.
    pub fn from_regular(sys: &ChcSystem, inv: &RegularInvariant) -> RegElemInvariant {
        Self::from_regular_impl(sys, inv, None)
    }

    /// [`RegElemInvariant::from_regular`] with every membership
    /// language built through an [`AutStore`]: the invariant's one
    /// shared (completed) transition table is interned a single time,
    /// and every per-state language references it by id — so the cube
    /// procedure recognizes all of them as the same automaton.
    pub fn from_regular_in(
        sys: &ChcSystem,
        inv: &RegularInvariant,
        store: &mut AutStore,
    ) -> RegElemInvariant {
        Self::from_regular_impl(sys, inv, Some(store))
    }

    fn from_regular_impl(
        sys: &ChcSystem,
        inv: &RegularInvariant,
        mut store: Option<&mut AutStore>,
    ) -> RegElemInvariant {
        let mut formulas = BTreeMap::new();
        for p in inv.preds() {
            let decl = sys.rels.decl(p);
            let mut cubes: Vec<RegCube> = Vec::new();
            for tuple in inv.finals(p) {
                let cube: RegCube = tuple
                    .iter()
                    .enumerate()
                    .map(|(i, &state)| {
                        let name = format!("{}[{state}]", decl.name);
                        let lang = match store.as_deref_mut() {
                            Some(st) => {
                                Lang::new_in(name, &sys.sig, inv.dfta().clone(), [state], st)
                            }
                            None => Lang::new(name, &sys.sig, inv.dfta().clone(), [state]),
                        };
                        RegLiteral::member(Term::var(VarId(i as u32)), lang)
                    })
                    .collect();
                cubes.push(cube);
            }
            formulas.insert(p, RegElemFormula { cubes });
        }
        RegElemInvariant { formulas }
    }
}

/// Outcome of [`check_inductive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegElemCheck {
    /// Every clause is certified valid under the candidate.
    Inductive,
    /// The named clause could not be certified (distribution overflow,
    /// an unsupported ∀∃ clause, or a violation cube the procedure
    /// cannot refute — including genuinely satisfiable ones).
    NotProved {
        /// Index into `sys.clauses`.
        clause: usize,
    },
}

impl RegElemCheck {
    /// `true` for [`RegElemCheck::Inductive`].
    pub fn is_inductive(&self) -> bool {
        matches!(self, RegElemCheck::Inductive)
    }
}

/// Checks that a candidate invariant makes every clause valid, by
/// refuting each violation cube `φ ∧ ⋀ inv(t̄ᵢ) ∧ ¬inv(t̄_H)`.
///
/// Sound: an [`RegElemCheck::Inductive`] answer certifies safety
/// (together with the candidate satisfying the queries, which is part
/// of the same reduction). Incomplete: `NotProved` rejects candidates
/// the underlying procedure cannot certify.
///
/// # Panics
///
/// Panics if `sys` is not well-sorted or the candidate misses a
/// predicate.
pub fn check_inductive(
    sys: &ChcSystem,
    inv: &RegElemInvariant,
    dnf_cap: usize,
    budget: &DpBudget,
) -> RegElemCheck {
    check_inductive_impl(sys, inv, dnf_cap, budget, None)
}

/// [`check_inductive`] with every violation cube discharged through a
/// hash-consed [`AutStore`] — the handle a solver loop threads through
/// all of its candidate checks, so repeated joint products over the
/// same language pool are computed once.
pub fn check_inductive_in(
    sys: &ChcSystem,
    inv: &RegElemInvariant,
    dnf_cap: usize,
    budget: &DpBudget,
    store: &mut AutStore,
) -> RegElemCheck {
    check_inductive_impl(sys, inv, dnf_cap, budget, Some(store))
}

fn check_inductive_impl(
    sys: &ChcSystem,
    inv: &RegElemInvariant,
    dnf_cap: usize,
    budget: &DpBudget,
    mut store: Option<&mut AutStore>,
) -> RegElemCheck {
    if let Err(e) = sys.well_sorted() {
        panic!("input system is not well-sorted: {e}");
    }
    for (i, clause) in sys.clauses.iter().enumerate() {
        if !clause_certified(sys, clause, inv, dnf_cap, budget, store.as_deref_mut()) {
            return RegElemCheck::NotProved { clause: i };
        }
    }
    RegElemCheck::Inductive
}

fn clause_certified(
    sys: &ChcSystem,
    clause: &Clause,
    inv: &RegElemInvariant,
    dnf_cap: usize,
    budget: &DpBudget,
    mut store: Option<&mut AutStore>,
) -> bool {
    // The reduction is universal-only; a ∀∃ clause cannot be certified.
    if !clause.exist_vars.is_empty() {
        return false;
    }
    let mut constraint_cube: RegCube = Vec::new();
    for k in &clause.constraints {
        constraint_cube.push(match k {
            Constraint::Eq(a, b) => RegLiteral::Eq(a.clone(), b.clone()),
            Constraint::Neq(a, b) => RegLiteral::Neq(a.clone(), b.clone()),
            Constraint::Tester {
                ctor,
                term,
                positive,
            } => RegLiteral::Tester {
                ctor: *ctor,
                term: term.clone(),
                positive: *positive,
            },
        });
    }
    let mut violation = RegElemFormula::cube(constraint_cube);
    for atom in &clause.body {
        let inst = inv.formulas[&atom.pred].instantiate(&atom.args);
        match violation.and(&inst, dnf_cap) {
            Some(v) => violation = v,
            None => return false,
        }
    }
    if let Some(head) = &clause.head {
        let inst = inv.formulas[&head.pred].instantiate(&head.args);
        let Some(neg) = inst.negated(dnf_cap) else {
            return false;
        };
        match violation.and(&neg, dnf_cap) {
            Some(v) => violation = v,
            None => return false,
        }
    }
    violation.cubes.iter().all(|cube| {
        check_cube_impl(&sys.sig, &clause.vars, cube, budget, store.as_deref_mut())
            == RegCubeSat::Unsat
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_automata::Dfta;
    use ringen_terms::Signature;

    /// The EvenDiag program, built inline to keep this crate free of a
    /// dev-dependency cycle (integration tests use `ringen-benchgen`).
    fn even_diag() -> ChcSystem {
        ringen_chc::parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun evenpair (Nat Nat) Bool)
            (assert (evenpair Z Z))
            (assert (forall ((x Nat) (y Nat))
              (=> (evenpair x y) (evenpair (S (S x)) (S (S y))))))
            (assert (forall ((x Nat) (y Nat))
              (=> (and (evenpair x y) (distinct x y)) false)))
            (assert (forall ((x Nat) (y Nat))
              (=> (and (evenpair x y) (evenpair (S x) (S y))) false)))
            "#,
        )
        .unwrap()
    }

    fn even_lang(sig: &Signature) -> Lang {
        let nat = sig.sort_by_name("Nat").unwrap();
        let z = sig.func_by_name("Z").unwrap();
        let s = sig.func_by_name("S").unwrap();
        let mut d = Dfta::new();
        let s0 = d.add_state(nat);
        let s1 = d.add_state(nat);
        d.add_transition(z, vec![], s0);
        d.add_transition(s, vec![s0], s1);
        d.add_transition(s, vec![s1], s0);
        Lang::new("Even", sig, d, [s0])
    }

    fn diagonal_even(sys: &ChcSystem) -> RegElemInvariant {
        let p = sys.rels.by_name("evenpair").unwrap();
        let even = even_lang(&sys.sig);
        let formula = RegElemFormula::cube(vec![
            RegLiteral::Eq(Term::var(VarId(0)), Term::var(VarId(1))),
            RegLiteral::member(Term::var(VarId(0)), even),
        ]);
        RegElemInvariant {
            formulas: [(p, formula)].into(),
        }
    }

    #[test]
    fn evendiag_combined_invariant_is_certified() {
        let sys = even_diag();
        let inv = diagonal_even(&sys);
        assert_eq!(
            check_inductive(&sys, &inv, 64, &DpBudget::default()),
            RegElemCheck::Inductive
        );
    }

    #[test]
    fn evendiag_pure_diagonal_fails_the_parity_query() {
        let sys = even_diag();
        let p = sys.rels.by_name("evenpair").unwrap();
        let formula = RegElemFormula::lit(RegLiteral::Eq(Term::var(VarId(0)), Term::var(VarId(1))));
        let inv = RegElemInvariant {
            formulas: [(p, formula)].into(),
        };
        // The diagonal alone satisfies clauses 1–3 but not the parity
        // query (clause index 3).
        assert_eq!(
            check_inductive(&sys, &inv, 64, &DpBudget::default()),
            RegElemCheck::NotProved { clause: 3 }
        );
    }

    #[test]
    fn evendiag_pure_membership_fails_the_diagonal_query() {
        let sys = even_diag();
        let p = sys.rels.by_name("evenpair").unwrap();
        let even = even_lang(&sys.sig);
        let formula = RegElemFormula::cube(vec![
            RegLiteral::member(Term::var(VarId(0)), even.clone()),
            RegLiteral::member(Term::var(VarId(1)), even),
        ]);
        let inv = RegElemInvariant {
            formulas: [(p, formula)].into(),
        };
        // Both-even is regular and satisfies every clause except the
        // disequality query (clause index 2).
        assert_eq!(
            check_inductive(&sys, &inv, 64, &DpBudget::default()),
            RegElemCheck::NotProved { clause: 2 }
        );
    }

    #[test]
    fn certified_invariant_agrees_with_ground_semantics() {
        let sys = even_diag();
        let inv = diagonal_even(&sys);
        let p = sys.rels.by_name("evenpair").unwrap();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let n = |k| GroundTerm::iterate(s, GroundTerm::leaf(z), k);
        assert!(inv.holds(p, &[n(6), n(6)]));
        assert!(!inv.holds(p, &[n(5), n(5)]));
        assert!(!inv.holds(p, &[n(4), n(6)]));
    }

    #[test]
    fn holds_on_missing_predicate_panics() {
        let sys = even_diag();
        let inv = RegElemInvariant {
            formulas: BTreeMap::new(),
        };
        let p = sys.rels.by_name("evenpair").unwrap();
        let result = std::panic::catch_unwind(|| inv.holds(p, &[]));
        assert!(result.is_err());
    }
}
