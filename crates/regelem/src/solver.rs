//! The `RegElem` invariant solver.
//!
//! §8's discussion ends with the conjecture that "a hybrid approach to
//! infer invariants in parts by automata and in parts by FOL should
//! exhibit the best performance"; §7's future work names first-order
//! languages with regular membership predicates as the class that
//! subsumes both `Reg` and `Elem`. This solver realizes the
//! combination in three phases:
//!
//! 1. **Regular phase** — the full RInGen pipeline (finite-model
//!    finding). A success embeds via
//!    [`RegElemInvariant::from_regular`].
//! 2. **Elementary phase** — the template solver of `ringen-elem`.
//!    A success embeds via [`RegElemInvariant::from_elem`].
//! 3. **Combined phase** — genuinely mixed candidates `φ ∧ #i ∈ L`
//!    with `φ` from the elementary template pool and `L` from the
//!    enumerated language pool of [`crate::enumerate`], certified by
//!    the sound inductiveness check of [`crate::invariant`]. This is
//!    the phase that solves programs like `EvenDiag`, whose only safe
//!    inductive invariants live outside `Reg ∪ Elem ∪ SizeElem`.
//!
//! Unsafe systems are refuted up front by the shared bottom-up
//! saturation engine, and every budget is a deterministic step count.

use std::collections::BTreeMap;

use ringen_automata::AutStore;
use ringen_chc::{ChcSystem, PredId};
use ringen_core::saturation::{saturate_guarded, Refutation, SaturationConfig, SaturationOutcome};
use ringen_core::{solve_guarded as solve_regular, Answer, Guard, Poller, RingenConfig};
use ringen_elem::search::for_each_composition;
use ringen_elem::{candidates, solve_elem_guarded, ElemAnswer, ElemConfig, TemplateConfig};
use ringen_terms::{Term, VarId};

use crate::dp::DpBudget;
use crate::enumerate::{enumerate_langs_in, LangPoolConfig};
use crate::formula::{RegElemFormula, RegLiteral};
use crate::invariant::{check_inductive_in, RegElemCheck, RegElemInvariant};

/// Which phase produced a SAT answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Finite-model finding (`Reg ⊆ RegElem`).
    Regular,
    /// Elementary templates (`Elem ⊆ RegElem`).
    Elementary,
    /// A genuinely mixed template-plus-membership candidate.
    Combined,
}

/// Budgets for [`solve_regelem`].
#[derive(Debug, Clone)]
pub struct RegElemConfig {
    /// Refuter budgets (shared with the other solvers).
    pub saturation: SaturationConfig,
    /// Run the regular phase, with these budgets.
    pub regular: Option<RingenConfig>,
    /// Run the elementary phase, with these budgets.
    pub elementary: Option<ElemConfig>,
    /// Elementary template pool of the combined phase.
    pub templates: TemplateConfig,
    /// Language pool of the combined phase.
    pub langs: LangPoolConfig,
    /// Elementary templates that get membership conjuncts (taken from
    /// the front of the pool).
    pub combine_prefix: usize,
    /// Maximum candidate assignments in the combined phase.
    pub max_assignments: u64,
    /// DNF distribution cap during inductiveness checking.
    pub dnf_cap: usize,
    /// Resource guards of the cube procedure.
    pub dp_budget: DpBudget,
}

impl Default for RegElemConfig {
    fn default() -> Self {
        RegElemConfig {
            saturation: SaturationConfig::default(),
            regular: Some(RingenConfig::quick()),
            elementary: Some(ElemConfig::quick()),
            templates: TemplateConfig::default(),
            langs: LangPoolConfig::default(),
            combine_prefix: 24,
            max_assignments: 50_000,
            dnf_cap: 64,
            dp_budget: DpBudget::default(),
        }
    }
}

impl RegElemConfig {
    /// Small-budget configuration for batch benchmarking.
    pub fn quick() -> Self {
        RegElemConfig {
            saturation: SaturationConfig {
                max_facts: 4_000,
                max_rounds: 32,
                max_term_height: 16,
                free_var_candidates: 6,
                max_steps: 400_000,
                ..SaturationConfig::default()
            },
            max_assignments: 20_000,
            ..RegElemConfig::default()
        }
    }
}

/// The solver's verdict.
#[derive(Debug, Clone)]
pub enum RegElemAnswer {
    /// Safe, with a certified `RegElem` invariant.
    Sat(Box<RegElemInvariant>, Provenance),
    /// Unsafe, with a ground refutation.
    Unsat(Refutation),
    /// Budgets exhausted.
    Unknown,
    /// The search was cancelled by its [`Guard`]; [`RegElemStats`]
    /// still reflects the work completed.
    Interrupted,
}

impl RegElemAnswer {
    /// `true` for [`RegElemAnswer::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, RegElemAnswer::Sat(..))
    }

    /// `true` for [`RegElemAnswer::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, RegElemAnswer::Unsat(_))
    }

    /// `true` for [`RegElemAnswer::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, RegElemAnswer::Unknown)
    }

    /// `true` for [`RegElemAnswer::Interrupted`].
    pub fn is_interrupted(&self) -> bool {
        matches!(self, RegElemAnswer::Interrupted)
    }
}

/// Search statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegElemStats {
    /// Combined-phase candidate assignments checked.
    pub assignments: u64,
    /// Size of the per-predicate candidate pools (product capped at
    /// `u64::MAX`).
    pub pool_total: u64,
    /// Languages enumerated across all argument positions.
    pub langs: usize,
    /// Automaton-store accounting for the whole solve (the evidence
    /// that the solver loop goes through the memoized Boolean algebra).
    pub store: ringen_automata::StoreStats,
}

/// Runs the three-phase solver. One [`AutStore`] handle is owned for
/// the whole solve: phase 1's invariant verification, the language
/// pool, and every combined-phase inductiveness check route their
/// automaton work through its memo tables (the returned
/// [`RegElemStats::store`] counters show the traffic).
///
/// # Panics
///
/// Panics if `sys` is not well-sorted.
pub fn solve_regelem(sys: &ChcSystem, cfg: &RegElemConfig) -> (RegElemAnswer, RegElemStats) {
    solve_regelem_guarded(sys, cfg, &Guard::new())
}

/// [`solve_regelem`] with cooperative cancellation: the guard is
/// threaded into every phase — the refuter, the regular pipeline, the
/// elementary sweep, and the combined-candidate sweep. A trip yields
/// [`RegElemAnswer::Interrupted`] with partial statistics; the
/// automaton store never caches a partial fixpoint, so the work done
/// so far stays sound.
///
/// # Panics
///
/// Same conditions as [`solve_regelem`].
pub fn solve_regelem_guarded(
    sys: &ChcSystem,
    cfg: &RegElemConfig,
    guard: &Guard,
) -> (RegElemAnswer, RegElemStats) {
    let mut store = AutStore::new();
    let (answer, mut stats) = solve_regelem_with(sys, cfg, &mut store, guard);
    stats.store = store.stats();
    (answer, stats)
}

fn solve_regelem_with(
    sys: &ChcSystem,
    cfg: &RegElemConfig,
    store: &mut AutStore,
    guard: &Guard,
) -> (RegElemAnswer, RegElemStats) {
    if let Err(e) = sys.well_sorted() {
        panic!("input system is not well-sorted: {e}");
    }
    let mut stats = RegElemStats::default();
    let rec = guard.recorder().clone();

    // Phase 0: refute.
    {
        let mut span = rec.span("regelem.refute");
        let (outcome, _) = saturate_guarded(sys, &cfg.saturation, guard);
        match outcome {
            SaturationOutcome::Refuted(r) => {
                span.note_str("outcome", "refuted");
                return (RegElemAnswer::Unsat(r), stats);
            }
            SaturationOutcome::Interrupted(_) => {
                span.note_str("outcome", "interrupted");
                return (RegElemAnswer::Interrupted, stats);
            }
            SaturationOutcome::Saturated(_) | SaturationOutcome::Budget(_) => {
                span.note_str("outcome", "no_refutation");
            }
        }
    }

    // Phase 1: regular invariants by finite-model finding.
    if let Some(rcfg) = &cfg.regular {
        let mut span = rec.span("regelem.regular");
        let (answer, _) = solve_regular(sys, rcfg, store, guard);
        match answer {
            Answer::Sat(sat) => {
                span.note_str("outcome", "sat");
                let inv = RegElemInvariant::from_regular_in(
                    &sat.preprocessed.system,
                    &sat.invariant,
                    store,
                );
                // Restrict to the original predicates (preprocessing may
                // have added diseq auxiliaries, whose ids extend the
                // original relation table).
                let formulas: BTreeMap<PredId, RegElemFormula> = sys
                    .rels
                    .iter()
                    .filter_map(|p| inv.formulas.get(&p).map(|f| (p, f.clone())))
                    .collect();
                return (
                    RegElemAnswer::Sat(
                        Box::new(RegElemInvariant { formulas }),
                        Provenance::Regular,
                    ),
                    stats,
                );
            }
            Answer::Unsat(r) => {
                span.note_str("outcome", "unsat");
                return (RegElemAnswer::Unsat(r), stats);
            }
            Answer::Interrupted => {
                span.note_str("outcome", "interrupted");
                return (RegElemAnswer::Interrupted, stats);
            }
            Answer::Unknown(_) => span.note_str("outcome", "unknown"),
        }
    }

    // Phase 2: elementary invariants.
    if let Some(ecfg) = &cfg.elementary {
        let mut span = rec.span("regelem.elem");
        let (answer, _) = solve_elem_guarded(sys, ecfg, guard);
        match answer {
            ElemAnswer::Sat(inv) => {
                span.note_str("outcome", "sat");
                return (
                    RegElemAnswer::Sat(
                        Box::new(RegElemInvariant::from_elem(&inv)),
                        Provenance::Elementary,
                    ),
                    stats,
                );
            }
            ElemAnswer::Unsat(r) => {
                span.note_str("outcome", "unsat");
                return (RegElemAnswer::Unsat(r), stats);
            }
            ElemAnswer::Interrupted => {
                span.note_str("outcome", "interrupted");
                return (RegElemAnswer::Interrupted, stats);
            }
            ElemAnswer::Unknown => span.note_str("outcome", "unknown"),
        }
    }

    // Phase 3: combined candidates.
    let mut span = rec.span("regelem.combined");
    let answer = regelem_combined(sys, cfg, store, guard, &mut stats);
    span.note("assignments", stats.assignments as i64);
    span.note("langs", stats.langs as i64);
    span.note("pool_total", stats.pool_total as i64);
    span.note_str(
        "outcome",
        match &answer {
            RegElemAnswer::Sat(..) => "sat",
            RegElemAnswer::Unsat(_) => "unsat",
            RegElemAnswer::Unknown => "unknown",
            RegElemAnswer::Interrupted => "interrupted",
        },
    );
    (answer, stats)
}

/// Phase 3 of [`solve_regelem_guarded`]: the genuinely mixed
/// template-plus-membership sweep.
fn regelem_combined(
    sys: &ChcSystem,
    cfg: &RegElemConfig,
    store: &mut AutStore,
    guard: &Guard,
    stats: &mut RegElemStats,
) -> RegElemAnswer {
    // The certification is universal-only, so ∀∃ systems stop here.
    if sys.clauses.iter().any(|c| !c.exist_vars.is_empty()) {
        return RegElemAnswer::Unknown;
    }
    let preds: Vec<PredId> = sys.rels.iter().collect();
    if preds.is_empty() {
        return RegElemAnswer::Sat(
            Box::new(RegElemInvariant {
                formulas: BTreeMap::new(),
            }),
            Provenance::Elementary,
        );
    }
    let pools: Vec<Vec<RegElemFormula>> = preds
        .iter()
        .map(|&p| {
            let pool = candidate_pool(sys, p, cfg, stats, store);
            stats.pool_total = stats.pool_total.saturating_add(pool.len() as u64);
            pool
        })
        .collect();

    enum Stop {
        Budget,
        Interrupted,
    }
    let caps: Vec<usize> = pools.iter().map(|p| p.len() - 1).collect();
    let max_total: usize = caps.iter().sum();
    let mut idx = vec![0usize; preds.len()];
    let mut poller = Poller::new(guard);
    for total in 0..=max_total {
        let stop = for_each_composition(&caps, total, &mut idx, 0, &mut |idx| {
            if poller.poll() {
                return Some(Err(Stop::Interrupted));
            }
            stats.assignments += 1;
            if stats.assignments > cfg.max_assignments {
                return Some(Err(Stop::Budget));
            }
            let formulas: BTreeMap<PredId, RegElemFormula> = preds
                .iter()
                .zip(pools.iter().zip(idx))
                .map(|(&p, (pool, &i))| (p, pool[i].clone()))
                .collect();
            let inv = RegElemInvariant { formulas };
            if check_inductive_in(sys, &inv, cfg.dnf_cap, &cfg.dp_budget, store)
                == RegElemCheck::Inductive
            {
                return Some(Ok(inv));
            }
            None
        });
        match stop {
            Some(Ok(inv)) => return RegElemAnswer::Sat(Box::new(inv), Provenance::Combined),
            Some(Err(Stop::Budget)) => return RegElemAnswer::Unknown,
            Some(Err(Stop::Interrupted)) => return RegElemAnswer::Interrupted,
            None => {}
        }
    }
    RegElemAnswer::Unknown
}

/// Builds the combined-phase candidate pool for one predicate:
/// elementary templates first (cheapest), then bare membership atoms,
/// then template-plus-membership conjunctions.
fn candidate_pool(
    sys: &ChcSystem,
    p: PredId,
    cfg: &RegElemConfig,
    stats: &mut RegElemStats,
    store: &mut AutStore,
) -> Vec<RegElemFormula> {
    let domain = &sys.rels.decl(p).domain;
    let elem_pool = candidates(&sys.sig, domain, &cfg.templates);
    let mut out: Vec<RegElemFormula> = elem_pool.iter().map(RegElemFormula::from_elem).collect();

    let lang_pools: Vec<_> = domain
        .iter()
        .map(|&s| enumerate_langs_in(&sys.sig, s, &cfg.langs, store))
        .collect();
    stats.langs += lang_pools.iter().map(Vec::len).sum::<usize>();

    for (i, langs) in lang_pools.iter().enumerate() {
        for l in langs {
            out.push(RegElemFormula::lit(RegLiteral::member(
                Term::var(VarId(i as u32)),
                l.clone(),
            )));
        }
    }
    // Mixed candidates: single-cube elementary prefixes with one
    // membership conjunct.
    for e in elem_pool.iter().take(cfg.combine_prefix) {
        if e.cubes.len() != 1 {
            continue;
        }
        for (i, langs) in lang_pools.iter().enumerate() {
            for l in langs {
                let mut cube: Vec<RegLiteral> =
                    e.cubes[0].iter().cloned().map(RegLiteral::from).collect();
                if cube.is_empty() {
                    continue; // ⊤ ∧ membership is the bare atom above
                }
                cube.push(RegLiteral::member(Term::var(VarId(i as u32)), l.clone()));
                out.push(RegElemFormula::cube(cube));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_terms::GroundTerm;

    fn quick() -> RegElemConfig {
        // Unit tests exercise the combined phase directly; the regular
        // and elementary phases get their own budgets elsewhere.
        RegElemConfig {
            regular: None,
            elementary: None,
            ..RegElemConfig::quick()
        }
    }

    fn even_diag() -> ChcSystem {
        ringen_chc::parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun evenpair (Nat Nat) Bool)
            (assert (evenpair Z Z))
            (assert (forall ((x Nat) (y Nat))
              (=> (evenpair x y) (evenpair (S (S x)) (S (S y))))))
            (assert (forall ((x Nat) (y Nat))
              (=> (and (evenpair x y) (distinct x y)) false)))
            (assert (forall ((x Nat) (y Nat))
              (=> (and (evenpair x y) (evenpair (S x) (S y))) false)))
            "#,
        )
        .unwrap()
    }

    #[test]
    fn evendiag_needs_the_combined_phase() {
        let sys = even_diag();
        let (answer, stats) = solve_regelem(&sys, &quick());
        let (inv, provenance) = match answer {
            RegElemAnswer::Sat(inv, p) => (inv, p),
            other => panic!("expected SAT, got {other:?}"),
        };
        assert_eq!(provenance, Provenance::Combined);
        assert!(stats.assignments > 0);
        // The combined search demonstrably routes through the automaton
        // store: the language pool is interned, and the joint products
        // of the repeated cube checks answer from the memo tables.
        // (Skipped under RINGEN_AUT_CACHE=0, where the store is a
        // pass-through by design.)
        if std::env::var("RINGEN_AUT_CACHE").map_or(true, |v| v.trim() != "0") {
            assert!(stats.store.interned_dftas > 0, "language pool not interned");
            assert!(
                stats.store.memo_hits > stats.store.memo_misses,
                "warm cube checks must hit the joint-product memo (hits {}, misses {})",
                stats.store.memo_hits,
                stats.store.memo_misses,
            );
        }
        // Any certified invariant of EvenDiag contains the even
        // diagonal, excludes the odd diagonal (parity query) and stays
        // inside the diagonal (disequality query).
        let p = sys.rels.by_name("evenpair").unwrap();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let n = |k| GroundTerm::iterate(s, GroundTerm::leaf(z), k);
        assert!(inv.holds(p, &[n(4), n(4)]));
        assert!(!inv.holds(p, &[n(3), n(3)]));
        assert!(!inv.holds(p, &[n(2), n(4)]));
    }

    #[test]
    fn unsat_system_is_refuted_first() {
        let sys = ringen_chc::parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat) Bool)
            (assert (p Z))
            (assert (=> (p Z) false))
            "#,
        )
        .unwrap();
        let (answer, _) = solve_regelem(&sys, &quick());
        assert!(answer.is_unsat());
    }

    #[test]
    fn regular_phase_takes_priority_when_enabled() {
        let sys = ringen_chc::parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap();
        let (answer, _) = solve_regelem(&sys, &RegElemConfig::quick());
        let (inv, provenance) = match answer {
            RegElemAnswer::Sat(inv, p) => (inv, p),
            other => panic!("expected SAT, got {other:?}"),
        };
        assert_eq!(provenance, Provenance::Regular);
        let even = sys.rels.by_name("even").unwrap();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let n = |k| GroundTerm::iterate(s, GroundTerm::leaf(z), k);
        assert!(inv.holds(even, &[n(6)]));
        assert!(!inv.holds(even, &[n(7)]));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let sys = even_diag();
        let mut cfg = quick();
        cfg.max_assignments = 1;
        let (answer, _) = solve_regelem(&sys, &cfg);
        assert!(answer.is_unknown());
    }
}
