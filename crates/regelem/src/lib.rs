//! `ringen-regelem` — the `RegElem` representation class: first-order
//! formulas over ADTs extended with **regular-language membership
//! predicates**, the class the paper's §7 future work singles out as
//! "decidable and closed under Boolean operations, subsuming both
//! `Reg` and `Elem`" (Comon and Delor [15]).
//!
//! * [`Lang`] — immutable regular tree languages (completed DFTAs);
//! * [`RegLiteral`], [`RegElemFormula`] — DNF formulas mixing the
//!   elementary atoms of Definition 6 with membership atoms `t ∈ L`;
//! * [`check_cube`] — a layered, sound-for-UNSAT satisfiability check
//!   (elementary projection, unification, automaton state propagation,
//!   joint product realizability);
//! * [`RegElemInvariant`], [`check_inductive`] — certified
//!   inductiveness of `RegElem` candidates, with the `Elem ⊆ RegElem`
//!   and `Reg ⊆ RegElem` embeddings;
//! * [`solve_regelem`] — a three-phase solver (regular → elementary →
//!   genuinely combined), realizing the hybrid approach §8's
//!   discussion conjectures "should exhibit the best performance".
//!
//! The showcase separation: the `EvenDiag` program (see
//! `ringen-benchgen`) pairs even Peano numbers with themselves. Its
//! safe inductive invariants must express *both* the diagonal (not
//! regular, Prop. 11) and the parity (not elementary, Prop. 1), so
//! every Figure 3 solver diverges — while the combined phase finds
//! `#0 = #1 ∧ #0 ∈ Even` in milliseconds.
//!
//! # Example
//!
//! ```
//! use ringen_regelem::{solve_regelem, Provenance, RegElemAnswer, RegElemConfig};
//!
//! let sys = ringen_chc::parse_str(r#"
//!   (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
//!   (declare-fun evenpair (Nat Nat) Bool)
//!   (assert (evenpair Z Z))
//!   (assert (forall ((x Nat) (y Nat))
//!     (=> (evenpair x y) (evenpair (S (S x)) (S (S y))))))
//!   (assert (forall ((x Nat) (y Nat))
//!     (=> (and (evenpair x y) (distinct x y)) false)))
//!   (assert (forall ((x Nat) (y Nat))
//!     (=> (and (evenpair x y) (evenpair (S x) (S y))) false)))
//! "#)?;
//! // Skip straight to the combined phase: the regular and elementary
//! // phases provably diverge on this program.
//! let cfg = RegElemConfig { regular: None, elementary: None, ..RegElemConfig::quick() };
//! let (answer, _) = solve_regelem(&sys, &cfg);
//! match answer {
//!     RegElemAnswer::Sat(_, provenance) => {
//!         assert_eq!(provenance, Provenance::Combined);
//!     }
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! # Ok::<(), ringen_chc::ParseError>(())
//! ```

pub mod dp;
pub mod enumerate;
pub mod formula;
pub mod invariant;
pub mod lang;
pub mod solver;

pub use dp::{check_cube, check_cube_in, DpBudget, RegCubeSat};
pub use enumerate::{enumerate_langs, enumerate_langs_in, LangPoolConfig};
pub use formula::{RegCube, RegElemFormula, RegLiteral};
pub use invariant::{check_inductive, check_inductive_in, RegElemCheck, RegElemInvariant};
pub use lang::Lang;
pub use solver::{
    solve_regelem, solve_regelem_guarded, Provenance, RegElemAnswer, RegElemConfig, RegElemStats,
};
