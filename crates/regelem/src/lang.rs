//! Regular tree languages as membership-atom constants.
//!
//! A [`Lang`] is the denotation of a membership predicate `· ∈ L(A)`:
//! a deterministic finite tree automaton over one ADT sort, completed
//! over the signature at construction so that runs are total. Languages
//! are immutable and cheaply clonable (shared behind an [`Arc`]), so
//! one automaton can appear in many literals of a formula without
//! copying its transition table.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use ringen_automata::{Dfta, StateId, TupleAutomaton};
use ringen_terms::{GroundTerm, Signature, SortId};

#[derive(Debug)]
struct LangInner {
    name: String,
    sort: SortId,
    /// Complete over the construction signature: `run` is total on
    /// well-sorted ground terms.
    dfta: Dfta,
    finals: BTreeSet<StateId>,
    /// States reachable by some ground term (membership propagation
    /// only ever assigns these).
    reachable: BTreeSet<StateId>,
}

/// An immutable regular tree language over a single ADT sort.
///
/// # Example
///
/// The even-number language of the paper's Example 1:
///
/// ```
/// use ringen_automata::Dfta;
/// use ringen_regelem::Lang;
/// use ringen_terms::{signature_helpers::nat_signature, GroundTerm};
///
/// let (sig, nat, z, s) = nat_signature();
/// let mut d = Dfta::new();
/// let s0 = d.add_state(nat);
/// let s1 = d.add_state(nat);
/// d.add_transition(z, vec![], s0);
/// d.add_transition(s, vec![s0], s1);
/// d.add_transition(s, vec![s1], s0);
/// let even = Lang::new("Even", &sig, d, [s0]);
/// assert!(even.accepts(&GroundTerm::iterate(s, GroundTerm::leaf(z), 4)));
/// assert!(!even.accepts(&GroundTerm::iterate(s, GroundTerm::leaf(z), 3)));
/// ```
#[derive(Debug, Clone)]
pub struct Lang(Arc<LangInner>);

impl Lang {
    /// Wraps an automaton as a language over the sort its final states
    /// carry. The automaton is completed over `sig`, so membership
    /// queries are total on well-sorted terms.
    ///
    /// # Panics
    ///
    /// Panics if `finals` is empty or the final states carry mixed
    /// sorts.
    pub fn new(
        name: impl Into<String>,
        sig: &Signature,
        dfta: Dfta,
        finals: impl IntoIterator<Item = StateId>,
    ) -> Lang {
        let finals: BTreeSet<StateId> = finals.into_iter().collect();
        let first = finals
            .iter()
            .next()
            .expect("a language needs at least one final state");
        let sort = dfta.sort_of(*first);
        assert!(
            finals.iter().all(|s| dfta.sort_of(*s) == sort),
            "final states of mixed sorts"
        );
        let completed = dfta.completed(sig);
        let reachable = completed.reachable();
        Lang(Arc::new(LangInner {
            name: name.into(),
            sort,
            dfta: completed,
            finals,
            reachable,
        }))
    }

    /// Wraps a 1-automaton (its final tuples become final states).
    ///
    /// # Panics
    ///
    /// Panics if the automaton arity is not 1 or it has no final
    /// states.
    pub fn from_tuple_automaton(
        name: impl Into<String>,
        sig: &Signature,
        a: &TupleAutomaton,
    ) -> Lang {
        assert_eq!(a.arity(), 1, "a language is a 1-automaton");
        Lang::new(name, sig, a.dfta().clone(), a.finals().map(|t| t[0]))
    }

    /// A short name used when rendering membership atoms.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// The sort of the language's members.
    pub fn sort(&self) -> SortId {
        self.0.sort
    }

    /// The completed transition table.
    pub fn dfta(&self) -> &Dfta {
        &self.0.dfta
    }

    /// The final states.
    pub fn finals(&self) -> &BTreeSet<StateId> {
        &self.0.finals
    }

    /// States of the completed automaton reachable by some ground term.
    pub fn reachable(&self) -> &BTreeSet<StateId> {
        &self.0.reachable
    }

    /// Reachable states carrying the given sort — the candidate values
    /// for a variable of that sort during membership propagation.
    pub fn reachable_of_sort(&self, sort: SortId) -> Vec<StateId> {
        self.0
            .reachable
            .iter()
            .filter(|s| self.0.dfta.sort_of(**s) == sort)
            .copied()
            .collect()
    }

    /// Whether a ground term belongs to the language.
    pub fn accepts(&self, t: &GroundTerm) -> bool {
        match self.0.dfta.run(t) {
            Some(s) => self.0.finals.contains(&s),
            None => false,
        }
    }

    /// Whether a state is final.
    pub fn is_final(&self, s: StateId) -> bool {
        self.0.finals.contains(&s)
    }

    /// Number of distinct ground terms in the language, saturating at
    /// `cap`. Because the automaton is deterministic, terms running to
    /// different states are distinct, so per-state counts add up
    /// exactly.
    pub fn member_count_up_to(&self, cap: usize) -> usize {
        let d = &self.0.dfta;
        let mut count = vec![0usize; d.state_count()];
        loop {
            let mut changed = false;
            for s in d.states() {
                if count[s.index()] >= cap {
                    continue;
                }
                let mut total = 0usize;
                for (_, args, target) in d.transitions() {
                    if target != s {
                        continue;
                    }
                    let prod = args
                        .iter()
                        .fold(1usize, |acc, a| acc.saturating_mul(count[a.index()]));
                    total = total.saturating_add(prod);
                    if total >= cap {
                        break;
                    }
                }
                let total = total.min(cap);
                if total > count[s.index()] {
                    count[s.index()] = total;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.0
            .finals
            .iter()
            .fold(0usize, |acc, f| acc.saturating_add(count[f.index()]))
            .min(cap)
    }

    /// Identity key: two literals mentioning the same shared `Lang`
    /// constrain the same automaton and may be intersected.
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }
}

impl PartialEq for Lang {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.sort == other.0.sort
                && self.0.finals == other.0.finals
                && self.0.dfta == other.0.dfta)
    }
}

impl Eq for Lang {}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_terms::signature_helpers::nat_signature;

    fn even_lang() -> (Signature, Lang, ringen_terms::FuncId, ringen_terms::FuncId) {
        let (sig, nat, z, s) = nat_signature();
        let mut d = Dfta::new();
        let s0 = d.add_state(nat);
        let s1 = d.add_state(nat);
        d.add_transition(z, vec![], s0);
        d.add_transition(s, vec![s0], s1);
        d.add_transition(s, vec![s1], s0);
        let lang = Lang::new("Even", &sig, d, [s0]);
        (sig, lang, z, s)
    }

    #[test]
    fn membership_is_parity() {
        let (_sig, even, z, s) = even_lang();
        for n in 0..10 {
            let t = GroundTerm::iterate(s, GroundTerm::leaf(z), n);
            assert_eq!(even.accepts(&t), n % 2 == 0, "n = {n}");
        }
    }

    #[test]
    fn completion_keeps_originals_reachable() {
        let (_sig, even, ..) = even_lang();
        // Both parity states are reachable; the sink (added by
        // completion) is not, because the original automaton was
        // already complete.
        assert_eq!(even.reachable().len(), 2);
        assert_eq!(even.reachable_of_sort(even.sort()).len(), 2);
    }

    #[test]
    fn equality_is_structural_or_shared() {
        let (_sig, a, ..) = even_lang();
        let (_sig2, b, ..) = even_lang();
        let shared = a.clone();
        assert_eq!(a, shared);
        assert_eq!(a, b, "structurally equal languages compare equal");
        assert_eq!(a.key(), shared.key());
        assert_ne!(a.key(), b.key(), "distinct allocations, distinct keys");
    }

    #[test]
    fn member_counts_saturate_or_finish() {
        let (sig, nat, z, s) = nat_signature();
        // Infinite language: Even saturates at the cap.
        let (_sig2, even, ..) = even_lang();
        assert_eq!(even.member_count_up_to(10), 10);
        // Singleton language {Z}: Z → s0, everything else sinks.
        let mut d = Dfta::new();
        let a = d.add_state(nat);
        let sink = d.add_state(nat);
        d.add_transition(z, vec![], a);
        d.add_transition(s, vec![a], sink);
        d.add_transition(s, vec![sink], sink);
        let only_z = Lang::new("OnlyZ", &sig, d, [a]);
        assert_eq!(only_z.member_count_up_to(10), 1);
        // Two-term language {Z, S(Z)}.
        let mut d = Dfta::new();
        let a = d.add_state(nat);
        let b = d.add_state(nat);
        let c = d.add_state(nat);
        d.add_transition(z, vec![], a);
        d.add_transition(s, vec![a], b);
        d.add_transition(s, vec![b], c);
        d.add_transition(s, vec![c], c);
        let two = Lang::new("ZeroOrOne", &sig, d, [a, b]);
        assert_eq!(two.member_count_up_to(10), 2);
        assert_eq!(two.member_count_up_to(1), 1, "cap saturates");
    }

    #[test]
    #[should_panic(expected = "at least one final state")]
    fn empty_finals_panic() {
        let (sig, nat, z, _s) = nat_signature();
        let mut d = Dfta::new();
        let q = d.add_state(nat);
        d.add_transition(z, vec![], q);
        let _ = Lang::new("none", &sig, d, []);
    }
}
