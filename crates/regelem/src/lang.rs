//! Regular tree languages as membership-atom constants.
//!
//! A [`Lang`] is the denotation of a membership predicate `· ∈ L(A)`:
//! a deterministic finite tree automaton over one ADT sort, completed
//! over the signature at construction so that runs are total. Languages
//! are immutable and cheaply clonable (shared behind an [`Arc`]), so
//! one automaton can appear in many literals of a formula without
//! copying its transition table.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use ringen_automata::{AutStore, Dfta, DftaId, StateId, TupleAutomaton};
use ringen_terms::{GroundTerm, Signature, SortId};

#[derive(Debug)]
struct LangInner {
    name: String,
    sort: SortId,
    /// Complete over the construction signature: `run` is total on
    /// well-sorted ground terms. Shared with the [`AutStore`] arena for
    /// store-backed languages.
    dfta: Arc<Dfta>,
    finals: BTreeSet<StateId>,
    /// States reachable by some ground term (membership propagation
    /// only ever assigns these).
    reachable: Arc<BTreeSet<StateId>>,
    /// The interned id of `dfta` — together with the minting store's
    /// token — when the language was built through an [`AutStore`];
    /// gives the language a structural identity ([`Lang::key`]) and
    /// lets the cube procedure route its joint products through the
    /// store's memo tables. Ids are dense *per store*, so the token is
    /// checked before the id is ever used against a store.
    store_id: Option<(u64, DftaId)>,
}

/// An immutable regular tree language over a single ADT sort.
///
/// # Example
///
/// The even-number language of the paper's Example 1:
///
/// ```
/// use ringen_automata::Dfta;
/// use ringen_regelem::Lang;
/// use ringen_terms::{signature_helpers::nat_signature, GroundTerm};
///
/// let (sig, nat, z, s) = nat_signature();
/// let mut d = Dfta::new();
/// let s0 = d.add_state(nat);
/// let s1 = d.add_state(nat);
/// d.add_transition(z, vec![], s0);
/// d.add_transition(s, vec![s0], s1);
/// d.add_transition(s, vec![s1], s0);
/// let even = Lang::new("Even", &sig, d, [s0]);
/// assert!(even.accepts(&GroundTerm::iterate(s, GroundTerm::leaf(z), 4)));
/// assert!(!even.accepts(&GroundTerm::iterate(s, GroundTerm::leaf(z), 3)));
/// ```
#[derive(Debug, Clone)]
pub struct Lang(Arc<LangInner>);

impl Lang {
    /// Wraps an automaton as a language over the sort its final states
    /// carry. The automaton is completed over `sig`, so membership
    /// queries are total on well-sorted terms.
    ///
    /// # Panics
    ///
    /// Panics if `finals` is empty or the final states carry mixed
    /// sorts.
    pub fn new(
        name: impl Into<String>,
        sig: &Signature,
        dfta: Dfta,
        finals: impl IntoIterator<Item = StateId>,
    ) -> Lang {
        let finals: BTreeSet<StateId> = finals.into_iter().collect();
        let sort = Lang::check_finals(&dfta, &finals);
        let completed = dfta.completed(sig);
        let reachable = completed.reachable();
        Lang(Arc::new(LangInner {
            name: name.into(),
            sort,
            dfta: Arc::new(completed),
            finals,
            reachable: Arc::new(reachable),
            store_id: None,
        }))
    }

    /// [`Lang::new`], interning the completed automaton in `store`: the
    /// transition table is hash-consed (structurally equal tables from
    /// different enumeration paths share one arena entry and one
    /// reachability fixpoint), and the language carries the store id as
    /// its identity — so the cube procedure's joint-realizability
    /// products over it hit the store's memo tables.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Lang::new`].
    pub fn new_in(
        name: impl Into<String>,
        sig: &Signature,
        dfta: Dfta,
        finals: impl IntoIterator<Item = StateId>,
        store: &mut AutStore,
    ) -> Lang {
        let finals: BTreeSet<StateId> = finals.into_iter().collect();
        let sort = Lang::check_finals(&dfta, &finals);
        let id = store.intern_dfta(dfta.completed(sig));
        let reachable = store.reachable(id);
        Lang(Arc::new(LangInner {
            name: name.into(),
            sort,
            dfta: store.dfta_arc(id),
            finals,
            reachable,
            store_id: Some((store.token(), id)),
        }))
    }

    /// Validates the final set (nonempty, one sort) and returns the
    /// language sort.
    fn check_finals(dfta: &Dfta, finals: &BTreeSet<StateId>) -> SortId {
        let first = finals
            .iter()
            .next()
            .expect("a language needs at least one final state");
        let sort = dfta.sort_of(*first);
        assert!(
            finals.iter().all(|s| dfta.sort_of(*s) == sort),
            "final states of mixed sorts"
        );
        sort
    }

    /// Wraps a 1-automaton (its final tuples become final states).
    ///
    /// # Panics
    ///
    /// Panics if the automaton arity is not 1 or it has no final
    /// states.
    pub fn from_tuple_automaton(
        name: impl Into<String>,
        sig: &Signature,
        a: &TupleAutomaton,
    ) -> Lang {
        assert_eq!(a.arity(), 1, "a language is a 1-automaton");
        Lang::new(name, sig, a.dfta().clone(), a.finals().map(|t| t[0]))
    }

    /// A short name used when rendering membership atoms.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// The sort of the language's members.
    pub fn sort(&self) -> SortId {
        self.0.sort
    }

    /// The completed transition table.
    pub fn dfta(&self) -> &Dfta {
        &self.0.dfta
    }

    /// The final states.
    pub fn finals(&self) -> &BTreeSet<StateId> {
        &self.0.finals
    }

    /// States of the completed automaton reachable by some ground term.
    pub fn reachable(&self) -> &BTreeSet<StateId> {
        &self.0.reachable
    }

    /// Makes sure the language's table is interned in `store`,
    /// returning an id valid *for that store*: a store-backed language
    /// answers from its cached id only when `store` is the store that
    /// minted it (checked by token — ids are dense per store); any
    /// other language interns (with structural dedup) on first use.
    /// Does **not** rewrite the language's identity — [`Lang::key`]
    /// stays stable either way.
    pub fn intern_dfta_in(&self, store: &mut AutStore) -> DftaId {
        match self.0.store_id {
            Some((token, id)) if token == store.token() => id,
            _ => store.intern_dfta_arc(self.0.dfta.clone()),
        }
    }

    /// Reachable states carrying the given sort — the candidate values
    /// for a variable of that sort during membership propagation.
    pub fn reachable_of_sort(&self, sort: SortId) -> Vec<StateId> {
        self.0
            .reachable
            .iter()
            .filter(|s| self.0.dfta.sort_of(**s) == sort)
            .copied()
            .collect()
    }

    /// Whether a ground term belongs to the language.
    pub fn accepts(&self, t: &GroundTerm) -> bool {
        match self.0.dfta.run(t) {
            Some(s) => self.0.finals.contains(&s),
            None => false,
        }
    }

    /// Whether a state is final.
    pub fn is_final(&self, s: StateId) -> bool {
        self.0.finals.contains(&s)
    }

    /// Number of distinct ground terms in the language, saturating at
    /// `cap`. Because the automaton is deterministic, terms running to
    /// different states are distinct, so per-state counts add up
    /// exactly.
    pub fn member_count_up_to(&self, cap: usize) -> usize {
        let d = &self.0.dfta;
        let mut count = vec![0usize; d.state_count()];
        loop {
            let mut changed = false;
            for s in d.states() {
                if count[s.index()] >= cap {
                    continue;
                }
                let mut total = 0usize;
                for (_, args, target) in d.transitions() {
                    if target != s {
                        continue;
                    }
                    let prod = args
                        .iter()
                        .fold(1usize, |acc, a| acc.saturating_mul(count[a.index()]));
                    total = total.saturating_add(prod);
                    if total >= cap {
                        break;
                    }
                }
                let total = total.min(cap);
                if total > count[s.index()] {
                    count[s.index()] = total;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.0
            .finals
            .iter()
            .fold(0usize, |acc, f| acc.saturating_add(count[f.index()]))
            .min(cap)
    }

    /// Identity key: two literals whose languages share a key run over
    /// the *same* transition table, so their per-variable state sets
    /// may be intersected and their joint products share one automaton.
    ///
    /// Store-backed languages ([`Lang::new_in`]) key by the minting
    /// store's token plus the interned table id — a structural identity
    /// that survives re-enumeration within one store, and cannot
    /// collide across stores — tagged into the odd space; plain
    /// languages fall back to the allocation address, which is even
    /// (the inner struct is word-aligned), so the two spaces never
    /// collide.
    pub fn key(&self) -> usize {
        match self.0.store_id {
            Some((token, id)) => {
                // Ids are u32; tokens occupy the bits above. A token
                // beyond 2³¹ (after billions of stores) would wrap
                // within the odd space — still partitioned from
                // pointer keys, merely with a theoretical token alias.
                ((token as usize) << 33) ^ ((id.index() << 1) | 1)
            }
            None => Arc::as_ptr(&self.0) as usize,
        }
    }

    /// The interned transition-table id and its minting store's token,
    /// for store-backed languages.
    pub fn store_id(&self) -> Option<(u64, DftaId)> {
        self.0.store_id
    }
}

impl PartialEq for Lang {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.sort == other.0.sort
                && self.0.finals == other.0.finals
                && self.0.dfta == other.0.dfta)
    }
}

impl Eq for Lang {}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_terms::signature_helpers::nat_signature;

    fn even_lang() -> (Signature, Lang, ringen_terms::FuncId, ringen_terms::FuncId) {
        let (sig, nat, z, s) = nat_signature();
        let mut d = Dfta::new();
        let s0 = d.add_state(nat);
        let s1 = d.add_state(nat);
        d.add_transition(z, vec![], s0);
        d.add_transition(s, vec![s0], s1);
        d.add_transition(s, vec![s1], s0);
        let lang = Lang::new("Even", &sig, d, [s0]);
        (sig, lang, z, s)
    }

    #[test]
    fn membership_is_parity() {
        let (_sig, even, z, s) = even_lang();
        for n in 0..10 {
            let t = GroundTerm::iterate(s, GroundTerm::leaf(z), n);
            assert_eq!(even.accepts(&t), n % 2 == 0, "n = {n}");
        }
    }

    #[test]
    fn completion_keeps_originals_reachable() {
        let (_sig, even, ..) = even_lang();
        // Both parity states are reachable; the sink (added by
        // completion) is not, because the original automaton was
        // already complete.
        assert_eq!(even.reachable().len(), 2);
        assert_eq!(even.reachable_of_sort(even.sort()).len(), 2);
    }

    #[test]
    fn equality_is_structural_or_shared() {
        let (_sig, a, ..) = even_lang();
        let (_sig2, b, ..) = even_lang();
        let shared = a.clone();
        assert_eq!(a, shared);
        assert_eq!(a, b, "structurally equal languages compare equal");
        assert_eq!(a.key(), shared.key());
        assert_ne!(a.key(), b.key(), "distinct allocations, distinct keys");
    }

    #[test]
    fn member_counts_saturate_or_finish() {
        let (sig, nat, z, s) = nat_signature();
        // Infinite language: Even saturates at the cap.
        let (_sig2, even, ..) = even_lang();
        assert_eq!(even.member_count_up_to(10), 10);
        // Singleton language {Z}: Z → s0, everything else sinks.
        let mut d = Dfta::new();
        let a = d.add_state(nat);
        let sink = d.add_state(nat);
        d.add_transition(z, vec![], a);
        d.add_transition(s, vec![a], sink);
        d.add_transition(s, vec![sink], sink);
        let only_z = Lang::new("OnlyZ", &sig, d, [a]);
        assert_eq!(only_z.member_count_up_to(10), 1);
        // Two-term language {Z, S(Z)}.
        let mut d = Dfta::new();
        let a = d.add_state(nat);
        let b = d.add_state(nat);
        let c = d.add_state(nat);
        d.add_transition(z, vec![], a);
        d.add_transition(s, vec![a], b);
        d.add_transition(s, vec![b], c);
        d.add_transition(s, vec![c], c);
        let two = Lang::new("ZeroOrOne", &sig, d, [a, b]);
        assert_eq!(two.member_count_up_to(10), 2);
        assert_eq!(two.member_count_up_to(1), 1, "cap saturates");
    }

    #[test]
    fn store_backed_langs_intern_and_key_structurally() {
        use ringen_automata::AutStore;
        let (sig, nat, z, s) = nat_signature();
        let mut store = AutStore::with_cache(true);
        let build = |store: &mut AutStore, final_idx: usize| {
            let mut d = Dfta::new();
            let s0 = d.add_state(nat);
            let s1 = d.add_state(nat);
            d.add_transition(z, vec![], s0);
            d.add_transition(s, vec![s0], s1);
            d.add_transition(s, vec![s1], s0);
            let f = if final_idx == 0 { s0 } else { s1 };
            Lang::new_in(format!("L{final_idx}"), &sig, d, [f], store)
        };
        let even = build(&mut store, 0);
        let odd = build(&mut store, 1);
        // One table in the arena, one reachability fixpoint, one key.
        assert_eq!(store.dfta_count(), 1);
        assert_eq!(even.store_id(), odd.store_id());
        assert_eq!(even.key(), odd.key());
        assert_ne!(even, odd, "different finals, different languages");
        // Store-backed keys live in the odd space; plain keys are even
        // pointers — the spaces cannot collide.
        assert_eq!(even.key() % 2, 1);
        let (_s2, plain, ..) = even_lang();
        assert_eq!(plain.key() % 2, 0, "plain keys are aligned pointers");
        // Semantics are unchanged by interning.
        for n in 0..8 {
            let t = GroundTerm::iterate(s, GroundTerm::leaf(z), n);
            assert_eq!(even.accepts(&t), n % 2 == 0);
            assert_eq!(odd.accepts(&t), n % 2 == 1);
        }
        // `intern_dfta_in` is stable and answers from the cached id.
        assert_eq!(even.intern_dfta_in(&mut store), even.store_id().unwrap().1);
        // A *different* store must not trust the foreign id: the table
        // is re-interned there, and keys never collide across stores.
        let mut other = AutStore::with_cache(true);
        let foreign = build(&mut other, 0);
        let reinterned = even.intern_dfta_in(&mut other);
        assert_eq!(other.dfta(reinterned), even.dfta());
        assert_ne!(
            foreign.key(),
            even.key(),
            "same table, different stores, different identities"
        );
    }

    #[test]
    #[should_panic(expected = "at least one final state")]
    fn empty_finals_panic() {
        let (sig, nat, z, _s) = nat_signature();
        let mut d = Dfta::new();
        let q = d.add_state(nat);
        d.add_transition(z, vec![], q);
        let _ = Lang::new("none", &sig, d, []);
    }
}
