//! Literals, cubes and DNF formulas of the `RegElem` representation
//! class.
//!
//! `RegElem` is the paper's §7 future-work language: first-order
//! formulas over ADTs extended with regular-language membership
//! predicates `t ∈ L(A)` (Comon and Delor [15]). It subsumes both
//! `Elem` (formulas without membership atoms) and `Reg` (a regular
//! relation is a disjunction over final tuples of per-component
//! membership atoms — see `RegElemInvariant::from_regular`), and it is
//! closed under the Boolean operations by construction.

use std::fmt;

use ringen_elem::Literal as ElemLiteral;
use ringen_terms::{FuncId, GroundTerm, Signature, Substitution, Term, VarId};

use crate::lang::Lang;

/// An atomic `RegElem` constraint or its negation.
#[derive(Debug, Clone, PartialEq)]
pub enum RegLiteral {
    /// `t = u`.
    Eq(Term, Term),
    /// `t ≠ u`.
    Neq(Term, Term),
    /// `c?(t)` when `positive`, else `¬c?(t)`.
    Tester {
        /// Constructor tested for.
        ctor: FuncId,
        /// Tested term.
        term: Term,
        /// Polarity.
        positive: bool,
    },
    /// `t ∈ L` when `positive`, else `t ∉ L`.
    Member {
        /// Constrained term.
        term: Term,
        /// The regular language.
        lang: Lang,
        /// Polarity.
        positive: bool,
    },
}

impl RegLiteral {
    /// A positive membership atom `t ∈ L`.
    pub fn member(term: Term, lang: Lang) -> RegLiteral {
        RegLiteral::Member {
            term,
            lang,
            positive: true,
        }
    }

    /// The negated literal.
    pub fn negated(&self) -> RegLiteral {
        match self {
            RegLiteral::Eq(a, b) => RegLiteral::Neq(a.clone(), b.clone()),
            RegLiteral::Neq(a, b) => RegLiteral::Eq(a.clone(), b.clone()),
            RegLiteral::Tester {
                ctor,
                term,
                positive,
            } => RegLiteral::Tester {
                ctor: *ctor,
                term: term.clone(),
                positive: !positive,
            },
            RegLiteral::Member {
                term,
                lang,
                positive,
            } => RegLiteral::Member {
                term: term.clone(),
                lang: lang.clone(),
                positive: !positive,
            },
        }
    }

    /// Applies a substitution to the literal's terms (one simultaneous
    /// pass, as in parameter instantiation).
    pub fn apply(&self, sub: &Substitution) -> RegLiteral {
        match self {
            RegLiteral::Eq(a, b) => RegLiteral::Eq(sub.apply(a), sub.apply(b)),
            RegLiteral::Neq(a, b) => RegLiteral::Neq(sub.apply(a), sub.apply(b)),
            RegLiteral::Tester {
                ctor,
                term,
                positive,
            } => RegLiteral::Tester {
                ctor: *ctor,
                term: sub.apply(term),
                positive: *positive,
            },
            RegLiteral::Member {
                term,
                lang,
                positive,
            } => RegLiteral::Member {
                term: sub.apply(term),
                lang: lang.clone(),
                positive: *positive,
            },
        }
    }

    /// Evaluates the literal under a ground assignment of its
    /// variables. Returns `None` if some variable is unassigned.
    pub fn eval(&self, env: &dyn Fn(VarId) -> Option<GroundTerm>) -> Option<bool> {
        match self {
            RegLiteral::Eq(a, b) => Some(ground(a, env)? == ground(b, env)?),
            RegLiteral::Neq(a, b) => Some(ground(a, env)? != ground(b, env)?),
            RegLiteral::Tester {
                ctor,
                term,
                positive,
            } => Some((ground(term, env)?.func() == *ctor) == *positive),
            RegLiteral::Member {
                term,
                lang,
                positive,
            } => Some(lang.accepts(&ground(term, env)?) == *positive),
        }
    }

    /// The elementary part of the literal, if it has no membership
    /// atom.
    pub fn as_elem(&self) -> Option<ElemLiteral> {
        match self {
            RegLiteral::Eq(a, b) => Some(ElemLiteral::Eq(a.clone(), b.clone())),
            RegLiteral::Neq(a, b) => Some(ElemLiteral::Neq(a.clone(), b.clone())),
            RegLiteral::Tester {
                ctor,
                term,
                positive,
            } => Some(ElemLiteral::Tester {
                ctor: *ctor,
                term: term.clone(),
                positive: *positive,
            }),
            RegLiteral::Member { .. } => None,
        }
    }

    /// Renders the literal with symbol names.
    pub fn display<'a>(&'a self, sig: &'a Signature) -> DisplayRegLiteral<'a> {
        DisplayRegLiteral { lit: self, sig }
    }
}

impl From<ElemLiteral> for RegLiteral {
    fn from(l: ElemLiteral) -> RegLiteral {
        match l {
            ElemLiteral::Eq(a, b) => RegLiteral::Eq(a, b),
            ElemLiteral::Neq(a, b) => RegLiteral::Neq(a, b),
            ElemLiteral::Tester {
                ctor,
                term,
                positive,
            } => RegLiteral::Tester {
                ctor,
                term,
                positive,
            },
        }
    }
}

fn ground(t: &Term, env: &dyn Fn(VarId) -> Option<GroundTerm>) -> Option<GroundTerm> {
    match t {
        Term::Var(v) => env(*v),
        Term::App(f, args) => {
            let args: Option<Vec<GroundTerm>> = args.iter().map(|a| ground(a, env)).collect();
            Some(GroundTerm::app(*f, args?))
        }
    }
}

/// Rendering helper for [`RegLiteral`].
#[derive(Debug)]
pub struct DisplayRegLiteral<'a> {
    lit: &'a RegLiteral,
    sig: &'a Signature,
}

impl fmt::Display for DisplayRegLiteral<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lit {
            RegLiteral::Member {
                term,
                lang,
                positive,
            } => {
                write_term(f, self.sig, term)?;
                let op = if *positive { "∈" } else { "∉" };
                write!(f, " {op} {lang}")
            }
            other => {
                let elem = other
                    .as_elem()
                    .expect("non-membership literals have an elementary view");
                write!(f, "{}", elem.display(self.sig))
            }
        }
    }
}

/// Prints a term with parameter variables as `#i`, matching the
/// elementary literal renderer.
fn write_term(f: &mut fmt::Formatter<'_>, sig: &Signature, t: &Term) -> fmt::Result {
    match t {
        Term::Var(v) => write!(f, "#{}", v.index()),
        Term::App(g, args) => {
            write!(f, "{}", sig.func(*g).name)?;
            if !args.is_empty() {
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write_term(f, sig, a)?;
                }
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

/// A conjunction of `RegElem` literals.
pub type RegCube = Vec<RegLiteral>;

/// A `RegElem` formula in DNF over predicate parameters
/// `#0 … #(arity-1)`. The empty DNF is `⊥`; a DNF containing the empty
/// cube is `⊤`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegElemFormula {
    /// The disjuncts.
    pub cubes: Vec<RegCube>,
}

impl RegElemFormula {
    /// `⊤` — accepts every tuple.
    pub fn top() -> Self {
        RegElemFormula {
            cubes: vec![Vec::new()],
        }
    }

    /// `⊥` — accepts no tuple.
    pub fn bottom() -> Self {
        RegElemFormula { cubes: Vec::new() }
    }

    /// A single-literal formula.
    pub fn lit(l: RegLiteral) -> Self {
        RegElemFormula {
            cubes: vec![vec![l]],
        }
    }

    /// A one-cube formula.
    pub fn cube(c: RegCube) -> Self {
        RegElemFormula { cubes: vec![c] }
    }

    /// Embeds an `Elem` DNF formula (no membership atoms).
    pub fn from_elem(f: &ringen_elem::ElemFormula) -> Self {
        RegElemFormula {
            cubes: f
                .cubes
                .iter()
                .map(|c| c.iter().cloned().map(RegLiteral::from).collect())
                .collect(),
        }
    }

    /// Number of literal occurrences (complexity measure for candidate
    /// ordering).
    pub fn weight(&self) -> usize {
        self.cubes.iter().map(|c| c.len().max(1)).sum()
    }

    /// Instantiates parameters with argument terms: parameter `#i` is
    /// replaced by `args[i]`.
    pub fn instantiate(&self, args: &[Term]) -> RegElemFormula {
        let mut sub = Substitution::new();
        for (i, t) in args.iter().enumerate() {
            sub.bind(VarId(i as u32), t.clone());
        }
        RegElemFormula {
            cubes: self
                .cubes
                .iter()
                .map(|c| c.iter().map(|l| l.apply(&sub)).collect())
                .collect(),
        }
    }

    /// Negation, distributed back into DNF. Returns `None` if the
    /// distribution would exceed `cap` cubes.
    pub fn negated(&self, cap: usize) -> Option<RegElemFormula> {
        let mut cubes: Vec<RegCube> = vec![Vec::new()];
        for cube in &self.cubes {
            let mut next: Vec<RegCube> = Vec::new();
            for existing in &cubes {
                for l in cube {
                    let mut c = existing.clone();
                    c.push(l.negated());
                    next.push(c);
                    if next.len() > cap {
                        return None;
                    }
                }
            }
            cubes = next;
        }
        Some(RegElemFormula { cubes })
    }

    /// Disjunction: DNFs concatenate, witnessing closure under union
    /// (together with [`RegElemFormula::and`] and
    /// [`RegElemFormula::negated`], the Boolean closure §7 cites
    /// from [15]).
    pub fn or(&self, other: &RegElemFormula) -> RegElemFormula {
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        RegElemFormula { cubes }
    }

    /// Conjunction, distributed into DNF. Returns `None` above `cap`.
    pub fn and(&self, other: &RegElemFormula, cap: usize) -> Option<RegElemFormula> {
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                let mut c = a.clone();
                c.extend(b.iter().cloned());
                cubes.push(c);
                if cubes.len() > cap {
                    return None;
                }
            }
        }
        Some(RegElemFormula { cubes })
    }

    /// Evaluates the formula under a ground assignment.
    pub fn eval(&self, env: &dyn Fn(VarId) -> Option<GroundTerm>) -> Option<bool> {
        let mut any = false;
        for cube in &self.cubes {
            let mut all = true;
            for l in cube {
                if !(l.eval(env)?) {
                    all = false;
                    break;
                }
            }
            if all {
                any = true;
            }
        }
        Some(any)
    }

    /// Evaluates on a ground argument tuple (parameter `#i` ↦
    /// `args[i]`).
    pub fn eval_tuple(&self, args: &[GroundTerm]) -> bool {
        let env = |v: VarId| args.get(v.index()).cloned();
        self.eval(&env).unwrap_or(false)
    }

    /// Renders the formula with symbol names.
    pub fn display<'a>(&'a self, sig: &'a Signature) -> DisplayRegElemFormula<'a> {
        DisplayRegElemFormula { formula: self, sig }
    }
}

/// Rendering helper for [`RegElemFormula`].
#[derive(Debug)]
pub struct DisplayRegElemFormula<'a> {
    formula: &'a RegElemFormula,
    sig: &'a Signature,
}

impl fmt::Display for DisplayRegElemFormula<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.formula.cubes.is_empty() {
            return write!(f, "⊥");
        }
        for (i, cube) in self.formula.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if cube.is_empty() {
                write!(f, "⊤")?;
            } else {
                for (j, l) in cube.iter().enumerate() {
                    if j > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{}", l.display(self.sig))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_automata::Dfta;
    use ringen_terms::signature_helpers::nat_signature;

    fn even_lang() -> (Signature, Lang, FuncId, FuncId) {
        let (sig, nat, z, s) = nat_signature();
        let mut d = Dfta::new();
        let s0 = d.add_state(nat);
        let s1 = d.add_state(nat);
        d.add_transition(z, vec![], s0);
        d.add_transition(s, vec![s0], s1);
        d.add_transition(s, vec![s1], s0);
        let lang = Lang::new("Even", &sig, d, [s0]);
        (sig, lang, z, s)
    }

    #[test]
    fn membership_literal_evaluates_by_acceptance() {
        let (_sig, even, z, s) = even_lang();
        let l = RegLiteral::member(Term::var(VarId(0)), even);
        for n in 0..8 {
            let t = GroundTerm::iterate(s, GroundTerm::leaf(z), n);
            let env = move |_| Some(t.clone());
            assert_eq!(l.eval(&env), Some(n % 2 == 0), "n = {n}");
        }
    }

    #[test]
    fn negation_flips_membership() {
        let (_sig, even, z, _s) = even_lang();
        let l = RegLiteral::member(Term::var(VarId(0)), even);
        let n = l.negated();
        let zero = GroundTerm::leaf(z);
        let env = move |_| Some(zero.clone());
        assert_eq!(l.eval(&env), Some(true));
        assert_eq!(n.eval(&env), Some(false));
        assert_eq!(n.negated(), l);
    }

    #[test]
    fn diagonal_and_parity_combine() {
        // #0 = #1 ∧ #0 ∈ Even: the EvenDiag invariant shape.
        let (_sig, even, z, s) = even_lang();
        let f = RegElemFormula::cube(vec![
            RegLiteral::Eq(Term::var(VarId(0)), Term::var(VarId(1))),
            RegLiteral::member(Term::var(VarId(0)), even),
        ]);
        let num = |n| GroundTerm::iterate(s, GroundTerm::leaf(z), n);
        assert!(f.eval_tuple(&[num(4), num(4)]));
        assert!(!f.eval_tuple(&[num(3), num(3)]), "odd diagonal rejected");
        assert!(!f.eval_tuple(&[num(4), num(2)]), "off-diagonal rejected");
    }

    #[test]
    fn instantiation_substitutes_parameters() {
        let (_sig, even, _z, s) = even_lang();
        let f = RegElemFormula::lit(RegLiteral::member(Term::var(VarId(0)), even));
        let g = f.instantiate(&[Term::app(s, vec![Term::var(VarId(0))])]);
        match &g.cubes[0][0] {
            RegLiteral::Member { term, .. } => {
                assert_eq!(term, &Term::app(s, vec![Term::var(VarId(0))]));
            }
            other => panic!("unexpected literal {other:?}"),
        }
    }

    #[test]
    fn dnf_negation_distributes_membership() {
        let (_sig, even, ..) = even_lang();
        let f = RegElemFormula::cube(vec![
            RegLiteral::Eq(Term::var(VarId(0)), Term::var(VarId(1))),
            RegLiteral::member(Term::var(VarId(0)), even),
        ]);
        let n = f.negated(8).unwrap();
        assert_eq!(n.cubes.len(), 2);
        assert!(n.cubes.iter().any(|c| matches!(
            c[0],
            RegLiteral::Member {
                positive: false,
                ..
            }
        )));
    }

    #[test]
    fn elem_embedding_preserves_semantics() {
        let (_sig, _even, z, s) = even_lang();
        let e = ringen_elem::ElemFormula::lit(ringen_elem::Literal::Eq(
            Term::var(VarId(0)),
            Term::leaf(z),
        ));
        let r = RegElemFormula::from_elem(&e);
        let zero = GroundTerm::leaf(z);
        let one = GroundTerm::app(s, vec![zero.clone()]);
        assert_eq!(
            r.eval_tuple(std::slice::from_ref(&zero)),
            e.eval_tuple(&[zero])
        );
        assert_eq!(
            r.eval_tuple(std::slice::from_ref(&one)),
            e.eval_tuple(&[one])
        );
    }

    #[test]
    fn display_renders_membership() {
        let (sig, even, ..) = even_lang();
        let f = RegElemFormula::lit(RegLiteral::member(Term::var(VarId(0)), even));
        let printed = f.display(&sig).to_string();
        assert!(printed.contains("∈ Even"), "got {printed}");
    }
}
