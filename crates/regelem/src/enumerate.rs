//! Enumeration of small regular languages for the combined solver.
//!
//! The combined search of [`crate::solver`] conjoins elementary
//! templates with membership atoms `#i ∈ L`. The pool of candidate
//! languages `L` is enumerated the same way the finite-model finder
//! sweeps domains: every complete DFTA with a fixed number of states
//! per sort (two by default — Figure 6 shows most models found in the
//! evaluation are that small), paired with every nonempty proper final
//! set over the queried sort. Trivial and semantically duplicate
//! languages are pruned with a ground-term fingerprint.

use std::collections::BTreeMap;

use ringen_automata::{AutStore, Dfta, StateId};
use ringen_parallel::{ParallelConfig, Pool};
use ringen_terms::{herbrand, FuncId, Signature, SortId, TermPool};

use crate::lang::Lang;

/// Knobs for [`enumerate_langs`].
#[derive(Debug, Clone)]
pub struct LangPoolConfig {
    /// States per sort in every enumerated automaton.
    pub states_per_sort: usize,
    /// Stop after this many transition tables.
    pub max_dftas: usize,
    /// Stop after this many kept languages.
    pub max_langs: usize,
    /// Height bound of the ground terms used to fingerprint languages
    /// for deduplication and triviality pruning.
    pub fingerprint_height: usize,
}

impl Default for LangPoolConfig {
    fn default() -> Self {
        LangPoolConfig {
            states_per_sort: 2,
            max_dftas: 4_096,
            max_langs: 64,
            fingerprint_height: 5,
        }
    }
}

/// Enumerates candidate languages over `sort`, deduplicated by their
/// acceptance fingerprint on all ground terms up to the configured
/// height. Languages accepting none or all of the fingerprint terms
/// are dropped (they constrain nothing a template could not).
pub fn enumerate_langs(sig: &Signature, sort: SortId, cfg: &LangPoolConfig) -> Vec<Lang> {
    enumerate_impl(sig, sort, cfg, None)
}

/// [`enumerate_langs`] with every kept language built through an
/// [`AutStore`] ([`Lang::new_in`]): completed tables are hash-consed
/// (final-set variants of one table share a single arena entry and one
/// reachability fixpoint) and every language carries a structural
/// identity, so the cube procedure's joint products over the pool hit
/// the store's memo tables.
pub fn enumerate_langs_in(
    sig: &Signature,
    sort: SortId,
    cfg: &LangPoolConfig,
    store: &mut AutStore,
) -> Vec<Lang> {
    enumerate_impl(sig, sort, cfg, Some(store))
}

fn enumerate_impl(
    sig: &Signature,
    sort: SortId,
    cfg: &LangPoolConfig,
    mut store: Option<&mut AutStore>,
) -> Vec<Lang> {
    let k = cfg.states_per_sort.max(1);
    // One block of k states per sort; cells are (constructor, argument
    // state combination) pairs, each choosing one of k targets.
    let sorts: Vec<SortId> = sig.sorts().collect();
    let mut cells: Vec<(FuncId, Vec<usize>)> = Vec::new();
    for c in sig.constructors() {
        let domain = &sig.func(c).domain;
        let mut combo = vec![0usize; domain.len()];
        loop {
            cells.push((c, combo.clone()));
            // Mixed-radix advance over argument state indices.
            let mut i = 0;
            loop {
                if i == combo.len() {
                    break;
                }
                combo[i] += 1;
                if combo[i] < k {
                    break;
                }
                combo[i] = 0;
                i += 1;
            }
            if combo.iter().all(|&x| x == 0) {
                break;
            }
        }
    }

    // Fingerprint terms are hash-consed once; every candidate table
    // runs them by pooled id with a dense memo, so shared subterms
    // across the whole enumeration are evaluated once per table. The
    // batch is sharded across workers (`RINGEN_THREADS` overrides the
    // count; results are identical at any value).
    let par = Pool::new(&ParallelConfig::default());
    let mut term_pool = TermPool::new();
    let fingerprint_ids =
        herbrand::pooled_terms_up_to_height(sig, sort, cfg.fingerprint_height, &mut term_pool);
    let mut seen: BTreeMap<Vec<bool>, ()> = BTreeMap::new();
    let mut out: Vec<Lang> = Vec::new();

    // Sweep target assignments (one of k states per cell).
    let mut assignment = vec![0usize; cells.len()];
    let mut dftas = 0usize;
    'sweep: loop {
        dftas += 1;
        if dftas > cfg.max_dftas {
            break;
        }
        let mut d = Dfta::new();
        let mut block: BTreeMap<SortId, Vec<StateId>> = BTreeMap::new();
        for &s in &sorts {
            block.insert(s, (0..k).map(|_| d.add_state(s)).collect());
        }
        for ((c, combo), &target) in cells.iter().zip(&assignment) {
            let decl = sig.func(*c);
            let args: Vec<StateId> = combo
                .iter()
                .zip(&decl.domain)
                .map(|(&i, s)| block[s][i])
                .collect();
            d.add_transition(*c, args, block[&decl.range][target]);
        }
        // Run every fingerprint term once per table: the run states are
        // independent of the final set, so all 2^k − 2 final-set
        // variants below reuse this one pass.
        let run_states: Vec<Option<StateId>> =
            d.run_pooled_batch(&term_pool, &fingerprint_ids, &par);
        // Every nonempty proper final set over the queried sort.
        let states = &block[&sort];
        for finals_mask in 1..(1usize << k) - 1 {
            let finals: Vec<StateId> = states
                .iter()
                .enumerate()
                .filter(|(i, _)| finals_mask & (1 << i) != 0)
                .map(|(_, s)| *s)
                .collect();
            let fp: Vec<bool> = run_states
                .iter()
                .map(|st| st.is_some_and(|s| finals.contains(&s)))
                .collect();
            if fp.iter().all(|&b| b) || fp.iter().all(|&b| !b) {
                continue; // trivial on the fingerprint set
            }
            if seen.insert(fp, ()).is_none() {
                // Languages are materialized (completed + reachability)
                // only for fingerprints that survive the pruning.
                let name = format!("L{}f{}", dftas, finals_mask);
                out.push(match store.as_deref_mut() {
                    Some(st) => Lang::new_in(name, sig, d.clone(), finals, st),
                    None => Lang::new(name, sig, d.clone(), finals),
                });
                if out.len() >= cfg.max_langs {
                    break 'sweep;
                }
            }
        }
        // Advance the assignment counter.
        let mut i = 0;
        loop {
            if i == assignment.len() {
                break 'sweep;
            }
            assignment[i] += 1;
            if assignment[i] < k {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_terms::signature_helpers::{nat_signature, tree_signature};
    use ringen_terms::GroundTerm;

    #[test]
    fn nat_pool_contains_the_parity_language() {
        let (sig, nat, z, s) = nat_signature();
        let pool = enumerate_langs(&sig, nat, &LangPoolConfig::default());
        assert!(!pool.is_empty());
        let is_parity = |l: &Lang| {
            (0..8)
                .all(|n| l.accepts(&GroundTerm::iterate(s, GroundTerm::leaf(z), n)) == (n % 2 == 0))
        };
        assert!(
            pool.iter().any(is_parity),
            "the Even language must appear in the 2-state pool"
        );
    }

    #[test]
    fn tree_pool_contains_the_spine_parity_language() {
        let (sig, tree, leaf, node) = tree_signature();
        let pool = enumerate_langs(&sig, tree, &LangPoolConfig::default());
        fn spine(t: &GroundTerm) -> usize {
            if t.args().is_empty() {
                0
            } else {
                1 + spine(&t.args()[0])
            }
        }
        let terms = herbrand::terms_up_to_height(&sig, tree, 4);
        let is_evenleft = |l: &Lang| {
            terms
                .iter()
                .all(|t| l.accepts(t) == spine(t).is_multiple_of(2))
        };
        assert!(
            pool.iter().any(is_evenleft),
            "the EvenLeft language must appear in the 2-state pool"
        );
        let _ = (leaf, node);
    }

    #[test]
    fn pool_has_no_trivial_or_duplicate_fingerprints() {
        let (sig, nat, z, s) = nat_signature();
        let cfg = LangPoolConfig::default();
        let pool = enumerate_langs(&sig, nat, &cfg);
        let terms = herbrand::terms_up_to_height(&sig, nat, cfg.fingerprint_height);
        let mut fps = std::collections::BTreeSet::new();
        for l in &pool {
            let fp: Vec<bool> = terms.iter().map(|t| l.accepts(t)).collect();
            assert!(fp.iter().any(|&b| b), "empty language kept");
            assert!(!fp.iter().all(|&b| b), "full language kept");
            assert!(fps.insert(fp), "duplicate fingerprint kept");
        }
        let _ = (z, s);
    }

    #[test]
    fn caps_are_respected() {
        let (sig, nat, ..) = nat_signature();
        let cfg = LangPoolConfig {
            max_langs: 3,
            ..LangPoolConfig::default()
        };
        assert!(enumerate_langs(&sig, nat, &cfg).len() <= 3);
        let cfg = LangPoolConfig {
            max_dftas: 1,
            ..LangPoolConfig::default()
        };
        // One table still yields at most its final-set variants.
        assert!(enumerate_langs(&sig, nat, &cfg).len() <= 2);
    }
}
