//! Finite first-order structures (the models found by the finder).

use std::fmt;

use rustc_hash::FxHashSet;
use smallvec::SmallVec;

use ringen_chc::{ChcSystem, PredId};
use ringen_terms::{FuncId, GroundTerm, Signature, Term, TermId, TermPool, VarId};

/// An argument tuple of a predicate table row: inline up to arity 4.
pub type PredRow = SmallVec<[usize; 4]>;

/// A finite many-sorted structure `ℳ`: per-sort domains `{0, …, n-1}`,
/// total function tables and predicate tables.
///
/// This is the object a finite-model finder returns (§4.1's example model
/// for `Even` is `|ℳ| = {0,1}, Z ↦ 0, S(x) ↦ 1-x, even = {0}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteModel {
    /// Domain cardinality per sort (indexed by `SortId::index`).
    sizes: Vec<usize>,
    /// Function tables, indexed by `FuncId::index`; each table maps the
    /// row-major argument tuple index to the result element.
    funcs: Vec<Vec<usize>>,
    /// Predicate tables, indexed by `PredId::index`. Rows are
    /// inline-stored argument tuples (arity ≤ 4 never allocates) in an
    /// Fx-hashed set — the fact indices the solver probes hardest.
    preds: Vec<FxHashSet<PredRow>>,
}

impl FiniteModel {
    /// Creates a model skeleton with all-zero tables.
    pub(crate) fn new(
        sig: &Signature,
        pred_arities: &[Vec<usize>],
        sizes: Vec<usize>,
    ) -> FiniteModel {
        let funcs = sig
            .funcs()
            .map(|f| {
                let d = sig.func(f);
                let rows: usize = d.domain.iter().map(|s| sizes[s.index()]).product();
                vec![0; rows]
            })
            .collect();
        let preds = pred_arities.iter().map(|_| FxHashSet::default()).collect();
        FiniteModel {
            sizes,
            funcs,
            preds,
        }
    }

    /// Domain cardinality of a sort.
    pub fn size_of(&self, sort: ringen_terms::SortId) -> usize {
        self.sizes[sort.index()]
    }

    /// The paper's Figure 6 metric: the sum of all sort cardinalities.
    pub fn size(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Per-sort cardinalities.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Row-major index of an argument tuple, given the argument sorts.
    fn row(&self, sig: &Signature, f: FuncId, args: &[usize]) -> usize {
        let d = sig.func(f);
        debug_assert_eq!(d.arity(), args.len());
        let mut idx = 0;
        for (a, s) in args.iter().zip(&d.domain) {
            debug_assert!(*a < self.sizes[s.index()]);
            idx = idx * self.sizes[s.index()] + a;
        }
        idx
    }

    /// Sets `f(args…) = value` in the table.
    pub(crate) fn set_func(&mut self, sig: &Signature, f: FuncId, args: &[usize], value: usize) {
        let row = self.row(sig, f, args);
        self.funcs[f.index()][row] = value;
    }

    /// Adds a tuple to a predicate table.
    pub(crate) fn add_pred(&mut self, p: PredId, tuple: Vec<usize>) {
        self.preds[p.index()].insert(tuple.into_iter().collect());
    }

    /// `ℳ(f)(args…)`.
    pub fn apply(&self, sig: &Signature, f: FuncId, args: &[usize]) -> usize {
        self.funcs[f.index()][self.row(sig, f, args)]
    }

    /// Whether the tuple belongs to `ℳ(P)`.
    pub fn holds(&self, p: PredId, tuple: &[usize]) -> bool {
        self.preds[p.index()].contains(tuple)
    }

    /// The tuples of `ℳ(P)`.
    pub fn pred_table(&self, p: PredId) -> impl Iterator<Item = &[usize]> + '_ {
        self.preds[p.index()].iter().map(|row| row.as_slice())
    }

    /// The same structure with one tuple removed from a predicate table
    /// (functions and domains unchanged) — the "proper sub-model" probe
    /// the minimal-model tests fold over subsets of atoms.
    pub fn without_pred_tuple(&self, p: PredId, tuple: &[usize]) -> FiniteModel {
        let mut m = self.clone();
        m.preds[p.index()].remove(tuple);
        m
    }

    /// `ℳ⟦t⟧` for a ground term.
    pub fn eval_ground(&self, sig: &Signature, t: &GroundTerm) -> usize {
        let args: PredRow = t.args().iter().map(|a| self.eval_ground(sig, a)).collect();
        self.apply(sig, t.func(), &args)
    }

    /// `ℳ⟦t⟧` for a term interned in a [`TermPool`], memoized per
    /// [`TermId`] in a dense side table (`usize::MAX` = not yet
    /// evaluated). Shared subterms across a whole pool are evaluated
    /// once — the bulk evaluation pattern of invariant read-off and the
    /// model-vs-saturation audits.
    ///
    /// The cache is valid for one `(model, pool)` pair only — like the
    /// automata kernel's `PoolRunCache`, reusing it with a different
    /// model or pool silently returns stale values; pass a fresh (or
    /// cleared) vector instead.
    pub fn eval_pooled(
        &self,
        sig: &Signature,
        pool: &TermPool,
        t: TermId,
        cache: &mut Vec<usize>,
    ) -> usize {
        const UNSET: usize = usize::MAX;
        if cache.len() < pool.len() {
            cache.resize(pool.len(), UNSET);
        }
        if cache[t.index()] != UNSET {
            return cache[t.index()];
        }
        // Iterative post-order, mirroring `Dfta::run_pooled`.
        let mut frames: Vec<(TermId, usize)> = vec![(t, 0)];
        let mut values: Vec<usize> = Vec::with_capacity(16);
        while let Some(frame) = frames.last_mut() {
            let (id, next) = *frame;
            let args = pool.args(id);
            if next < args.len() {
                frame.1 += 1;
                let child = args[next];
                if cache[child.index()] != UNSET {
                    values.push(cache[child.index()]);
                } else {
                    frames.push((child, 0));
                }
            } else {
                frames.pop();
                let base = values.len() - args.len();
                let v = self.apply(sig, pool.func(id), &values[base..]);
                cache[id.index()] = v;
                values.truncate(base);
                values.push(v);
            }
        }
        values.pop().expect("non-empty term")
    }

    /// Evaluates a term under an environment mapping variables to domain
    /// elements; `None` if a variable is unbound.
    pub fn eval(
        &self,
        sig: &Signature,
        t: &Term,
        env: &dyn Fn(VarId) -> Option<usize>,
    ) -> Option<usize> {
        match t {
            Term::Var(v) => env(*v),
            Term::App(f, args) => {
                let vals: Option<PredRow> = args.iter().map(|a| self.eval(sig, a, env)).collect();
                Some(self.apply(sig, *f, &vals?))
            }
        }
    }

    /// Checks that the model satisfies every clause of the (equality-only)
    /// system, by exhaustive evaluation. Intended for tests and for the
    /// soundness audit of the pipeline; cost is `Π|domains|^vars` per
    /// clause.
    ///
    /// # Panics
    ///
    /// Panics if a clause contains disequalities or testers (the model
    /// finder's input never does).
    pub fn satisfies(&self, sys: &ChcSystem) -> bool {
        sys.clauses.iter().all(|c| self.satisfies_clause(sys, c))
    }

    fn satisfies_clause(&self, sys: &ChcSystem, clause: &ringen_chc::Clause) -> bool {
        let var_sorts: Vec<usize> = clause
            .vars
            .vars()
            .map(|v| self.sizes[clause.vars.sort(v).expect("sorted var").index()])
            .collect();
        // Universally iterate the non-existential positions; existential
        // positions (the ∀∃ query shape of §5) are swept on the inside.
        let universal: Vec<usize> = clause
            .vars
            .vars()
            .enumerate()
            .filter(|(_, v)| !clause.exist_vars.contains(v))
            .map(|(i, _)| i)
            .collect();
        let existential: Vec<usize> = clause
            .vars
            .vars()
            .enumerate()
            .filter(|(_, v)| clause.exist_vars.contains(v))
            .map(|(i, _)| i)
            .collect();
        let mut assign = vec![0usize; var_sorts.len()];
        let mut holds_here = |assign: &mut Vec<usize>| -> bool {
            if existential.is_empty() {
                return self.clause_holds_under(sys, clause, assign);
            }
            // ∃: some inner assignment must satisfy the matrix.
            sweep(&existential, &var_sorts, assign, &mut |a| {
                self.clause_holds_under(sys, clause, a)
            })
        };
        let universal_sorts = var_sorts.clone();
        sweep_all(&universal, &universal_sorts, &mut assign, &mut holds_here)
    }

    /// Display adaptor helpers: exhaustive sweeps over selected
    /// positions.
    fn clause_holds_under(
        &self,
        sys: &ChcSystem,
        clause: &ringen_chc::Clause,
        assign: &[usize],
    ) -> bool {
        let env = |v: VarId| assign.get(v.index()).copied();
        for k in &clause.constraints {
            match k {
                ringen_chc::Constraint::Eq(a, b) => {
                    let va = self.eval(&sys.sig, a, &env).expect("closed clause");
                    let vb = self.eval(&sys.sig, b, &env).expect("closed clause");
                    if va != vb {
                        return true; // body false, clause holds
                    }
                }
                _ => panic!("model checking requires an equality-only system"),
            }
        }
        for a in &clause.body {
            let vals: PredRow = a
                .args
                .iter()
                .map(|t| self.eval(&sys.sig, t, &env).expect("closed clause"))
                .collect();
            if !self.holds(a.pred, &vals) {
                return true;
            }
        }
        match &clause.head {
            None => false, // body true, head ⊥
            Some(h) => {
                let vals: PredRow = h
                    .args
                    .iter()
                    .map(|t| self.eval(&sys.sig, t, &env).expect("closed clause"))
                    .collect();
                self.holds(h.pred, &vals)
            }
        }
    }

    /// Display adaptor listing domains and tables with names.
    pub fn display<'a>(&'a self, sys: &'a ChcSystem) -> DisplayModel<'a> {
        DisplayModel { model: self, sys }
    }
}

/// Displays a [`FiniteModel`]. Returned by [`FiniteModel::display`].
#[derive(Debug, Clone, Copy)]
pub struct DisplayModel<'a> {
    model: &'a FiniteModel,
    sys: &'a ChcSystem,
}

impl fmt::Display for DisplayModel<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sig = &self.sys.sig;
        for s in sig.sorts() {
            writeln!(
                f,
                "|M|_{} = {{0..{}}}",
                sig.sort(s).name,
                self.model.sizes[s.index()].saturating_sub(1)
            )?;
        }
        for func in sig.funcs() {
            let d = sig.func(func);
            if d.arity() == 0 {
                writeln!(f, "{} = {}", d.name, self.model.funcs[func.index()][0])?;
            } else {
                let table = &self.model.funcs[func.index()];
                let reprs: Vec<String> = table.iter().map(usize::to_string).collect();
                writeln!(f, "{}(..) = [{}]", d.name, reprs.join(", "))?;
            }
        }
        for p in self.sys.rels.iter() {
            // Hash-set iteration order is arbitrary; sort for stable output.
            let mut rows: Vec<String> = self
                .model
                .pred_table(p)
                .map(|t| {
                    let cells: Vec<String> = t.iter().map(usize::to_string).collect();
                    format!("({})", cells.join(","))
                })
                .collect();
            rows.sort();
            writeln!(
                f,
                "{} = {{{}}}",
                self.sys.rels.decl(p).name,
                rows.join(", ")
            )?;
        }
        Ok(())
    }
}

/// Iterates all values of `positions` (bounded by `dims`); returns `true`
/// iff `f` holds for *every* assignment.
fn sweep_all(
    positions: &[usize],
    dims: &[usize],
    assign: &mut Vec<usize>,
    f: &mut impl FnMut(&mut Vec<usize>) -> bool,
) -> bool {
    fn go(
        positions: &[usize],
        dims: &[usize],
        assign: &mut Vec<usize>,
        k: usize,
        f: &mut impl FnMut(&mut Vec<usize>) -> bool,
    ) -> bool {
        if k == positions.len() {
            return f(assign);
        }
        let p = positions[k];
        for v in 0..dims[p] {
            assign[p] = v;
            if !go(positions, dims, assign, k + 1, f) {
                return false;
            }
        }
        true
    }
    go(positions, dims, assign, 0, f)
}

/// Iterates all values of `positions`; returns `true` iff `f` holds for
/// *some* assignment.
fn sweep(
    positions: &[usize],
    dims: &[usize],
    assign: &mut Vec<usize>,
    f: &mut impl FnMut(&mut Vec<usize>) -> bool,
) -> bool {
    fn go(
        positions: &[usize],
        dims: &[usize],
        assign: &mut Vec<usize>,
        k: usize,
        f: &mut impl FnMut(&mut Vec<usize>) -> bool,
    ) -> bool {
        if k == positions.len() {
            return f(assign);
        }
        let p = positions[k];
        for v in 0..dims[p] {
            assign[p] = v;
            if go(positions, dims, assign, k + 1, f) {
                return true;
            }
        }
        false
    }
    go(positions, dims, assign, 0, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::SystemBuilder;
    use ringen_terms::Term;

    /// The paper's §4.1 model for Even: |M| = {0,1}, Z↦0, S(x)↦1-x,
    /// even = {0}.
    fn even_model() -> (ChcSystem, FiniteModel) {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        let even = b.pred("even", vec![nat]);
        b.clause(|c| {
            c.head(even, vec![c.app0(z)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(even, vec![c.v(x)]);
            c.head(even, vec![Term::iterate(s, c.v(x), 2)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(even, vec![c.v(x)]);
            c.body(even, vec![c.app(s, vec![c.v(x)])]);
        });
        let sys = b.finish();
        let mut m = FiniteModel::new(&sys.sig, &[vec![0]], vec![2]);
        m.set_func(&sys.sig, z, &[], 0);
        m.set_func(&sys.sig, s, &[0], 1);
        m.set_func(&sys.sig, s, &[1], 0);
        m.add_pred(even, vec![0]);
        (sys, m)
    }

    #[test]
    fn evaluates_ground_terms() {
        let (sys, m) = even_model();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        for n in 0..6 {
            let t = GroundTerm::iterate(s, GroundTerm::leaf(z), n);
            assert_eq!(m.eval_ground(&sys.sig, &t), n % 2);
        }
    }

    #[test]
    fn eval_pooled_agrees_and_memoizes() {
        let (sys, m) = even_model();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let mut pool = TermPool::new();
        let mut cache = Vec::new();
        for n in 0..6 {
            let t = GroundTerm::iterate(s, GroundTerm::leaf(z), n);
            let id = pool.intern_term(&t);
            assert_eq!(m.eval_pooled(&sys.sig, &pool, id, &mut cache), n % 2);
        }
        // Every pooled node got exactly one memoized value.
        assert!(cache.iter().take(pool.len()).all(|&v| v != usize::MAX));
    }

    #[test]
    fn paper_model_satisfies_even_system() {
        let (sys, m) = even_model();
        assert!(m.satisfies(&sys));
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn broken_model_fails_the_query() {
        let (sys, mut m) = even_model();
        let even = sys.rels.by_name("even").unwrap();
        m.add_pred(even, vec![1]); // now even = {0,1}: query violated
        assert!(!m.satisfies(&sys));
    }

    #[test]
    fn broken_model_fails_a_definite_clause() {
        let (sys, m) = even_model();
        let even = sys.rels.by_name("even").unwrap();
        let mut m2 = FiniteModel::new(&sys.sig, &[vec![0]], vec![2]);
        // Same functions but empty `even`: base clause fails.
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        m2.set_func(&sys.sig, z, &[], 0);
        m2.set_func(&sys.sig, s, &[0], 1);
        m2.set_func(&sys.sig, s, &[1], 0);
        assert!(!m2.satisfies(&sys));
        let _ = (even, m);
    }

    #[test]
    fn eval_with_env_and_unbound() {
        let (sys, m) = even_model();
        let nat = sys.sig.sort_by_name("Nat").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let mut ctx = ringen_terms::VarContext::new();
        let x = ctx.fresh("x", nat);
        let t = Term::app(s, vec![Term::var(x)]);
        assert_eq!(m.eval(&sys.sig, &t, &|_| Some(1)), Some(0));
        assert_eq!(m.eval(&sys.sig, &t, &|_| None), None);
    }

    #[test]
    fn display_mentions_tables() {
        let (sys, m) = even_model();
        let text = m.display(&sys).to_string();
        assert!(text.contains("|M|_Nat = {0..1}"));
        assert!(text.contains("Z = 0"));
        assert!(text.contains("even = {(0)}"));
    }
}
