//! The MACE-style model search: ground to SAT per domain-size vector.
//!
//! The ground-instance sweep — enumerating every variable assignment of
//! every flattened clause and emitting the corresponding SAT clause —
//! is pure per clause (a function of the frozen variable tables and the
//! size vector), so it is sharded across a [`ringen_parallel::Pool`]
//! with the same snapshot/delta/merge shape as the saturation engine:
//! workers *generate* literal lists, the caller *adds* them to the
//! solver sequentially in clause order. The outcome is bit-for-bit
//! identical at any `RINGEN_THREADS` value. The workers are spawned
//! once per [`find_model`] call and parked between size vectors
//! ([`Pool::persistent`]), not re-spawned per sweep.
//!
//! # Incremental sweeps
//!
//! By default the whole sweep shares **one live SAT solver**
//! ([`FinderConfig::incremental`], `RINGEN_FMF_INCREMENTAL=0` restores
//! the one-shot reference path). Cell variables are allocated once for
//! the *maximum* domain sizes any attempted vector reaches; each size
//! vector is selected by per-(sort, element) "element exists" literals
//! passed to [`ringen_sat::Solver::solve_under_assumptions`]; every
//! ground instance is guarded by the negated existence literals of the
//! elements it mentions, so instances outside the current vector are
//! vacuous. Only the *delta* of never-before-grounded assignments is
//! pushed per vector, and learnt clauses from size *n* prune size
//! *n + 1* instead of being thrown away.
//!
//! On SAT, the extracted model is optionally shrunk to a ⊆-minimal
//! predicate extension ([`FinderConfig::minimize`],
//! `RINGEN_FMF_MINIMIZE=0` disables): a dual-query loop pins the false
//! atoms with assumptions, demands that at least one true atom be
//! dropped via an activation literal, and stops when the solver's
//! failed-assumption analysis proves no smaller extension exists.
//! Smaller models mean smaller read-off invariant automata and smaller
//! certificates downstream.

use ringen_chc::ChcSystem;
use ringen_parallel::{Guard, ParallelConfig, Pool, Recorder};
use ringen_sat::{Lit, SatResult, Solver, Var};
use ringen_terms::FuncKind;

use crate::flatten::{flatten_system, FlatClause, FlattenError};
use crate::model::FiniteModel;

/// Tuning knobs for [`find_model`].
#[derive(Debug, Clone)]
pub struct FinderConfig {
    /// Maximum total domain size (sum over sorts) to try.
    pub max_total_size: usize,
    /// SAT conflict budget per size vector.
    pub max_conflicts: u64,
    /// Skip a size vector if it would ground to more instances than this.
    pub max_ground_instances: u64,
    /// Enable constant-ordering symmetry breaking.
    pub symmetry_breaking: bool,
    /// Keep one live solver across the sweep: max-size tables up front,
    /// "element exists" selector assumptions per vector, delta-only
    /// grounding, learnt clauses retained. The default honors
    /// `RINGEN_FMF_INCREMENTAL` (`0` selects the one-shot reference
    /// path); verdicts are identical either way.
    pub incremental: bool,
    /// Shrink each found model to a ⊆-minimal predicate extension with
    /// the dual-query assumption loop. The default honors
    /// `RINGEN_FMF_MINIMIZE` (`0` keeps the solver's first model).
    pub minimize: bool,
    /// Worker threads for the ground-instance sweep. The default honors
    /// `RINGEN_THREADS` (1 forces the inline path); results are
    /// identical at any value.
    pub parallel: ParallelConfig,
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map_or(true, |v| v.trim() != "0")
}

impl Default for FinderConfig {
    fn default() -> Self {
        FinderConfig {
            max_total_size: 10,
            max_conflicts: 100_000,
            max_ground_instances: 4_000_000,
            symmetry_breaking: true,
            incremental: env_flag("RINGEN_FMF_INCREMENTAL"),
            minimize: env_flag("RINGEN_FMF_MINIMIZE"),
            parallel: ParallelConfig::default(),
        }
    }
}

/// Statistics from a [`find_model`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FinderStats {
    /// Size vectors attempted.
    pub vectors_tried: usize,
    /// Total SAT conflicts over all attempts.
    pub conflicts: u64,
    /// Total SAT decisions over all attempts.
    pub decisions: u64,
    /// Total SAT unit propagations over all attempts.
    pub propagations: u64,
    /// Total SAT restarts over all attempts.
    pub restarts: u64,
    /// Size vectors skipped because grounding would be too large.
    pub skipped_too_large: usize,
    /// Size vectors abandoned on conflict budget.
    pub budget_exhausted: usize,
    /// Size vectors answered by a reused (incremental) solver.
    pub solver_reuses: usize,
    /// Ground instances pushed into the solver. In incremental mode
    /// this counts only the per-vector deltas; in one-shot mode, every
    /// instance of every attempted vector.
    pub delta_clauses: u64,
    /// Predicate atoms dropped by minimal-model shrinking.
    pub minimized_atoms: u64,
}

/// Outcome of the search.
#[derive(Debug, Clone)]
pub enum FmfOutcome {
    /// A finite model was found.
    Model(FiniteModel),
    /// No model exists within the configured bounds (the system may still
    /// have larger or infinite models — finite model existence is only
    /// semidecidable, §9).
    Exhausted,
    /// The search was cancelled by its [`Guard`] before the bounds were
    /// exhausted. `FinderStats` still reflects the work completed.
    Interrupted,
}

impl FmfOutcome {
    /// The model, if one was found.
    pub fn model(self) -> Option<FiniteModel> {
        match self {
            FmfOutcome::Model(m) => Some(m),
            FmfOutcome::Exhausted | FmfOutcome::Interrupted => None,
        }
    }
}

/// Searches for a finite model of an equality-only CHC system over EUF,
/// iterating domain-size vectors in order of total size (§4.1–4.2).
///
/// # Errors
///
/// Returns [`FlattenError`] if the system still contains disequalities or
/// testers (run the §4.4/§4.5 preprocessing first).
pub fn find_model(
    sys: &ChcSystem,
    config: &FinderConfig,
) -> Result<(FmfOutcome, FinderStats), FlattenError> {
    find_model_inner(sys, config, None)
}

/// [`find_model`] with cooperative cancellation: the guard is polled
/// between size vectors, between grounding waves, and inside the SAT
/// search. A trip yields [`FmfOutcome::Interrupted`] with the statistics
/// accumulated so far; no partial state escapes.
pub fn find_model_guarded(
    sys: &ChcSystem,
    config: &FinderConfig,
    guard: &Guard,
) -> Result<(FmfOutcome, FinderStats), FlattenError> {
    find_model_inner(sys, config, Some(guard))
}

fn find_model_inner(
    sys: &ChcSystem,
    config: &FinderConfig,
    guard: Option<&Guard>,
) -> Result<(FmfOutcome, FinderStats), FlattenError> {
    let flat = flatten_system(sys)?;
    let mut stats = FinderStats::default();
    let num_sorts = sys.sig.sort_count();
    if num_sorts == 0 {
        // Degenerate: no sorts means no variables; treat as exhausted.
        return Ok((FmfOutcome::Exhausted, stats));
    }
    // One worker set for the whole search: spawned here, parked
    // between size vectors (and between waves within one), joined on
    // return. `RINGEN_THREADS=1` spawns nothing.
    let pool = Pool::persistent(&config.parallel);
    let rec = guard.map_or_else(Recorder::disabled, |g| g.recorder().clone());
    let mut span = rec.span("fmf.search");
    span.note("max_total_size", config.max_total_size as i64);
    span.note("incremental", i64::from(config.incremental));
    let mut outcome = FmfOutcome::Exhausted;
    if config.incremental {
        // Per-sort caps: the largest size each sort reaches over the
        // vectors the sweep will actually attempt. The skip estimate is
        // a function of the vector alone, so this is exact — tables are
        // never allocated for sizes only skipped vectors would need.
        let mut caps = vec![0usize; num_sorts];
        for total in num_sorts..=config.max_total_size {
            for sizes in compositions(total, num_sorts) {
                if estimate_instances(&flat, &sizes) <= config.max_ground_instances {
                    for (c, s) in caps.iter_mut().zip(&sizes) {
                        *c = (*c).max(*s);
                    }
                }
            }
        }
        let mut sweep: Option<IncrementalSweep> = None;
        'inc: for total in num_sorts..=config.max_total_size {
            for sizes in compositions(total, num_sorts) {
                if guard.is_some_and(|g| g.is_cancelled()) {
                    outcome = FmfOutcome::Interrupted;
                    break 'inc;
                }
                let est = estimate_instances(&flat, &sizes);
                if est > config.max_ground_instances {
                    stats.skipped_too_large += 1;
                    continue;
                }
                let sw = sweep.get_or_insert_with(|| IncrementalSweep::new(sys, &caps, config));
                match sw.try_vector(
                    sys, &flat, &sizes, est, config, &pool, guard, &rec, &mut stats,
                ) {
                    SizeOutcome::Model(m) => {
                        outcome = FmfOutcome::Model(m);
                        break 'inc;
                    }
                    SizeOutcome::Interrupted => {
                        outcome = FmfOutcome::Interrupted;
                        break 'inc;
                    }
                    SizeOutcome::Unsat | SizeOutcome::Skipped | SizeOutcome::Budget => {}
                }
            }
        }
    } else {
        'search: for total in num_sorts..=config.max_total_size {
            for sizes in compositions(total, num_sorts) {
                if guard.is_some_and(|g| g.is_cancelled()) {
                    outcome = FmfOutcome::Interrupted;
                    break 'search;
                }
                match try_sizes(sys, &flat, &sizes, config, &pool, guard, &rec, &mut stats) {
                    SizeOutcome::Model(m) => {
                        outcome = FmfOutcome::Model(m);
                        break 'search;
                    }
                    SizeOutcome::Interrupted => {
                        outcome = FmfOutcome::Interrupted;
                        break 'search;
                    }
                    SizeOutcome::Unsat | SizeOutcome::Skipped | SizeOutcome::Budget => {}
                }
            }
        }
    }
    span.note("vectors_tried", stats.vectors_tried as i64);
    span.note_str(
        "outcome",
        match &outcome {
            FmfOutcome::Model(_) => "model",
            FmfOutcome::Exhausted => "exhausted",
            FmfOutcome::Interrupted => "interrupted",
        },
    );
    drop(span);
    rec.add("sat.decisions", stats.decisions as i64);
    rec.add("sat.conflicts", stats.conflicts as i64);
    rec.add("sat.propagations", stats.propagations as i64);
    rec.add("sat.restarts", stats.restarts as i64);
    Ok((outcome, stats))
}

enum SizeOutcome {
    Model(FiniteModel),
    Unsat,
    Budget,
    Skipped,
    Interrupted,
}

/// All vectors of `parts` positive integers summing to `total`.
fn compositions(total: usize, parts: usize) -> Vec<Vec<usize>> {
    fn go(total: usize, parts: usize, acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if parts == 1 {
            acc.push(total);
            out.push(acc.clone());
            acc.pop();
            return;
        }
        for first in 1..=total - (parts - 1) {
            acc.push(first);
            go(total - first, parts - 1, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    if total >= parts {
        go(total, parts, &mut Vec::new(), &mut out);
    }
    out
}

/// Number of ground instances a size vector would produce (the skip
/// estimate — identical in both sweep modes, so skip decisions agree).
fn estimate_instances(flat: &[FlatClause], sizes: &[usize]) -> u64 {
    let mut instances: u64 = 0;
    for c in flat {
        let mut rows: u64 = 1;
        for s in &c.var_sorts {
            rows = rows.saturating_mul(sizes[s.index()] as u64);
        }
        instances = instances.saturating_add(rows);
    }
    instances
}

#[allow(clippy::too_many_arguments)]
fn try_sizes(
    sys: &ChcSystem,
    flat: &[FlatClause],
    sizes: &[usize],
    config: &FinderConfig,
    pool: &Pool,
    guard: Option<&Guard>,
    rec: &Recorder,
    stats: &mut FinderStats,
) -> SizeOutcome {
    // Estimate the grounding size first.
    let instances = estimate_instances(flat, sizes);
    if instances > config.max_ground_instances {
        stats.skipped_too_large += 1;
        return SizeOutcome::Skipped;
    }
    stats.vectors_tried += 1;
    let mut span = rec.span("fmf.size");
    span.note("total", sizes.iter().sum::<usize>() as i64);
    span.note("instances", instances as i64);
    span.note("reused", 0);

    let sig = &sys.sig;
    let mut solver = Solver::new();

    // Function-table variables e[f][row][result].
    let func_vars: Vec<Vec<Vec<Var>>> = sig
        .funcs()
        .map(|f| {
            let d = sig.func(f);
            let rows: usize = d.domain.iter().map(|s| sizes[s.index()]).product();
            let range = sizes[d.range.index()];
            (0..rows)
                .map(|_| (0..range).map(|_| solver.new_var()).collect())
                .collect()
        })
        .collect();
    // Predicate-table variables b[p][row].
    let pred_vars: Vec<Vec<Var>> = sys
        .rels
        .iter()
        .map(|p| {
            let d = sys.rels.decl(p);
            let rows: usize = d.domain.iter().map(|s| sizes[s.index()]).product();
            (0..rows).map(|_| solver.new_var()).collect()
        })
        .collect();

    // Totality and functionality: exactly one result per cell.
    for table in &func_vars {
        for cell in table {
            let at_least: Vec<Lit> = cell.iter().map(|&v| Lit::pos(v)).collect();
            solver.add_clause(&at_least);
            for i in 0..cell.len() {
                for j in i + 1..cell.len() {
                    solver.add_clause(&[Lit::neg(cell[i]), Lit::neg(cell[j])]);
                }
            }
        }
    }

    // Symmetry breaking: the i-th constant of each sort takes a value
    // ≤ i (domains can always be permuted into this form).
    if config.symmetry_breaking {
        let mut seen_constants = vec![0usize; sizes.len()];
        for f in sig.funcs() {
            let d = sig.func(f);
            if d.arity() != 0 {
                continue;
            }
            let k = seen_constants[d.range.index()];
            seen_constants[d.range.index()] += 1;
            // NB: the range may be empty (k + 1 > size); take/skip keeps
            // that case a no-op instead of a slice panic.
            for v in func_vars[f.index()][0]
                .iter()
                .take(sizes[d.range.index()])
                .skip(k + 1)
            {
                solver.add_clause(&[Lit::neg(*v)]);
            }
        }
    }

    // Ground every flattened clause. Instance *generation* is pure per
    // clause (a function of the frozen variable tables and the size
    // vector), so it is sharded across workers in bounded batches; each
    // batch's instances are then added to the solver sequentially, in
    // clause and assignment order — the solver sees the exact prefix of
    // the sequence the inline loop produced, so outcome and statistics
    // are identical at any thread count. Batching (instead of
    // generating the whole sweep up front) bounds peak memory to one
    // batch and keeps the old streaming behavior of stopping early on
    // a root-level conflict: at most one batch is generated in vain.
    let batch = (pool.threads() * 4).max(1);
    let mut added: u64 = 0;
    for wave in flat.chunks(batch) {
        if guard.is_some_and(|g| g.is_cancelled()) {
            span.note_str("outcome", "interrupted");
            return SizeOutcome::Interrupted;
        }
        let grounded: Vec<GroundInstances> = pool
            .map_chunks(wave, |_, chunk| {
                chunk
                    .iter()
                    .map(|c| ground_clause(sys, c, sizes, &func_vars, &pred_vars))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        for g in &grounded {
            for lits in g.iter() {
                added += 1;
                if !solver.add_clause(lits) {
                    stats.delta_clauses += added;
                    stats.conflicts += solver.conflict_count();
                    stats.decisions += solver.decision_count();
                    stats.propagations += solver.propagation_count();
                    stats.restarts += solver.restart_count();
                    span.note_str("outcome", "unsat_grounding");
                    return SizeOutcome::Unsat;
                }
            }
        }
    }
    stats.delta_clauses += added;
    span.note("delta_clauses", added as i64);
    span.note("assumptions", 0);

    let result = match guard {
        Some(g) => solver.solve_guarded(config.max_conflicts, g),
        None => solver.solve_with_budget(config.max_conflicts),
    };
    span.note("decisions", solver.decision_count() as i64);
    span.note("conflicts", solver.conflict_count() as i64);
    let out = match result {
        SatResult::Sat => {
            let (values, dropped) = if config.minimize {
                let active: Vec<Var> = pred_vars.iter().flatten().copied().collect();
                shrink_true_preds(&mut solver, &[], &active, config.max_conflicts, guard)
            } else {
                (solver.model(), 0)
            };
            stats.minimized_atoms += dropped;
            span.note("minimized", dropped as i64);
            let model = extract_model(sys, sizes, sizes, &func_vars, &pred_vars, |v| {
                values[v.index()] == Some(true)
            });
            span.note_str("outcome", "model");
            SizeOutcome::Model(model)
        }
        SatResult::Unsat => {
            span.note_str("outcome", "unsat");
            SizeOutcome::Unsat
        }
        SatResult::Unknown => {
            // `Unknown` is either the conflict budget or a guard trip;
            // the guard's state disambiguates.
            if guard.is_some_and(|g| g.is_cancelled()) {
                span.note_str("outcome", "interrupted");
                SizeOutcome::Interrupted
            } else {
                stats.budget_exhausted += 1;
                span.note_str("outcome", "budget");
                SizeOutcome::Budget
            }
        }
    };
    stats.conflicts += solver.conflict_count();
    stats.decisions += solver.decision_count();
    stats.propagations += solver.propagation_count();
    stats.restarts += solver.restart_count();
    out
}

/// The shared-solver sweep state: max-size tables, existence selectors,
/// and the set of size boxes whose ground instances are already in the
/// solver.
struct IncrementalSweep {
    solver: Solver,
    /// Largest size each sort reaches over the attempted vectors.
    caps: Vec<usize>,
    /// `ex[s][k-1]`: "element `k` of sort `s` exists". Element 0 always
    /// exists (every vector gives every sort size ≥ 1) and has no
    /// selector.
    ex: Vec<Vec<Var>>,
    /// Function-table variables e[f][row][result] at `caps` dimensions.
    func_vars: Vec<Vec<Vec<Var>>>,
    /// Predicate-table variables b[p][row] at `caps` dimensions.
    pred_vars: Vec<Vec<Var>>,
    /// Size boxes already grounded (an antichain: dominated boxes are
    /// pruned). An assignment inside any of them is already a clause in
    /// the solver.
    covered: Vec<Vec<usize>>,
    /// Whether a vector was tried before (for the `reused` span note).
    used: bool,
    /// A root-level conflict was derived: the guarded clause set is
    /// unsatisfiable outright, so *every* remaining vector is UNSAT.
    broken: bool,
}

impl IncrementalSweep {
    fn new(sys: &ChcSystem, caps: &[usize], config: &FinderConfig) -> IncrementalSweep {
        let sig = &sys.sig;
        let mut solver = Solver::new();
        // Existence selectors with a monotone chain: element k implies
        // element k-1, so assumptions describe a prefix per sort.
        let ex: Vec<Vec<Var>> = caps
            .iter()
            .map(|&c| (1..c).map(|_| solver.new_var()).collect())
            .collect();
        for col in &ex {
            for w in col.windows(2) {
                solver.add_clause(&[Lit::neg(w[1]), Lit::pos(w[0])]);
            }
        }
        let func_vars: Vec<Vec<Vec<Var>>> = sig
            .funcs()
            .map(|f| {
                let d = sig.func(f);
                let rows: usize = d.domain.iter().map(|s| caps[s.index()]).product();
                let range = caps[d.range.index()];
                (0..rows)
                    .map(|_| (0..range).map(|_| solver.new_var()).collect())
                    .collect()
            })
            .collect();
        let pred_vars: Vec<Vec<Var>> = sys
            .rels
            .iter()
            .map(|p| {
                let d = sys.rels.decl(p);
                let rows: usize = d.domain.iter().map(|s| caps[s.index()]).product();
                (0..rows).map(|_| solver.new_var()).collect()
            })
            .collect();
        // Exactly one result per cell, and the result must exist: cells
        // of phantom rows are unconstrained by instances (their guards
        // are true), but still pick some existing value — value 0 always
        // works, so these clauses can never make the sweep stricter than
        // the one-shot encoding at the selected sizes.
        for f in sig.funcs() {
            let range_sort = sig.func(f).range.index();
            for cell in &func_vars[f.index()] {
                let at_least: Vec<Lit> = cell.iter().map(|&v| Lit::pos(v)).collect();
                solver.add_clause(&at_least);
                for i in 0..cell.len() {
                    for j in i + 1..cell.len() {
                        solver.add_clause(&[Lit::neg(cell[i]), Lit::neg(cell[j])]);
                    }
                }
                for (k, &v) in cell.iter().enumerate().skip(1) {
                    solver.add_clause(&[Lit::neg(v), Lit::pos(ex[range_sort][k - 1])]);
                }
            }
        }
        // Symmetry breaking over the full caps: values beyond the
        // current vector are already excluded by the result-exists
        // clauses, so per-vector this is exactly the one-shot constraint.
        if config.symmetry_breaking {
            let mut seen_constants = vec![0usize; caps.len()];
            for f in sig.funcs() {
                let d = sig.func(f);
                if d.arity() != 0 {
                    continue;
                }
                let k = seen_constants[d.range.index()];
                seen_constants[d.range.index()] += 1;
                for v in func_vars[f.index()][0]
                    .iter()
                    .take(caps[d.range.index()])
                    .skip(k + 1)
                {
                    solver.add_clause(&[Lit::neg(*v)]);
                }
            }
        }
        IncrementalSweep {
            solver,
            caps: caps.to_vec(),
            ex,
            func_vars,
            pred_vars,
            covered: Vec::new(),
            used: false,
            broken: false,
        }
    }

    /// The selector assumptions describing `sizes`: element `k` of sort
    /// `s` exists iff `k < sizes[s]`.
    fn assumptions_for(&self, sizes: &[usize]) -> Vec<Lit> {
        let mut out = Vec::new();
        for (s, col) in self.ex.iter().enumerate() {
            for (k, &v) in col.iter().enumerate() {
                out.push(Lit::with_sign(v, k + 1 < sizes[s]));
            }
        }
        out
    }

    /// Records `sizes` as grounded, pruning boxes it dominates.
    fn cover(&mut self, sizes: &[usize]) {
        self.covered
            .retain(|b| !b.iter().zip(sizes).all(|(x, y)| x <= y));
        self.covered.push(sizes.to_vec());
    }

    #[allow(clippy::too_many_arguments)]
    fn try_vector(
        &mut self,
        sys: &ChcSystem,
        flat: &[FlatClause],
        sizes: &[usize],
        est: u64,
        config: &FinderConfig,
        pool: &Pool,
        guard: Option<&Guard>,
        rec: &Recorder,
        stats: &mut FinderStats,
    ) -> SizeOutcome {
        stats.vectors_tried += 1;
        let reused = self.used;
        self.used = true;
        if reused {
            stats.solver_reuses += 1;
        }
        let mut span = rec.span("fmf.size");
        span.note("total", sizes.iter().sum::<usize>() as i64);
        span.note("instances", est as i64);
        span.note("reused", i64::from(reused));
        let (c0, d0, p0, r0) = (
            self.solver.conflict_count(),
            self.solver.decision_count(),
            self.solver.propagation_count(),
            self.solver.restart_count(),
        );
        let out = self.run_vector(sys, flat, sizes, config, pool, guard, stats, &mut span);
        let dc = self.solver.conflict_count() - c0;
        let dd = self.solver.decision_count() - d0;
        stats.conflicts += dc;
        stats.decisions += dd;
        stats.propagations += self.solver.propagation_count() - p0;
        stats.restarts += self.solver.restart_count() - r0;
        span.note("decisions", dd as i64);
        span.note("conflicts", dc as i64);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn run_vector(
        &mut self,
        sys: &ChcSystem,
        flat: &[FlatClause],
        sizes: &[usize],
        config: &FinderConfig,
        pool: &Pool,
        guard: Option<&Guard>,
        stats: &mut FinderStats,
        span: &mut ringen_parallel::Span,
    ) -> SizeOutcome {
        // Push the delta: assignments of this vector's box not inside
        // any previously grounded box. Same batching/determinism
        // contract as the one-shot path.
        let mut delta: u64 = 0;
        if !self.broken {
            let batch = (pool.threads() * 4).max(1);
            let (caps, covered) = (&self.caps, &self.covered);
            let (func_vars, pred_vars, ex) = (&self.func_vars, &self.pred_vars, &self.ex);
            'waves: for wave in flat.chunks(batch) {
                if guard.is_some_and(|g| g.is_cancelled()) {
                    span.note_str("outcome", "interrupted");
                    return SizeOutcome::Interrupted;
                }
                let grounded: Vec<GroundInstances> = pool
                    .map_chunks(wave, |_, chunk| {
                        chunk
                            .iter()
                            .map(|c| {
                                ground_clause_delta(
                                    sys, c, sizes, caps, covered, func_vars, pred_vars, ex,
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect();
                for g in &grounded {
                    for lits in g.iter() {
                        delta += 1;
                        if !self.solver.add_clause(lits) {
                            self.broken = true;
                            break 'waves;
                        }
                    }
                }
            }
            if !self.broken {
                self.cover(sizes);
            }
        }
        stats.delta_clauses += delta;
        span.note("delta_clauses", delta as i64);
        let assumptions = self.assumptions_for(sizes);
        span.note("assumptions", assumptions.len() as i64);
        if self.broken {
            // The clause set is unsatisfiable with the selectors still
            // free, i.e. under every size vector at once.
            span.note_str("outcome", "unsat");
            return SizeOutcome::Unsat;
        }
        let result = match guard {
            Some(g) => self
                .solver
                .solve_assuming_guarded(config.max_conflicts, g, &assumptions),
            None => self
                .solver
                .solve_assuming_with_budget(config.max_conflicts, &assumptions),
        };
        match result {
            SatResult::Sat => {
                let (values, dropped) = if config.minimize {
                    let active = self.active_pred_vars(sys, sizes);
                    shrink_true_preds(
                        &mut self.solver,
                        &assumptions,
                        &active,
                        config.max_conflicts,
                        guard,
                    )
                } else {
                    (self.solver.model(), 0)
                };
                stats.minimized_atoms += dropped;
                span.note("minimized", dropped as i64);
                let model = extract_model(
                    sys,
                    sizes,
                    &self.caps,
                    &self.func_vars,
                    &self.pred_vars,
                    |v| values[v.index()] == Some(true),
                );
                span.note_str("outcome", "model");
                SizeOutcome::Model(model)
            }
            SatResult::Unsat => {
                span.note_str("outcome", "unsat");
                SizeOutcome::Unsat
            }
            SatResult::Unknown => {
                if guard.is_some_and(|g| g.is_cancelled()) {
                    span.note_str("outcome", "interrupted");
                    SizeOutcome::Interrupted
                } else {
                    stats.budget_exhausted += 1;
                    span.note_str("outcome", "budget");
                    SizeOutcome::Budget
                }
            }
        }
    }

    /// The predicate-table variables whose rows lie inside `sizes` (the
    /// atoms minimal-model shrinking ranges over; phantom rows float).
    fn active_pred_vars(&self, sys: &ChcSystem, sizes: &[usize]) -> Vec<Var> {
        let mut out = Vec::new();
        for p in sys.rels.iter() {
            let d = sys.rels.decl(p);
            let dims: Vec<usize> = d.domain.iter().map(|s| sizes[s.index()]).collect();
            let rows: usize = dims.iter().product();
            for r in 0..rows {
                let args = unrank(r, &dims);
                let row = pred_row_index(sys, p, &args, &self.caps);
                out.push(self.pred_vars[p.index()][row]);
            }
        }
        out
    }
}

/// The dual-query minimal-model shrink loop: starting from the model in
/// the solver, repeatedly ask for a model whose true predicate atoms are
/// a *proper subset* of the current ones — false atoms pinned by
/// assumptions, "drop at least one" imposed through a fresh activation
/// literal — until the query comes back UNSAT (the failed-assumption
/// analysis then certifies that no strictly smaller extension exists, so
/// the last model's predicate extension is ⊆-minimal). `Unknown`
/// (budget or guard) keeps the best model found so far. Returns the
/// final assignment snapshot and the number of atoms dropped.
fn shrink_true_preds(
    solver: &mut Solver,
    base_assumptions: &[Lit],
    active_preds: &[Var],
    max_conflicts: u64,
    guard: Option<&Guard>,
) -> (Vec<Option<bool>>, u64) {
    let mut best = solver.model();
    let initial = active_preds
        .iter()
        .filter(|v| best[v.index()] == Some(true))
        .count();
    loop {
        let true_set: Vec<Var> = active_preds
            .iter()
            .copied()
            .filter(|v| best[v.index()] == Some(true))
            .collect();
        if true_set.is_empty() {
            break;
        }
        let act = solver.new_var();
        let mut drop_one: Vec<Lit> = Vec::with_capacity(true_set.len() + 1);
        drop_one.push(Lit::neg(act));
        drop_one.extend(true_set.iter().map(|&v| Lit::neg(v)));
        if !solver.add_clause(&drop_one) {
            break;
        }
        let mut assumptions: Vec<Lit> =
            Vec::with_capacity(base_assumptions.len() + 1 + active_preds.len());
        assumptions.extend_from_slice(base_assumptions);
        assumptions.push(Lit::pos(act));
        assumptions.extend(
            active_preds
                .iter()
                .copied()
                .filter(|v| best[v.index()] == Some(false))
                .map(Lit::neg),
        );
        let result = match guard {
            Some(g) => solver.solve_assuming_guarded(max_conflicts, g, &assumptions),
            None => solver.solve_assuming_with_budget(max_conflicts, &assumptions),
        };
        let improved = match result {
            SatResult::Sat => Some(solver.model()),
            SatResult::Unsat | SatResult::Unknown => None,
        };
        // Retire this iteration's drop clause either way, so later
        // queries on a shared solver never see it.
        solver.add_clause(&[Lit::neg(act)]);
        match improved {
            Some(next) => best = next,
            None => break,
        }
    }
    let fin = active_preds
        .iter()
        .filter(|v| best[v.index()] == Some(true))
        .count();
    (best, (initial - fin) as u64)
}

/// Reads a [`FiniteModel`] at `sizes` out of a variable assignment. The
/// tables may be allocated at larger dimensions (`index_sizes`, the
/// incremental caps); only rows inside `sizes` are consulted.
fn extract_model(
    sys: &ChcSystem,
    sizes: &[usize],
    index_sizes: &[usize],
    func_vars: &[Vec<Vec<Var>>],
    pred_vars: &[Vec<Var>],
    value: impl Fn(Var) -> bool,
) -> FiniteModel {
    let sig = &sys.sig;
    let pred_domains: Vec<Vec<usize>> = sys
        .rels
        .iter()
        .map(|p| {
            sys.rels
                .decl(p)
                .domain
                .iter()
                .map(|s| sizes[s.index()])
                .collect()
        })
        .collect();
    let mut model = FiniteModel::new(sig, &pred_domains, sizes.to_vec());
    for f in sig.funcs() {
        let d = sig.func(f);
        let dims: Vec<usize> = d.domain.iter().map(|s| sizes[s.index()]).collect();
        let rows: usize = dims.iter().product();
        for r in 0..rows {
            let args = unrank(r, &dims);
            let row = row_index(sig, f, &args, index_sizes);
            let cell = &func_vars[f.index()][row];
            let v = cell
                .iter()
                .position(|&v| value(v))
                .expect("exactly-one cell has a true value");
            model.set_func(sig, f, &args, v);
        }
    }
    for p in sys.rels.iter() {
        let dims = &pred_domains[p.index()];
        let rows: usize = dims.iter().product();
        for r in 0..rows {
            let args = unrank(r, dims);
            let row = pred_row_index(sys, p, &args, index_sizes);
            if value(pred_vars[p.index()][row]) {
                model.add_pred(p, args);
            }
        }
    }
    model
}

/// The ground SAT instances of one flattened clause: literal lists
/// stored back to back in one flat buffer (`ends[i]` is the exclusive
/// end of instance `i`), compact enough to materialize a whole clause's
/// sweep before handing it to the solver.
struct GroundInstances {
    lits: Vec<Lit>,
    ends: Vec<usize>,
}

impl GroundInstances {
    fn iter(&self) -> impl Iterator<Item = &[Lit]> + '_ {
        self.ends.iter().scan(0usize, move |start, &end| {
            let s = *start;
            *start = end;
            Some(&self.lits[s..end])
        })
    }
}

/// Enumerates every variable assignment of one flattened clause and
/// emits the surviving ground instances, in odometer order. Pure: reads
/// only frozen tables, writes only its own buffer — the unit of work
/// the parallel sweep fans out.
fn ground_clause(
    sys: &ChcSystem,
    c: &FlatClause,
    sizes: &[usize],
    func_vars: &[Vec<Vec<Var>>],
    pred_vars: &[Vec<Var>],
) -> GroundInstances {
    let sig = &sys.sig;
    let mut out = GroundInstances {
        lits: Vec::new(),
        ends: Vec::new(),
    };
    let dims: Vec<usize> = c.var_sorts.iter().map(|s| sizes[s.index()]).collect();
    if dims.contains(&0) {
        return out;
    }
    let mut assign = vec![0usize; dims.len()];
    'assignments: loop {
        // Equality literals are decided at grounding time.
        let eq_ok = c.eqs.iter().all(|&(a, b)| assign[a] == assign[b]);
        if eq_ok {
            for (f, args, res) in &c.defs {
                let vals: Vec<usize> = args.iter().map(|&v| assign[v]).collect();
                let row = row_index(sig, *f, &vals, sizes);
                out.lits
                    .push(Lit::neg(func_vars[f.index()][row][assign[*res]]));
            }
            for (p, args) in &c.body {
                let vals: Vec<usize> = args.iter().map(|&v| assign[v]).collect();
                let row = pred_row_index(sys, *p, &vals, sizes);
                out.lits.push(Lit::neg(pred_vars[p.index()][row]));
            }
            if let Some((p, args)) = &c.head {
                let vals: Vec<usize> = args.iter().map(|&v| assign[v]).collect();
                let row = pred_row_index(sys, *p, &vals, sizes);
                out.lits.push(Lit::pos(pred_vars[p.index()][row]));
            }
            out.ends.push(out.lits.len());
        }
        // Odometer.
        let mut i = 0;
        loop {
            if i == assign.len() {
                break 'assignments;
            }
            assign[i] += 1;
            if assign[i] < dims[i] {
                break;
            }
            assign[i] = 0;
            i += 1;
        }
        if assign.iter().all(|&a| a == 0) {
            break;
        }
    }
    out
}

/// [`ground_clause`] for the incremental sweep: iterates the box of
/// `sizes` but emits only assignments *not* inside any covered box, with
/// tables indexed at `caps` dimensions, and guards every instance with
/// the negated existence selectors of the elements it mentions — so the
/// instance is vacuous whenever a later, smaller vector deselects one of
/// them.
#[allow(clippy::too_many_arguments)]
fn ground_clause_delta(
    sys: &ChcSystem,
    c: &FlatClause,
    sizes: &[usize],
    caps: &[usize],
    covered: &[Vec<usize>],
    func_vars: &[Vec<Vec<Var>>],
    pred_vars: &[Vec<Var>],
    ex: &[Vec<Var>],
) -> GroundInstances {
    let sig = &sys.sig;
    let mut out = GroundInstances {
        lits: Vec::new(),
        ends: Vec::new(),
    };
    let dims: Vec<usize> = c.var_sorts.iter().map(|s| sizes[s.index()]).collect();
    if dims.contains(&0) {
        return out;
    }
    let mut assign = vec![0usize; dims.len()];
    'assignments: loop {
        let already = covered.iter().any(|b| {
            assign
                .iter()
                .zip(&c.var_sorts)
                .all(|(&a, s)| a < b[s.index()])
        });
        let eq_ok = !already && c.eqs.iter().all(|&(a, b)| assign[a] == assign[b]);
        if eq_ok {
            for (f, args, res) in &c.defs {
                let vals: Vec<usize> = args.iter().map(|&v| assign[v]).collect();
                let row = row_index(sig, *f, &vals, caps);
                out.lits
                    .push(Lit::neg(func_vars[f.index()][row][assign[*res]]));
            }
            for (p, args) in &c.body {
                let vals: Vec<usize> = args.iter().map(|&v| assign[v]).collect();
                let row = pred_row_index(sys, *p, &vals, caps);
                out.lits.push(Lit::neg(pred_vars[p.index()][row]));
            }
            if let Some((p, args)) = &c.head {
                let vals: Vec<usize> = args.iter().map(|&v| assign[v]).collect();
                let row = pred_row_index(sys, *p, &vals, caps);
                out.lits.push(Lit::pos(pred_vars[p.index()][row]));
            }
            // Existence guards (duplicates are deduplicated by the
            // solver's clause normalization).
            for (&a, s) in assign.iter().zip(&c.var_sorts) {
                if a >= 1 {
                    out.lits.push(Lit::neg(ex[s.index()][a - 1]));
                }
            }
            out.ends.push(out.lits.len());
        }
        // Odometer.
        let mut i = 0;
        loop {
            if i == assign.len() {
                break 'assignments;
            }
            assign[i] += 1;
            if assign[i] < dims[i] {
                break;
            }
            assign[i] = 0;
            i += 1;
        }
        if assign.iter().all(|&a| a == 0) {
            break;
        }
    }
    out
}

fn row_index(
    sig: &ringen_terms::Signature,
    f: ringen_terms::FuncId,
    args: &[usize],
    sizes: &[usize],
) -> usize {
    let d = sig.func(f);
    let mut idx = 0;
    for (a, s) in args.iter().zip(&d.domain) {
        idx = idx * sizes[s.index()] + a;
    }
    idx
}

fn pred_row_index(
    sys: &ChcSystem,
    p: ringen_chc::PredId,
    args: &[usize],
    sizes: &[usize],
) -> usize {
    let d = sys.rels.decl(p);
    let mut idx = 0;
    for (a, s) in args.iter().zip(&d.domain) {
        idx = idx * sizes[s.index()] + a;
    }
    idx
}

/// Inverse of the row-major ranking.
fn unrank(mut row: usize, dims: &[usize]) -> Vec<usize> {
    let mut out = vec![0; dims.len()];
    for i in (0..dims.len()).rev() {
        out[i] = row % dims[i];
        row /= dims[i];
    }
    out
}

/// Convenience: whether the signature has any non-constructor function
/// symbols (the EUF reduction keeps constructors as free symbols, so this
/// is informational only).
pub fn has_free_symbols(sys: &ChcSystem) -> bool {
    sys.sig
        .funcs()
        .any(|f| sys.sig.func(f).kind == FuncKind::Free)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::SystemBuilder;
    use ringen_terms::Term;

    fn even_system() -> ChcSystem {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        let even = b.pred("even", vec![nat]);
        b.clause(|c| {
            c.head(even, vec![c.app0(z)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(even, vec![c.v(x)]);
            c.head(even, vec![Term::iterate(s, c.v(x), 2)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(even, vec![c.v(x)]);
            c.body(even, vec![c.app(s, vec![c.v(x)])]);
        });
        b.finish()
    }

    #[test]
    fn finds_the_two_element_even_model() {
        let sys = even_system();
        let (outcome, stats) = find_model(&sys, &FinderConfig::default()).unwrap();
        let model = outcome.model().expect("even has a finite model");
        assert_eq!(model.size(), 2, "paper's minimal model has 2 elements");
        assert!(model.satisfies(&sys));
        assert!(stats.vectors_tried >= 1);
        // Z must be even, S(Z) must not.
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let even = sys.rels.by_name("even").unwrap();
        let e0 = model.eval_ground(&sys.sig, &ringen_terms::GroundTerm::leaf(z));
        assert!(model.holds(even, &[e0]));
        let e1 = model.eval_ground(
            &sys.sig,
            &ringen_terms::GroundTerm::iterate(s, ringen_terms::GroundTerm::leaf(z), 1),
        );
        assert!(!model.holds(even, &[e1]));
    }

    #[test]
    fn incdec_needs_three_elements() {
        // The IncDec system of Example 4 / Proposition 4: minimal regular
        // model is mod-3 counting.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        let inc = b.pred("inc", vec![nat, nat]);
        let dec = b.pred("dec", vec![nat, nat]);
        b.clause(|c| {
            c.head(inc, vec![c.app0(z), c.app(s, vec![c.app0(z)])]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            let y = c.var("y", nat);
            c.body(inc, vec![c.v(x), c.v(y)]);
            c.head(inc, vec![c.app(s, vec![c.v(x)]), c.app(s, vec![c.v(y)])]);
        });
        b.clause(|c| {
            c.head(dec, vec![c.app(s, vec![c.app0(z)]), c.app0(z)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            let y = c.var("y", nat);
            c.body(dec, vec![c.v(x), c.v(y)]);
            c.head(dec, vec![c.app(s, vec![c.v(x)]), c.app(s, vec![c.v(y)])]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            let y = c.var("y", nat);
            c.body(inc, vec![c.v(x), c.v(y)]);
            c.body(dec, vec![c.v(x), c.v(y)]);
        });
        let sys = b.finish();
        let (outcome, _) = find_model(&sys, &FinderConfig::default()).unwrap();
        let model = outcome.model().expect("IncDec ∈ Reg (Proposition 4)");
        assert!(model.satisfies(&sys));
        assert!(model.size() >= 3, "no 1- or 2-element model can work");
    }

    #[test]
    fn fo_unsat_system_exhausts() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let _z = b.ctor("Z", vec![], nat);
        let p = b.pred("p", vec![nat]);
        b.clause(|c| {
            let x = c.var("x", nat);
            c.head(p, vec![c.v(x)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(p, vec![c.v(x)]);
        });
        let sys = b.finish();
        let config = FinderConfig {
            max_total_size: 4,
            ..FinderConfig::default()
        };
        let (outcome, stats) = find_model(&sys, &config).unwrap();
        assert!(outcome.model().is_none());
        assert_eq!(stats.vectors_tried, 4);
    }

    #[test]
    fn equality_constraints_restrict_models() {
        // p(x) for all x, query p(Z) with x = Z constraint forces UNSAT
        // at every size.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let p = b.pred("p", vec![nat]);
        b.clause(|c| {
            let x = c.var("x", nat);
            c.head(p, vec![c.v(x)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.eq(c.v(x), c.app0(z));
            c.body(p, vec![c.v(x)]);
        });
        let sys = b.finish();
        let config = FinderConfig {
            max_total_size: 3,
            ..FinderConfig::default()
        };
        let (outcome, _) = find_model(&sys, &config).unwrap();
        assert!(outcome.model().is_none());
    }

    #[test]
    fn multi_sort_sizes_are_searched() {
        // Two sorts; q over B needs 2 elements, Nat can stay at 1.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let bs = b.sort("B");
        let _z = b.ctor("Z", vec![], nat);
        let t = b.ctor("T", vec![], bs);
        let f = b.ctor("F", vec![], bs);
        let q = b.pred("q", vec![bs]);
        b.clause(|c| {
            c.head(q, vec![c.app0(t)]);
        });
        b.clause(|c| {
            c.body(q, vec![c.app0(f)]);
        });
        let sys = b.finish();
        let (outcome, _) = find_model(&sys, &FinderConfig::default()).unwrap();
        let model = outcome.model().expect("needs T ≠ F only");
        assert!(model.satisfies(&sys));
        assert_eq!(model.size(), 3); // 1 (Nat) + 2 (B)
    }

    #[test]
    fn compositions_enumerate_all_vectors() {
        let cs = compositions(4, 2);
        assert_eq!(cs, vec![vec![1, 3], vec![2, 2], vec![3, 1]]);
        assert_eq!(compositions(1, 2), Vec::<Vec<usize>>::new());
        assert_eq!(compositions(3, 3), vec![vec![1, 1, 1]]);
    }

    #[test]
    fn unrank_inverts_row_major() {
        let dims = [2usize, 3, 2];
        for row in 0..12 {
            let t = unrank(row, &dims);
            let mut back = 0;
            for (v, d) in t.iter().zip(&dims) {
                back = back * d + v;
            }
            assert_eq!(back, row);
        }
    }

    #[test]
    fn parallel_sweep_is_identical_at_any_thread_count() {
        // The sharded ground-instance sweep must reproduce the inline
        // result bit for bit: same model, same statistics — in both
        // sweep modes.
        let sys = even_system();
        for incremental in [true, false] {
            let run = |threads: usize| {
                let cfg = FinderConfig {
                    incremental,
                    parallel: ParallelConfig::with_threads(threads),
                    ..FinderConfig::default()
                };
                let (outcome, stats) = find_model(&sys, &cfg).unwrap();
                (outcome.model(), stats)
            };
            let (m1, s1) = run(1);
            for threads in [2usize, 4, 8] {
                let (m, s) = run(threads);
                assert_eq!(m, m1, "threads = {threads}, incremental = {incremental}");
                assert_eq!(s, s1, "threads = {threads}, incremental = {incremental}");
            }
            assert!(m1.is_some());
        }
    }

    #[test]
    fn parallel_sweep_agrees_on_unsat_and_multi_sort() {
        // UNSAT path (early solver conflict) and a multi-sort grounding
        // both stay deterministic under sharding.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let bs = b.sort("B");
        let _z = b.ctor("Z", vec![], nat);
        let t = b.ctor("T", vec![], bs);
        let q = b.pred("q", vec![bs]);
        b.clause(|c| {
            let x = c.var("x", bs);
            c.head(q, vec![c.v(x)]);
        });
        b.clause(|c| {
            c.body(q, vec![c.app0(t)]);
        });
        let sys = b.finish();
        let run = |threads: usize| {
            let cfg = FinderConfig {
                max_total_size: 4,
                parallel: ParallelConfig::with_threads(threads),
                ..FinderConfig::default()
            };
            let (outcome, stats) = find_model(&sys, &cfg).unwrap();
            (outcome.model().is_some(), stats)
        };
        let base = run(1);
        assert_eq!(run(4), base);
        assert!(!base.0, "q is both total and refuted: no model");
    }

    #[test]
    fn guarded_search_interrupts_and_matches_when_uncancelled() {
        let sys = even_system();
        // Already-tripped guard: no vector is attempted.
        let g = Guard::new();
        g.cancel();
        let (outcome, stats) = find_model_guarded(&sys, &FinderConfig::default(), &g).unwrap();
        assert!(matches!(outcome, FmfOutcome::Interrupted));
        assert_eq!(stats.vectors_tried, 0);
        // Fuel guard: trips mid-search, still reports Interrupted.
        let g = Guard::with_fuel(1);
        let (outcome, _) = find_model_guarded(&sys, &FinderConfig::default(), &g).unwrap();
        assert!(matches!(outcome, FmfOutcome::Interrupted));
        // A live guard changes nothing.
        let g = Guard::new();
        let (outcome, stats) = find_model_guarded(&sys, &FinderConfig::default(), &g).unwrap();
        let (plain, plain_stats) = find_model(&sys, &FinderConfig::default()).unwrap();
        assert_eq!(outcome.model(), plain.model());
        assert_eq!(stats, plain_stats);
    }

    #[test]
    fn symmetry_breaking_preserves_satisfiability() {
        let sys = even_system();
        let plain = FinderConfig {
            symmetry_breaking: false,
            ..FinderConfig::default()
        };
        let (o1, _) = find_model(&sys, &FinderConfig::default()).unwrap();
        let (o2, _) = find_model(&sys, &plain).unwrap();
        let m1 = o1.model().unwrap();
        let m2 = o2.model().unwrap();
        assert_eq!(m1.size(), m2.size());
        assert!(m1.satisfies(&sys) && m2.satisfies(&sys));
    }

    #[test]
    fn incremental_and_one_shot_sweeps_agree() {
        // Same verdict, same first-model size vector, same skip
        // decisions — the differential contract behind
        // `RINGEN_FMF_INCREMENTAL=0`.
        let sys = even_system();
        let inc = FinderConfig {
            incremental: true,
            ..FinderConfig::default()
        };
        let one = FinderConfig {
            incremental: false,
            ..FinderConfig::default()
        };
        let (oi, si) = find_model(&sys, &inc).unwrap();
        let (oo, so) = find_model(&sys, &one).unwrap();
        let (mi, mo) = (oi.model().unwrap(), oo.model().unwrap());
        assert_eq!(mi.sizes(), mo.sizes());
        assert!(mi.satisfies(&sys) && mo.satisfies(&sys));
        assert_eq!(si.vectors_tried, so.vectors_tried);
        assert_eq!(si.skipped_too_large, so.skipped_too_large);
    }

    #[test]
    fn incremental_sweep_reuses_one_solver() {
        // IncDec walks three size vectors; the shared solver answers all
        // but the first from retained state, and only deltas are pushed.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        let p = b.pred("p", vec![nat]);
        b.clause(|c| {
            c.head(p, vec![c.app0(z)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(p, vec![c.v(x)]);
            c.head(p, vec![Term::iterate(s, c.v(x), 3)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(p, vec![c.v(x)]);
            c.body(p, vec![c.app(s, vec![c.v(x)])]);
        });
        let sys = b.finish();
        let cfg = FinderConfig {
            incremental: true,
            ..FinderConfig::default()
        };
        let (outcome, stats) = find_model(&sys, &cfg).unwrap();
        assert!(outcome.model().is_some());
        assert!(stats.vectors_tried >= 3, "mod-3 needs the third vector");
        assert_eq!(stats.solver_reuses, stats.vectors_tried - 1);
        assert!(stats.delta_clauses > 0);

        // The one-shot reference never reuses.
        let one = FinderConfig {
            incremental: false,
            ..FinderConfig::default()
        };
        let (_, so) = find_model(&sys, &one).unwrap();
        assert_eq!(so.solver_reuses, 0);
    }

    #[test]
    fn minimized_model_has_no_satisfying_proper_submodel() {
        // ⊆-minimality of the predicate extension: removing *any*
        // non-empty subset of atoms (functions unchanged) breaks the
        // system. This is exactly what the shrink loop's final UNSAT
        // certifies.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        let inc = b.pred("inc", vec![nat, nat]);
        b.clause(|c| {
            c.head(inc, vec![c.app0(z), c.app(s, vec![c.app0(z)])]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            let y = c.var("y", nat);
            c.body(inc, vec![c.v(x), c.v(y)]);
            c.head(inc, vec![c.app(s, vec![c.v(x)]), c.app(s, vec![c.v(y)])]);
        });
        let sys = b.finish();
        for incremental in [true, false] {
            let cfg = FinderConfig {
                incremental,
                minimize: true,
                ..FinderConfig::default()
            };
            let (outcome, _) = find_model(&sys, &cfg).unwrap();
            let model = outcome.model().expect("inc chains are satisfiable");
            assert!(model.satisfies(&sys));
            let atoms: Vec<(ringen_chc::PredId, Vec<usize>)> = sys
                .rels
                .iter()
                .flat_map(|p| {
                    model
                        .pred_table(p)
                        .map(|t| (p, t.to_vec()))
                        .collect::<Vec<_>>()
                })
                .collect();
            assert!(atoms.len() <= 12, "test relies on exhaustive subsets");
            for mask in 1u32..(1 << atoms.len()) {
                let mut sub = model.clone();
                for (i, (p, t)) in atoms.iter().enumerate() {
                    if mask >> i & 1 == 1 {
                        sub = sub.without_pred_tuple(*p, t);
                    }
                }
                assert!(
                    !sub.satisfies(&sys),
                    "proper sub-model (mask {mask:#b}) still satisfies the system"
                );
            }
        }
    }

    #[test]
    fn minimize_knob_only_ever_shrinks() {
        let sys = even_system();
        let atoms =
            |m: &FiniteModel| -> usize { sys.rels.iter().map(|p| m.pred_table(p).count()).sum() };
        for incremental in [true, false] {
            let min = FinderConfig {
                incremental,
                minimize: true,
                ..FinderConfig::default()
            };
            let raw = FinderConfig {
                incremental,
                minimize: false,
                ..FinderConfig::default()
            };
            let (om, _) = find_model(&sys, &min).unwrap();
            let (or, _) = find_model(&sys, &raw).unwrap();
            let (mm, mr) = (om.model().unwrap(), or.model().unwrap());
            assert!(mm.satisfies(&sys) && mr.satisfies(&sys));
            assert!(atoms(&mm) <= atoms(&mr));
        }
    }
}
