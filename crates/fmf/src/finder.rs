//! The MACE-style model search: ground to SAT per domain-size vector.
//!
//! The ground-instance sweep — enumerating every variable assignment of
//! every flattened clause and emitting the corresponding SAT clause —
//! is pure per clause (a function of the frozen variable tables and the
//! size vector), so it is sharded across a [`ringen_parallel::Pool`]
//! with the same snapshot/delta/merge shape as the saturation engine:
//! workers *generate* literal lists, the caller *adds* them to the
//! solver sequentially in clause order. The outcome is bit-for-bit
//! identical at any `RINGEN_THREADS` value. The workers are spawned
//! once per [`find_model`] call and parked between size vectors
//! ([`Pool::persistent`]), not re-spawned per sweep.

use ringen_chc::ChcSystem;
use ringen_parallel::{Guard, ParallelConfig, Pool, Recorder};
use ringen_sat::{Lit, SatResult, Solver, Var};
use ringen_terms::FuncKind;

use crate::flatten::{flatten_system, FlatClause, FlattenError};
use crate::model::FiniteModel;

/// Tuning knobs for [`find_model`].
#[derive(Debug, Clone)]
pub struct FinderConfig {
    /// Maximum total domain size (sum over sorts) to try.
    pub max_total_size: usize,
    /// SAT conflict budget per size vector.
    pub max_conflicts: u64,
    /// Skip a size vector if it would ground to more instances than this.
    pub max_ground_instances: u64,
    /// Enable constant-ordering symmetry breaking.
    pub symmetry_breaking: bool,
    /// Worker threads for the ground-instance sweep. The default honors
    /// `RINGEN_THREADS` (1 forces the inline path); results are
    /// identical at any value.
    pub parallel: ParallelConfig,
}

impl Default for FinderConfig {
    fn default() -> Self {
        FinderConfig {
            max_total_size: 10,
            max_conflicts: 100_000,
            max_ground_instances: 4_000_000,
            symmetry_breaking: true,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Statistics from a [`find_model`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FinderStats {
    /// Size vectors attempted.
    pub vectors_tried: usize,
    /// Total SAT conflicts over all attempts.
    pub conflicts: u64,
    /// Total SAT decisions over all attempts.
    pub decisions: u64,
    /// Size vectors skipped because grounding would be too large.
    pub skipped_too_large: usize,
    /// Size vectors abandoned on conflict budget.
    pub budget_exhausted: usize,
}

/// Outcome of the search.
#[derive(Debug, Clone)]
pub enum FmfOutcome {
    /// A finite model was found.
    Model(FiniteModel),
    /// No model exists within the configured bounds (the system may still
    /// have larger or infinite models — finite model existence is only
    /// semidecidable, §9).
    Exhausted,
    /// The search was cancelled by its [`Guard`] before the bounds were
    /// exhausted. `FinderStats` still reflects the work completed.
    Interrupted,
}

impl FmfOutcome {
    /// The model, if one was found.
    pub fn model(self) -> Option<FiniteModel> {
        match self {
            FmfOutcome::Model(m) => Some(m),
            FmfOutcome::Exhausted | FmfOutcome::Interrupted => None,
        }
    }
}

/// Searches for a finite model of an equality-only CHC system over EUF,
/// iterating domain-size vectors in order of total size (§4.1–4.2).
///
/// # Errors
///
/// Returns [`FlattenError`] if the system still contains disequalities or
/// testers (run the §4.4/§4.5 preprocessing first).
pub fn find_model(
    sys: &ChcSystem,
    config: &FinderConfig,
) -> Result<(FmfOutcome, FinderStats), FlattenError> {
    find_model_inner(sys, config, None)
}

/// [`find_model`] with cooperative cancellation: the guard is polled
/// between size vectors, between grounding waves, and inside the SAT
/// search. A trip yields [`FmfOutcome::Interrupted`] with the statistics
/// accumulated so far; no partial state escapes.
pub fn find_model_guarded(
    sys: &ChcSystem,
    config: &FinderConfig,
    guard: &Guard,
) -> Result<(FmfOutcome, FinderStats), FlattenError> {
    find_model_inner(sys, config, Some(guard))
}

fn find_model_inner(
    sys: &ChcSystem,
    config: &FinderConfig,
    guard: Option<&Guard>,
) -> Result<(FmfOutcome, FinderStats), FlattenError> {
    let flat = flatten_system(sys)?;
    let mut stats = FinderStats::default();
    let num_sorts = sys.sig.sort_count();
    if num_sorts == 0 {
        // Degenerate: no sorts means no variables; treat as exhausted.
        return Ok((FmfOutcome::Exhausted, stats));
    }
    // One worker set for the whole search: spawned here, parked
    // between size vectors (and between waves within one), joined on
    // return. `RINGEN_THREADS=1` spawns nothing.
    let pool = Pool::persistent(&config.parallel);
    let rec = guard.map_or_else(Recorder::disabled, |g| g.recorder().clone());
    let mut span = rec.span("fmf.search");
    span.note("max_total_size", config.max_total_size as i64);
    let mut outcome = FmfOutcome::Exhausted;
    'search: for total in num_sorts..=config.max_total_size {
        for sizes in compositions(total, num_sorts) {
            if guard.is_some_and(|g| g.is_cancelled()) {
                outcome = FmfOutcome::Interrupted;
                break 'search;
            }
            match try_sizes(sys, &flat, &sizes, config, &pool, guard, &rec, &mut stats) {
                SizeOutcome::Model(m) => {
                    outcome = FmfOutcome::Model(m);
                    break 'search;
                }
                SizeOutcome::Interrupted => {
                    outcome = FmfOutcome::Interrupted;
                    break 'search;
                }
                SizeOutcome::Unsat | SizeOutcome::Skipped | SizeOutcome::Budget => {}
            }
        }
    }
    span.note("vectors_tried", stats.vectors_tried as i64);
    span.note_str(
        "outcome",
        match &outcome {
            FmfOutcome::Model(_) => "model",
            FmfOutcome::Exhausted => "exhausted",
            FmfOutcome::Interrupted => "interrupted",
        },
    );
    drop(span);
    rec.add("sat.decisions", stats.decisions as i64);
    rec.add("sat.conflicts", stats.conflicts as i64);
    Ok((outcome, stats))
}

enum SizeOutcome {
    Model(FiniteModel),
    Unsat,
    Budget,
    Skipped,
    Interrupted,
}

/// All vectors of `parts` positive integers summing to `total`.
fn compositions(total: usize, parts: usize) -> Vec<Vec<usize>> {
    fn go(total: usize, parts: usize, acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if parts == 1 {
            acc.push(total);
            out.push(acc.clone());
            acc.pop();
            return;
        }
        for first in 1..=total - (parts - 1) {
            acc.push(first);
            go(total - first, parts - 1, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    if total >= parts {
        go(total, parts, &mut Vec::new(), &mut out);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn try_sizes(
    sys: &ChcSystem,
    flat: &[FlatClause],
    sizes: &[usize],
    config: &FinderConfig,
    pool: &Pool,
    guard: Option<&Guard>,
    rec: &Recorder,
    stats: &mut FinderStats,
) -> SizeOutcome {
    // Estimate the grounding size first.
    let mut instances: u64 = 0;
    for c in flat {
        let mut rows: u64 = 1;
        for s in &c.var_sorts {
            rows = rows.saturating_mul(sizes[s.index()] as u64);
        }
        instances = instances.saturating_add(rows);
    }
    if instances > config.max_ground_instances {
        stats.skipped_too_large += 1;
        return SizeOutcome::Skipped;
    }
    stats.vectors_tried += 1;
    let mut span = rec.span("fmf.size");
    span.note("total", sizes.iter().sum::<usize>() as i64);
    span.note("instances", instances as i64);

    let sig = &sys.sig;
    let mut solver = Solver::new();

    // Function-table variables e[f][row][result].
    let func_vars: Vec<Vec<Vec<Var>>> = sig
        .funcs()
        .map(|f| {
            let d = sig.func(f);
            let rows: usize = d.domain.iter().map(|s| sizes[s.index()]).product();
            let range = sizes[d.range.index()];
            (0..rows)
                .map(|_| (0..range).map(|_| solver.new_var()).collect())
                .collect()
        })
        .collect();
    // Predicate-table variables b[p][row].
    let pred_vars: Vec<Vec<Var>> = sys
        .rels
        .iter()
        .map(|p| {
            let d = sys.rels.decl(p);
            let rows: usize = d.domain.iter().map(|s| sizes[s.index()]).product();
            (0..rows).map(|_| solver.new_var()).collect()
        })
        .collect();

    // Totality and functionality: exactly one result per cell.
    for table in &func_vars {
        for cell in table {
            let at_least: Vec<Lit> = cell.iter().map(|&v| Lit::pos(v)).collect();
            solver.add_clause(&at_least);
            for i in 0..cell.len() {
                for j in i + 1..cell.len() {
                    solver.add_clause(&[Lit::neg(cell[i]), Lit::neg(cell[j])]);
                }
            }
        }
    }

    // Symmetry breaking: the i-th constant of each sort takes a value
    // ≤ i (domains can always be permuted into this form).
    if config.symmetry_breaking {
        let mut seen_constants = vec![0usize; sizes.len()];
        for f in sig.funcs() {
            let d = sig.func(f);
            if d.arity() != 0 {
                continue;
            }
            let k = seen_constants[d.range.index()];
            seen_constants[d.range.index()] += 1;
            // NB: the range may be empty (k + 1 > size); take/skip keeps
            // that case a no-op instead of a slice panic.
            for v in func_vars[f.index()][0]
                .iter()
                .take(sizes[d.range.index()])
                .skip(k + 1)
            {
                solver.add_clause(&[Lit::neg(*v)]);
            }
        }
    }

    // Ground every flattened clause. Instance *generation* is pure per
    // clause (a function of the frozen variable tables and the size
    // vector), so it is sharded across workers in bounded batches; each
    // batch's instances are then added to the solver sequentially, in
    // clause and assignment order — the solver sees the exact prefix of
    // the sequence the inline loop produced, so outcome and statistics
    // are identical at any thread count. Batching (instead of
    // generating the whole sweep up front) bounds peak memory to one
    // batch and keeps the old streaming behavior of stopping early on
    // a root-level conflict: at most one batch is generated in vain.
    let batch = (pool.threads() * 4).max(1);
    for wave in flat.chunks(batch) {
        if guard.is_some_and(|g| g.is_cancelled()) {
            span.note_str("outcome", "interrupted");
            return SizeOutcome::Interrupted;
        }
        let grounded: Vec<GroundInstances> = pool
            .map_chunks(wave, |_, chunk| {
                chunk
                    .iter()
                    .map(|c| ground_clause(sys, c, sizes, &func_vars, &pred_vars))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        for g in &grounded {
            for lits in g.iter() {
                if !solver.add_clause(lits) {
                    stats.conflicts += solver.conflict_count();
                    stats.decisions += solver.decision_count();
                    span.note_str("outcome", "unsat_grounding");
                    return SizeOutcome::Unsat;
                }
            }
        }
    }

    let result = match guard {
        Some(g) => solver.solve_guarded(config.max_conflicts, g),
        None => solver.solve_with_budget(config.max_conflicts),
    };
    stats.conflicts += solver.conflict_count();
    stats.decisions += solver.decision_count();
    span.note("decisions", solver.decision_count() as i64);
    span.note("conflicts", solver.conflict_count() as i64);
    match result {
        SatResult::Sat => {
            let pred_domains: Vec<Vec<usize>> = sys
                .rels
                .iter()
                .map(|p| {
                    sys.rels
                        .decl(p)
                        .domain
                        .iter()
                        .map(|s| sizes[s.index()])
                        .collect()
                })
                .collect();
            let mut model = FiniteModel::new(sig, &pred_domains, sizes.to_vec());
            for f in sig.funcs() {
                let d = sig.func(f);
                let dims: Vec<usize> = d.domain.iter().map(|s| sizes[s.index()]).collect();
                for (row, cell) in func_vars[f.index()].iter().enumerate() {
                    let value = cell
                        .iter()
                        .position(|&v| solver.value(v) == Some(true))
                        .expect("exactly-one cell has a true value");
                    let args = unrank(row, &dims);
                    model.set_func(sig, f, &args, value);
                }
            }
            for p in sys.rels.iter() {
                let dims = &pred_domains[p.index()];
                for (row, &v) in pred_vars[p.index()].iter().enumerate() {
                    if solver.value(v) == Some(true) {
                        model.add_pred(p, unrank(row, dims));
                    }
                }
            }
            span.note_str("outcome", "model");
            SizeOutcome::Model(model)
        }
        SatResult::Unsat => {
            span.note_str("outcome", "unsat");
            SizeOutcome::Unsat
        }
        SatResult::Unknown => {
            // `Unknown` is either the conflict budget or a guard trip;
            // the guard's state disambiguates.
            if guard.is_some_and(|g| g.is_cancelled()) {
                span.note_str("outcome", "interrupted");
                SizeOutcome::Interrupted
            } else {
                stats.budget_exhausted += 1;
                span.note_str("outcome", "budget");
                SizeOutcome::Budget
            }
        }
    }
}

/// The ground SAT instances of one flattened clause: literal lists
/// stored back to back in one flat buffer (`ends[i]` is the exclusive
/// end of instance `i`), compact enough to materialize a whole clause's
/// sweep before handing it to the solver.
struct GroundInstances {
    lits: Vec<Lit>,
    ends: Vec<usize>,
}

impl GroundInstances {
    fn iter(&self) -> impl Iterator<Item = &[Lit]> + '_ {
        self.ends.iter().scan(0usize, move |start, &end| {
            let s = *start;
            *start = end;
            Some(&self.lits[s..end])
        })
    }
}

/// Enumerates every variable assignment of one flattened clause and
/// emits the surviving ground instances, in odometer order. Pure: reads
/// only frozen tables, writes only its own buffer — the unit of work
/// the parallel sweep fans out.
fn ground_clause(
    sys: &ChcSystem,
    c: &FlatClause,
    sizes: &[usize],
    func_vars: &[Vec<Vec<Var>>],
    pred_vars: &[Vec<Var>],
) -> GroundInstances {
    let sig = &sys.sig;
    let mut out = GroundInstances {
        lits: Vec::new(),
        ends: Vec::new(),
    };
    let dims: Vec<usize> = c.var_sorts.iter().map(|s| sizes[s.index()]).collect();
    if dims.contains(&0) {
        return out;
    }
    let mut assign = vec![0usize; dims.len()];
    'assignments: loop {
        // Equality literals are decided at grounding time.
        let eq_ok = c.eqs.iter().all(|&(a, b)| assign[a] == assign[b]);
        if eq_ok {
            for (f, args, res) in &c.defs {
                let vals: Vec<usize> = args.iter().map(|&v| assign[v]).collect();
                let row = row_index(sig, *f, &vals, sizes);
                out.lits
                    .push(Lit::neg(func_vars[f.index()][row][assign[*res]]));
            }
            for (p, args) in &c.body {
                let vals: Vec<usize> = args.iter().map(|&v| assign[v]).collect();
                let row = pred_row_index(sys, *p, &vals, sizes);
                out.lits.push(Lit::neg(pred_vars[p.index()][row]));
            }
            if let Some((p, args)) = &c.head {
                let vals: Vec<usize> = args.iter().map(|&v| assign[v]).collect();
                let row = pred_row_index(sys, *p, &vals, sizes);
                out.lits.push(Lit::pos(pred_vars[p.index()][row]));
            }
            out.ends.push(out.lits.len());
        }
        // Odometer.
        let mut i = 0;
        loop {
            if i == assign.len() {
                break 'assignments;
            }
            assign[i] += 1;
            if assign[i] < dims[i] {
                break;
            }
            assign[i] = 0;
            i += 1;
        }
        if assign.iter().all(|&a| a == 0) {
            break;
        }
    }
    out
}

fn row_index(
    sig: &ringen_terms::Signature,
    f: ringen_terms::FuncId,
    args: &[usize],
    sizes: &[usize],
) -> usize {
    let d = sig.func(f);
    let mut idx = 0;
    for (a, s) in args.iter().zip(&d.domain) {
        idx = idx * sizes[s.index()] + a;
    }
    idx
}

fn pred_row_index(
    sys: &ChcSystem,
    p: ringen_chc::PredId,
    args: &[usize],
    sizes: &[usize],
) -> usize {
    let d = sys.rels.decl(p);
    let mut idx = 0;
    for (a, s) in args.iter().zip(&d.domain) {
        idx = idx * sizes[s.index()] + a;
    }
    idx
}

/// Inverse of the row-major ranking.
fn unrank(mut row: usize, dims: &[usize]) -> Vec<usize> {
    let mut out = vec![0; dims.len()];
    for i in (0..dims.len()).rev() {
        out[i] = row % dims[i];
        row /= dims[i];
    }
    out
}

/// Convenience: whether the signature has any non-constructor function
/// symbols (the EUF reduction keeps constructors as free symbols, so this
/// is informational only).
pub fn has_free_symbols(sys: &ChcSystem) -> bool {
    sys.sig
        .funcs()
        .any(|f| sys.sig.func(f).kind == FuncKind::Free)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::SystemBuilder;
    use ringen_terms::Term;

    fn even_system() -> ChcSystem {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        let even = b.pred("even", vec![nat]);
        b.clause(|c| {
            c.head(even, vec![c.app0(z)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(even, vec![c.v(x)]);
            c.head(even, vec![Term::iterate(s, c.v(x), 2)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(even, vec![c.v(x)]);
            c.body(even, vec![c.app(s, vec![c.v(x)])]);
        });
        b.finish()
    }

    #[test]
    fn finds_the_two_element_even_model() {
        let sys = even_system();
        let (outcome, stats) = find_model(&sys, &FinderConfig::default()).unwrap();
        let model = outcome.model().expect("even has a finite model");
        assert_eq!(model.size(), 2, "paper's minimal model has 2 elements");
        assert!(model.satisfies(&sys));
        assert!(stats.vectors_tried >= 1);
        // Z must be even, S(Z) must not.
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let even = sys.rels.by_name("even").unwrap();
        let e0 = model.eval_ground(&sys.sig, &ringen_terms::GroundTerm::leaf(z));
        assert!(model.holds(even, &[e0]));
        let e1 = model.eval_ground(
            &sys.sig,
            &ringen_terms::GroundTerm::iterate(s, ringen_terms::GroundTerm::leaf(z), 1),
        );
        assert!(!model.holds(even, &[e1]));
    }

    #[test]
    fn incdec_needs_three_elements() {
        // The IncDec system of Example 4 / Proposition 4: minimal regular
        // model is mod-3 counting.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        let inc = b.pred("inc", vec![nat, nat]);
        let dec = b.pred("dec", vec![nat, nat]);
        b.clause(|c| {
            c.head(inc, vec![c.app0(z), c.app(s, vec![c.app0(z)])]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            let y = c.var("y", nat);
            c.body(inc, vec![c.v(x), c.v(y)]);
            c.head(inc, vec![c.app(s, vec![c.v(x)]), c.app(s, vec![c.v(y)])]);
        });
        b.clause(|c| {
            c.head(dec, vec![c.app(s, vec![c.app0(z)]), c.app0(z)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            let y = c.var("y", nat);
            c.body(dec, vec![c.v(x), c.v(y)]);
            c.head(dec, vec![c.app(s, vec![c.v(x)]), c.app(s, vec![c.v(y)])]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            let y = c.var("y", nat);
            c.body(inc, vec![c.v(x), c.v(y)]);
            c.body(dec, vec![c.v(x), c.v(y)]);
        });
        let sys = b.finish();
        let (outcome, _) = find_model(&sys, &FinderConfig::default()).unwrap();
        let model = outcome.model().expect("IncDec ∈ Reg (Proposition 4)");
        assert!(model.satisfies(&sys));
        assert!(model.size() >= 3, "no 1- or 2-element model can work");
    }

    #[test]
    fn fo_unsat_system_exhausts() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let _z = b.ctor("Z", vec![], nat);
        let p = b.pred("p", vec![nat]);
        b.clause(|c| {
            let x = c.var("x", nat);
            c.head(p, vec![c.v(x)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(p, vec![c.v(x)]);
        });
        let sys = b.finish();
        let config = FinderConfig {
            max_total_size: 4,
            ..FinderConfig::default()
        };
        let (outcome, stats) = find_model(&sys, &config).unwrap();
        assert!(outcome.model().is_none());
        assert_eq!(stats.vectors_tried, 4);
    }

    #[test]
    fn equality_constraints_restrict_models() {
        // p(x) for all x, query p(Z) with x = Z constraint forces UNSAT
        // at every size.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let p = b.pred("p", vec![nat]);
        b.clause(|c| {
            let x = c.var("x", nat);
            c.head(p, vec![c.v(x)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.eq(c.v(x), c.app0(z));
            c.body(p, vec![c.v(x)]);
        });
        let sys = b.finish();
        let config = FinderConfig {
            max_total_size: 3,
            ..FinderConfig::default()
        };
        let (outcome, _) = find_model(&sys, &config).unwrap();
        assert!(outcome.model().is_none());
    }

    #[test]
    fn multi_sort_sizes_are_searched() {
        // Two sorts; q over B needs 2 elements, Nat can stay at 1.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let bs = b.sort("B");
        let _z = b.ctor("Z", vec![], nat);
        let t = b.ctor("T", vec![], bs);
        let f = b.ctor("F", vec![], bs);
        let q = b.pred("q", vec![bs]);
        b.clause(|c| {
            c.head(q, vec![c.app0(t)]);
        });
        b.clause(|c| {
            c.body(q, vec![c.app0(f)]);
        });
        let sys = b.finish();
        let (outcome, _) = find_model(&sys, &FinderConfig::default()).unwrap();
        let model = outcome.model().expect("needs T ≠ F only");
        assert!(model.satisfies(&sys));
        assert_eq!(model.size(), 3); // 1 (Nat) + 2 (B)
    }

    #[test]
    fn compositions_enumerate_all_vectors() {
        let cs = compositions(4, 2);
        assert_eq!(cs, vec![vec![1, 3], vec![2, 2], vec![3, 1]]);
        assert_eq!(compositions(1, 2), Vec::<Vec<usize>>::new());
        assert_eq!(compositions(3, 3), vec![vec![1, 1, 1]]);
    }

    #[test]
    fn unrank_inverts_row_major() {
        let dims = [2usize, 3, 2];
        for row in 0..12 {
            let t = unrank(row, &dims);
            let mut back = 0;
            for (v, d) in t.iter().zip(&dims) {
                back = back * d + v;
            }
            assert_eq!(back, row);
        }
    }

    #[test]
    fn parallel_sweep_is_identical_at_any_thread_count() {
        // The sharded ground-instance sweep must reproduce the inline
        // result bit for bit: same model, same statistics.
        let sys = even_system();
        let run = |threads: usize| {
            let cfg = FinderConfig {
                parallel: ParallelConfig::with_threads(threads),
                ..FinderConfig::default()
            };
            let (outcome, stats) = find_model(&sys, &cfg).unwrap();
            (outcome.model(), stats)
        };
        let (m1, s1) = run(1);
        for threads in [2usize, 4, 8] {
            let (m, s) = run(threads);
            assert_eq!(m, m1, "threads = {threads}");
            assert_eq!(s, s1, "threads = {threads}");
        }
        assert!(m1.is_some());
    }

    #[test]
    fn parallel_sweep_agrees_on_unsat_and_multi_sort() {
        // UNSAT path (early solver conflict) and a multi-sort grounding
        // both stay deterministic under sharding.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let bs = b.sort("B");
        let _z = b.ctor("Z", vec![], nat);
        let t = b.ctor("T", vec![], bs);
        let q = b.pred("q", vec![bs]);
        b.clause(|c| {
            let x = c.var("x", bs);
            c.head(q, vec![c.v(x)]);
        });
        b.clause(|c| {
            c.body(q, vec![c.app0(t)]);
        });
        let sys = b.finish();
        let run = |threads: usize| {
            let cfg = FinderConfig {
                max_total_size: 4,
                parallel: ParallelConfig::with_threads(threads),
                ..FinderConfig::default()
            };
            let (outcome, stats) = find_model(&sys, &cfg).unwrap();
            (outcome.model().is_some(), stats)
        };
        let base = run(1);
        assert_eq!(run(4), base);
        assert!(!base.0, "q is both total and refuted: no model");
    }

    #[test]
    fn guarded_search_interrupts_and_matches_when_uncancelled() {
        let sys = even_system();
        // Already-tripped guard: no vector is attempted.
        let g = Guard::new();
        g.cancel();
        let (outcome, stats) = find_model_guarded(&sys, &FinderConfig::default(), &g).unwrap();
        assert!(matches!(outcome, FmfOutcome::Interrupted));
        assert_eq!(stats.vectors_tried, 0);
        // Fuel guard: trips mid-search, still reports Interrupted.
        let g = Guard::with_fuel(1);
        let (outcome, _) = find_model_guarded(&sys, &FinderConfig::default(), &g).unwrap();
        assert!(matches!(outcome, FmfOutcome::Interrupted));
        // A live guard changes nothing.
        let g = Guard::new();
        let (outcome, stats) = find_model_guarded(&sys, &FinderConfig::default(), &g).unwrap();
        let (plain, plain_stats) = find_model(&sys, &FinderConfig::default()).unwrap();
        assert_eq!(outcome.model(), plain.model());
        assert_eq!(stats, plain_stats);
    }

    #[test]
    fn symmetry_breaking_preserves_satisfiability() {
        let sys = even_system();
        let plain = FinderConfig {
            symmetry_breaking: false,
            ..FinderConfig::default()
        };
        let (o1, _) = find_model(&sys, &FinderConfig::default()).unwrap();
        let (o2, _) = find_model(&sys, &plain).unwrap();
        let m1 = o1.model().unwrap();
        let m2 = o2.model().unwrap();
        assert_eq!(m1.size(), m2.size());
        assert!(m1.satisfies(&sys) && m2.satisfies(&sys));
    }
}
