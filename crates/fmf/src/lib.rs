//! A MACE-style finite-model finder for CHCs over EUF.
//!
//! This crate stands in for the CVC4 `--finite-model-find` backend used by
//! the original RInGen (§4 of the paper): given an equality-only CHC
//! system whose constructors are treated as *free* function symbols, it
//! searches for a finite first-order model by grounding to SAT, iterating
//! per-sort domain sizes in order of total size. The returned
//! [`FiniteModel`] is exactly the object Theorem 1 converts into a tree
//! automaton.
//!
//! # Example
//!
//! ```
//! use ringen_chc::parse_str;
//! use ringen_fmf::{find_model, FinderConfig, FmfOutcome};
//!
//! let sys = parse_str(r#"
//!   (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
//!   (declare-fun even (Nat) Bool)
//!   (assert (even Z))
//!   (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
//!   (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
//! "#).unwrap();
//! let (outcome, _stats) = find_model(&sys, &FinderConfig::default())?;
//! let model = match outcome { FmfOutcome::Model(m) => m, _ => unreachable!() };
//! assert_eq!(model.size(), 2); // the paper's §4.1 model
//! # Ok::<(), ringen_fmf::FlattenError>(())
//! ```

mod finder;
mod flatten;
mod model;

pub use finder::{
    find_model, find_model_guarded, has_free_symbols, FinderConfig, FinderStats, FmfOutcome,
};
pub use flatten::{flatten_clause, flatten_system, FlatClause, FlatVar, FlattenError};
pub use model::{DisplayModel, FiniteModel};
