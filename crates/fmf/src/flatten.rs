//! Clause flattening: every literal becomes variable-shallow.
//!
//! The MACE-style grounding of §4.1–4.2 needs clauses whose literals are
//! `f(v₁…vₙ) = v`, `v = w`, `P(v₁…vₙ)` (body) or `P(v₁…vₙ)` (head). Deep
//! terms are decomposed by introducing one fresh variable per distinct
//! subterm; the defining equations land in the clause body, which is sound
//! because function symbols denote total functions.
//!
//! Subterm sharing is hash-consed at the flat level: the dedup cache
//! keys on the *shallow* node `(f, flat argument vars)` — the flat var
//! of a subterm plays the role of its pooled id — so probing never
//! clones or re-hashes a deep `Term`.

use rustc_hash::FxHashMap;
use smallvec::SmallVec;
use std::error::Error;
use std::fmt;

use ringen_chc::{ChcSystem, Clause, Constraint, PredId};
use ringen_terms::{FuncId, SortId, Term};

/// Index of a flat variable within its [`FlatClause`].
pub type FlatVar = usize;

/// A clause after flattening. All variable indices refer to
/// [`FlatClause::var_sorts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatClause {
    /// Sort of each flat variable (original clause variables first).
    pub var_sorts: Vec<SortId>,
    /// Function definitions `f(args…) = result` in the body.
    pub defs: Vec<(FuncId, Vec<FlatVar>, FlatVar)>,
    /// Variable equalities `v = w` in the body.
    pub eqs: Vec<(FlatVar, FlatVar)>,
    /// Uninterpreted body atoms.
    pub body: Vec<(PredId, Vec<FlatVar>)>,
    /// The head atom, `None` for queries.
    pub head: Option<(PredId, Vec<FlatVar>)>,
}

impl FlatClause {
    /// Number of flat variables.
    pub fn var_count(&self) -> usize {
        self.var_sorts.len()
    }
}

/// Why a system could not be flattened for model finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlattenError {
    /// A disequality constraint survived preprocessing (§4.4 must run
    /// first).
    Disequality,
    /// A tester constraint survived preprocessing (§4.5 must run first).
    Tester,
}

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlattenError::Disequality => {
                write!(
                    f,
                    "clause contains a disequality; run the diseq transformation first"
                )
            }
            FlattenError::Tester => {
                write!(
                    f,
                    "clause contains a tester; run tester/selector elimination first"
                )
            }
        }
    }
}

impl Error for FlattenError {}

/// Flattens every clause of a system.
///
/// # Errors
///
/// Returns [`FlattenError`] if a clause still carries disequalities or
/// testers.
pub fn flatten_system(sys: &ChcSystem) -> Result<Vec<FlatClause>, FlattenError> {
    sys.clauses.iter().map(|c| flatten_clause(sys, c)).collect()
}

/// Flattens one clause.
///
/// # Errors
///
/// Returns [`FlattenError`] if the clause carries disequalities or testers.
pub fn flatten_clause(sys: &ChcSystem, clause: &Clause) -> Result<FlatClause, FlattenError> {
    let mut fl = Flattener {
        sys,
        out: FlatClause {
            var_sorts: clause
                .vars
                .vars()
                .map(|v| clause.vars.sort(v).expect("var in context"))
                .collect(),
            defs: Vec::new(),
            eqs: Vec::new(),
            body: Vec::new(),
            head: None,
        },
        cache: FxHashMap::default(),
    };
    for k in &clause.constraints {
        match k {
            Constraint::Eq(a, b) => {
                let va = fl.term_var(a);
                let vb = fl.term_var(b);
                fl.out.eqs.push((va, vb));
            }
            Constraint::Neq(..) => return Err(FlattenError::Disequality),
            Constraint::Tester { .. } => return Err(FlattenError::Tester),
        }
    }
    for a in &clause.body {
        let args = a.args.iter().map(|t| fl.term_var(t)).collect();
        fl.out.body.push((a.pred, args));
    }
    if let Some(h) = &clause.head {
        let args = h.args.iter().map(|t| fl.term_var(t)).collect();
        fl.out.head = Some((h.pred, args));
    }
    Ok(fl.out)
}

struct Flattener<'a> {
    sys: &'a ChcSystem,
    out: FlatClause,
    /// Shallow-node dedup: `(f, flat arg vars) → flat var`. Because
    /// argument subterms are flattened first, two deep terms are equal
    /// iff their shallow keys are — the hash-consing invariant.
    cache: FxHashMap<(FuncId, SmallVec<[FlatVar; 4]>), FlatVar>,
}

impl Flattener<'_> {
    /// The flat variable denoting `t`, introducing definitions as needed.
    /// Equal subterms share one variable, keeping the grounding small.
    fn term_var(&mut self, t: &Term) -> FlatVar {
        match t {
            Term::Var(v) => v.index(),
            Term::App(f, args) => {
                let arg_vars: SmallVec<[FlatVar; 4]> =
                    args.iter().map(|a| self.term_var(a)).collect();
                if let Some(&v) = self.cache.get(&(*f, arg_vars.clone())) {
                    return v;
                }
                let sort = self.sys.sig.func(*f).range;
                let fresh = self.out.var_sorts.len();
                self.out.var_sorts.push(sort);
                self.out
                    .defs
                    .push((*f, arg_vars.as_slice().to_vec(), fresh));
                self.cache.insert((*f, arg_vars), fresh);
                fresh
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::SystemBuilder;

    fn even_system() -> ChcSystem {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        let even = b.pred("even", vec![nat]);
        b.clause(|c| {
            c.head(even, vec![c.app0(z)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(even, vec![c.v(x)]);
            c.head(even, vec![Term::iterate(s, c.v(x), 2)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            c.body(even, vec![c.v(x)]);
            c.body(even, vec![c.app(s, vec![c.v(x)])]);
        });
        b.finish()
    }

    #[test]
    fn flattens_deep_head() {
        let sys = even_system();
        let fl = flatten_clause(&sys, &sys.clauses[1]).unwrap();
        // x plus two fresh vars for S(x) and S(S(x)).
        assert_eq!(fl.var_count(), 3);
        assert_eq!(fl.defs.len(), 2);
        assert_eq!(fl.defs[0].1, vec![0]); // S(x) = v1
        assert_eq!(fl.defs[0].2, 1);
        assert_eq!(fl.defs[1].1, vec![1]); // S(v1) = v2
        assert_eq!(fl.head, Some((sys.rels.by_name("even").unwrap(), vec![2])));
    }

    #[test]
    fn shares_repeated_subterms() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let _z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        let p = b.pred("p", vec![nat, nat]);
        b.clause(|c| {
            let x = c.var("x", nat);
            // p(S(x), S(x)): both arguments share the definition.
            c.head(p, vec![c.app(s, vec![c.v(x)]), c.app(s, vec![c.v(x)])]);
        });
        let sys = b.finish();
        let fl = flatten_clause(&sys, &sys.clauses[0]).unwrap();
        assert_eq!(fl.defs.len(), 1);
        assert_eq!(fl.head.as_ref().unwrap().1, vec![1, 1]);
    }

    #[test]
    fn equalities_become_var_pairs() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let _p = b.pred("p", vec![]);
        b.clause(|c| {
            let x = c.var("x", nat);
            c.eq(c.v(x), c.app0(z));
        });
        let sys = b.finish();
        let fl = flatten_clause(&sys, &sys.clauses[0]).unwrap();
        assert_eq!(fl.defs, vec![(z, vec![], 1)]);
        assert_eq!(fl.eqs, vec![(0, 1)]);
        assert!(fl.head.is_none());
    }

    #[test]
    fn rejects_diseq_and_testers() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let _p = b.pred("p", vec![]);
        b.clause(|c| {
            let x = c.var("x", nat);
            c.neq(c.v(x), c.app0(z));
        });
        let sys = b.finish();
        assert_eq!(flatten_system(&sys), Err(FlattenError::Disequality));

        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let _p = b.pred("p", vec![]);
        b.clause(|c| {
            let x = c.var("x", nat);
            c.tester(z, c.v(x), true);
        });
        let sys = b.finish();
        assert_eq!(flatten_system(&sys), Err(FlattenError::Tester));
    }

    #[test]
    fn whole_even_system_flattens() {
        let sys = even_system();
        let fls = flatten_system(&sys).unwrap();
        assert_eq!(fls.len(), 3);
        // Query clause: x, S(x).
        assert_eq!(fls[2].var_count(), 2);
        assert_eq!(fls[2].body.len(), 2);
        assert!(fls[2].head.is_none());
    }
}
