//! Differential property tests: the incremental (shared-solver,
//! assumption-selected) size sweep against the one-shot reference path
//! (`RINGEN_FMF_INCREMENTAL=0`) on random CHC systems.
//!
//! The contract: same verdict on every system, same first-model size
//! vector, same skip decisions — the extracted models may differ only
//! in which (equally minimal, when shrinking) witness they pick, and
//! both must satisfy the system.

use proptest::prelude::*;

use ringen_chc::{ChcSystem, SystemBuilder};
use ringen_fmf::{find_model, FinderConfig, FmfOutcome};
use ringen_terms::Term;

/// A term over one Nat-like sort: `S^iters(base)` where the base is
/// either the constant `Z` or one of the clause's variables.
#[derive(Debug, Clone)]
struct TermDesc {
    base: Option<usize>,
    iters: usize,
}

#[derive(Debug, Clone)]
struct AtomDesc {
    pred: usize,
    args: Vec<TermDesc>,
}

#[derive(Debug, Clone)]
struct ClauseDesc {
    nvars: usize,
    body: Vec<AtomDesc>,
    head: Option<AtomDesc>,
    eq: Option<(TermDesc, TermDesc)>,
}

fn term_desc(nvars: usize) -> impl Strategy<Value = TermDesc> {
    (0..=nvars, 0usize..=2).prop_map(move |(b, iters)| TermDesc {
        base: b.checked_sub(1),
        iters,
    })
}

/// Predicate 0 is unary, predicate 1 binary.
fn atom_desc(nvars: usize) -> impl Strategy<Value = AtomDesc> {
    (0usize..2).prop_flat_map(move |pred| {
        let arity = if pred == 0 { 1 } else { 2 };
        proptest::collection::vec(term_desc(nvars), arity)
            .prop_map(move |args| AtomDesc { pred, args })
    })
}

fn clause_desc() -> impl Strategy<Value = ClauseDesc> {
    (0usize..=2).prop_flat_map(|nvars| {
        (
            proptest::collection::vec(atom_desc(nvars), 0..=2),
            proptest::option::of(atom_desc(nvars)),
            proptest::option::of((term_desc(nvars), term_desc(nvars))),
        )
            .prop_map(move |(body, head, eq)| ClauseDesc {
                nvars,
                body,
                head,
                eq,
            })
    })
}

fn build_system(clauses: &[ClauseDesc]) -> ChcSystem {
    let mut b = SystemBuilder::new();
    let nat = b.sort("Nat");
    let z = b.ctor("Z", vec![], nat);
    let s = b.ctor("S", vec![nat], nat);
    let preds = [b.pred("p", vec![nat]), b.pred("q", vec![nat, nat])];
    for cd in clauses {
        b.clause(|c| {
            let names = ["x0", "x1"];
            let vars: Vec<_> = (0..cd.nvars).map(|i| c.var(names[i], nat)).collect();
            let term = |c: &ringen_chc::ClauseBuilder, t: &TermDesc| -> Term {
                let base = match t.base {
                    Some(i) => c.v(vars[i]),
                    None => c.app0(z),
                };
                Term::iterate(s, base, t.iters)
            };
            for a in &cd.body {
                let args: Vec<Term> = a.args.iter().map(|t| term(c, t)).collect();
                c.body(preds[a.pred], args);
            }
            if let Some(a) = &cd.head {
                let args: Vec<Term> = a.args.iter().map(|t| term(c, t)).collect();
                c.head(preds[a.pred], args);
            }
            if let Some((l, r)) = &cd.eq {
                let tl = term(c, l);
                let tr = term(c, r);
                c.eq(tl, tr);
            }
        });
    }
    b.finish()
}

fn config(incremental: bool, minimize: bool) -> FinderConfig {
    FinderConfig {
        max_total_size: 4,
        incremental,
        minimize,
        ..FinderConfig::default()
    }
}

fn verdict(o: &FmfOutcome) -> &'static str {
    match o {
        FmfOutcome::Model(_) => "model",
        FmfOutcome::Exhausted => "exhausted",
        FmfOutcome::Interrupted => "interrupted",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Incremental and one-shot sweeps answer identically on random
    /// systems, with minimization on (the default configuration).
    #[test]
    fn incremental_matches_one_shot(clauses in proptest::collection::vec(clause_desc(), 1..=5)) {
        let sys = build_system(&clauses);
        let (oi, si) = find_model(&sys, &config(true, true)).unwrap();
        let (oo, so) = find_model(&sys, &config(false, true)).unwrap();
        prop_assert_eq!(verdict(&oi), verdict(&oo));
        prop_assert_eq!(si.vectors_tried, so.vectors_tried);
        prop_assert_eq!(si.skipped_too_large, so.skipped_too_large);
        if let (FmfOutcome::Model(mi), FmfOutcome::Model(mo)) = (oi, oo) {
            prop_assert_eq!(mi.sizes(), mo.sizes());
            prop_assert!(mi.satisfies(&sys));
            prop_assert!(mo.satisfies(&sys));
        }
    }

    /// The agreement is independent of minimization: with shrinking off,
    /// the two paths still reach the same verdict at the same vector.
    #[test]
    fn agreement_survives_minimize_off(clauses in proptest::collection::vec(clause_desc(), 1..=4)) {
        let sys = build_system(&clauses);
        let (oi, si) = find_model(&sys, &config(true, false)).unwrap();
        let (oo, so) = find_model(&sys, &config(false, false)).unwrap();
        prop_assert_eq!(verdict(&oi), verdict(&oo));
        prop_assert_eq!(si.vectors_tried, so.vectors_tried);
        if let (FmfOutcome::Model(mi), FmfOutcome::Model(mo)) = (oi, oo) {
            prop_assert_eq!(mi.sizes(), mo.sizes());
            prop_assert!(mi.satisfies(&sys));
            prop_assert!(mo.satisfies(&sys));
        }
    }

    /// Minimization never changes the verdict or the first-model size
    /// vector — it only shrinks the predicate extension.
    #[test]
    fn minimization_preserves_the_verdict(clauses in proptest::collection::vec(clause_desc(), 1..=4)) {
        let sys = build_system(&clauses);
        let (om, sm) = find_model(&sys, &config(true, true)).unwrap();
        let (or, sr) = find_model(&sys, &config(true, false)).unwrap();
        prop_assert_eq!(verdict(&om), verdict(&or));
        prop_assert_eq!(sm.vectors_tried, sr.vectors_tried);
        if let (FmfOutcome::Model(mm), FmfOutcome::Model(mr)) = (om, or) {
            prop_assert_eq!(mm.sizes(), mr.sizes());
            let atoms = |m: &ringen_fmf::FiniteModel| -> usize {
                sys.rels.iter().map(|p| m.pred_table(p).count()).sum()
            };
            prop_assert!(atoms(&mm) <= atoms(&mr));
            prop_assert!(mm.satisfies(&sys));
        }
    }
}
