//! The end-to-end RInGen solver (Figure 1).
//!
//! `solve` orchestrates: a quick bottom-up refutation attempt (UNSAT with
//! a replayable certificate), then the §4 preprocessing pipeline and the
//! finite-model search (SAT with a regular invariant, re-verified
//! inductive by the decidable check of [`crate::inductive`]). Every
//! budget is a deterministic step count.

use ringen_automata::AutStore;
use ringen_chc::ChcSystem;
use ringen_fmf::{find_model_guarded, FinderConfig, FinderStats, FmfOutcome};
use ringen_parallel::Guard;

use crate::inductive::{check_inductive_guarded, InductiveCheck};
use crate::invariant::RegularInvariant;
use crate::preprocess::{preprocess, PreprocessStats, Preprocessed};
use crate::saturation::{
    check_refutation, saturate_guarded, Refutation, SaturationConfig, SaturationOutcome,
    SaturationStats,
};

/// Tuning knobs for [`solve`].
#[derive(Debug, Clone)]
pub struct RingenConfig {
    /// Finite-model search budgets.
    pub finder: FinderConfig,
    /// Refuter budgets.
    pub saturation: SaturationConfig,
    /// Re-check SAT invariants with the independent inductiveness
    /// checker (cheap; on by default).
    pub verify_invariants: bool,
    /// Replay UNSAT refutations with the independent checker (cheap; on
    /// by default).
    pub verify_refutations: bool,
}

impl Default for RingenConfig {
    fn default() -> Self {
        RingenConfig {
            finder: FinderConfig::default(),
            saturation: SaturationConfig::default(),
            verify_invariants: true,
            verify_refutations: true,
        }
    }
}

impl RingenConfig {
    /// A small-budget configuration for batch benchmarking: the solver
    /// answers quickly or reports divergence.
    pub fn quick() -> Self {
        RingenConfig {
            finder: FinderConfig {
                max_total_size: 8,
                max_conflicts: 20_000,
                max_ground_instances: 400_000,
                ..FinderConfig::default()
            },
            saturation: SaturationConfig {
                max_facts: 4_000,
                max_rounds: 32,
                max_term_height: 16,
                free_var_candidates: 6,
                max_steps: 400_000,
                ..SaturationConfig::default()
            },
            ..RingenConfig::default()
        }
    }
}

/// A successful SAT answer: the finite model and the regular invariant
/// it induces (Theorem 1), plus the preprocessed system the invariant
/// was verified against.
#[derive(Debug, Clone)]
pub struct SatAnswer {
    /// The regular inductive invariant over all predicates (original and
    /// auxiliary).
    pub invariant: RegularInvariant,
    /// The finite model the invariant was read off.
    pub model: ringen_fmf::FiniteModel,
    /// The constraint-free system of Figure 1.
    pub preprocessed: Preprocessed,
}

/// Why the solver gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Model search exhausted its size/conflict budgets. The system may
    /// still have a larger finite model, or only infinite ones (finite
    /// model existence is semidecidable, §9).
    ModelSearchExhausted,
    /// The input could not be reduced to EUF (internal error; the
    /// preprocessing pipeline should prevent this).
    NotReducible(String),
}

/// The solver's verdict.
#[derive(Debug, Clone)]
pub enum Answer {
    /// Satisfiable: the program is safe; here is a regular invariant.
    Sat(Box<SatAnswer>),
    /// Unsatisfiable: here is a ground derivation of ⊥.
    Unsat(Refutation),
    /// Budgets exhausted (the paper's "timeout").
    Unknown(Divergence),
    /// The run was cancelled by its [`Guard`] (deadline or explicit
    /// cancel) before reaching a verdict. [`SolveStats`] still carries
    /// the partial statistics of the phases that ran.
    Interrupted,
}

impl Answer {
    /// `true` for [`Answer::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Answer::Sat(_))
    }

    /// `true` for [`Answer::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, Answer::Unsat(_))
    }

    /// `true` for [`Answer::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, Answer::Unknown(_))
    }

    /// `true` for [`Answer::Interrupted`].
    pub fn is_interrupted(&self) -> bool {
        matches!(self, Answer::Interrupted)
    }
}

/// Cost accounting for a [`solve`] run.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Preprocessing statistics.
    pub preprocess: Option<PreprocessStats>,
    /// Refuter statistics.
    pub saturation: Option<SaturationStats>,
    /// Model-finder statistics.
    pub finder: Option<FinderStats>,
    /// Sum of sort cardinalities of the found model (Figure 6's x-axis).
    pub model_size: Option<usize>,
}

/// Solves a CHC system over ADTs: SAT with a regular invariant, UNSAT
/// with a refutation, or Unknown when budgets run out.
///
/// # Panics
///
/// Panics if `sys` is not well-sorted, if a verified invariant fails its
/// own inductiveness check, or if a refutation fails to replay — all
/// three indicate bugs, not user errors.
pub fn solve(sys: &ChcSystem, cfg: &RingenConfig) -> (Answer, SolveStats) {
    let mut store = AutStore::new();
    solve_with_store(sys, cfg, &mut store)
}

/// [`solve`] against a caller-owned [`AutStore`]: the invariant
/// verification (and any future automaton work of the pipeline) routes
/// through the store's memo tables, so an outer loop — a portfolio, a
/// CEGAR driver, the CLI solving one file — pays each automaton
/// fixpoint once across all its `solve` calls.
///
/// # Panics
///
/// Same conditions as [`solve`].
pub fn solve_with_store(
    sys: &ChcSystem,
    cfg: &RingenConfig,
    store: &mut AutStore,
) -> (Answer, SolveStats) {
    solve_guarded(sys, cfg, store, &Guard::new())
}

/// [`solve_with_store`] with cooperative cancellation: the guard is
/// threaded into every long-running phase (refuter rounds, SAT search,
/// automaton fixpoints, inductiveness sweep). A trip — deadline or
/// explicit [`Guard::cancel`] — yields [`Answer::Interrupted`] with the
/// statistics of the completed work; the shared `store` and term pool
/// are left consistent, so a later call may resume against them.
///
/// # Panics
///
/// Same conditions as [`solve`].
pub fn solve_guarded(
    sys: &ChcSystem,
    cfg: &RingenConfig,
    store: &mut AutStore,
    guard: &Guard,
) -> (Answer, SolveStats) {
    if let Err(e) = sys.well_sorted() {
        panic!("input system is not well-sorted: {e}");
    }
    let rec = guard.recorder().clone();
    // Lift the store's cache accounting into the counter registry as a
    // delta: a shared store may arrive warm from an earlier solve.
    let store_before = store.stats();
    let (answer, stats) = solve_phases(sys, cfg, store, guard);
    let after = store.stats();
    rec.add(
        "aut.dedup_hits",
        after.dedup_hits.wrapping_sub(store_before.dedup_hits) as i64,
    );
    rec.add(
        "aut.memo_hits",
        after.memo_hits.wrapping_sub(store_before.memo_hits) as i64,
    );
    rec.add(
        "aut.memo_misses",
        after.memo_misses.wrapping_sub(store_before.memo_misses) as i64,
    );
    (answer, stats)
}

fn solve_phases(
    sys: &ChcSystem,
    cfg: &RingenConfig,
    store: &mut AutStore,
    guard: &Guard,
) -> (Answer, SolveStats) {
    let rec = guard.recorder().clone();
    let mut stats = SolveStats::default();

    // Phase 1: cheap refutation attempt on the original clauses.
    let (sat_outcome, sat_stats) = saturate_guarded(sys, &cfg.saturation, guard);
    stats.saturation = Some(sat_stats);
    match sat_outcome {
        SaturationOutcome::Refuted(r) => {
            if cfg.verify_refutations {
                if let Err(e) = check_refutation(sys, &r) {
                    panic!("refuter produced an invalid refutation: {e}");
                }
            }
            return (Answer::Unsat(r), stats);
        }
        SaturationOutcome::Interrupted(_) => return (Answer::Interrupted, stats),
        SaturationOutcome::Saturated(_) | SaturationOutcome::Budget(_) => {}
    }

    // Phase 2: Figure 1 pipeline + finite-model search.
    let pre = {
        let mut span = rec.span("preprocess");
        let pre = preprocess(sys);
        span.note("clauses_in", pre.stats.clauses_in as i64);
        span.note("clauses_out", pre.stats.clauses_out as i64);
        span.note("tester_preds", pre.stats.tester_preds as i64);
        span.note("diseq_preds", pre.stats.diseq_preds as i64);
        pre
    };
    stats.preprocess = Some(pre.stats.clone());
    let (outcome, fstats) = match find_model_guarded(&pre.skolemized, &cfg.finder, guard) {
        Ok(pair) => pair,
        Err(e) => {
            return (
                Answer::Unknown(Divergence::NotReducible(e.to_string())),
                stats,
            )
        }
    };
    stats.finder = Some(fstats);
    match outcome {
        FmfOutcome::Model(model) => {
            stats.model_size = Some(model.size());
            rec.gauge("model_size", model.size() as i64);
            let invariant = RegularInvariant::from_model(&pre.system, &model);
            if cfg.verify_invariants {
                let mut span = rec.span("inductive_check");
                match check_inductive_guarded(&pre.system, &invariant, store, guard) {
                    InductiveCheck::Inductive => span.note_str("outcome", "inductive"),
                    InductiveCheck::Interrupted => {
                        span.note_str("outcome", "interrupted");
                        return (Answer::Interrupted, stats);
                    }
                    InductiveCheck::Violated(v)
                        if sys.clauses.iter().any(|c| !c.exist_vars.is_empty()) =>
                    {
                        // A Skolem witness landed on an unreachable domain
                        // element, so the finite model does not induce a
                        // Herbrand model of the ∀∃ query (see
                        // `preprocess::skolemize`). Honest answer: unknown.
                        let _ = v;
                        span.note_str("outcome", "skolem_miss");
                        return (Answer::Unknown(Divergence::ModelSearchExhausted), stats);
                    }
                    other => panic!("model-derived invariant failed verification: {other:?}"),
                }
            }
            (
                Answer::Sat(Box::new(SatAnswer {
                    invariant,
                    model,
                    preprocessed: pre,
                })),
                stats,
            )
        }
        FmfOutcome::Exhausted => (Answer::Unknown(Divergence::ModelSearchExhausted), stats),
        FmfOutcome::Interrupted => (Answer::Interrupted, stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::parse_str;
    use ringen_terms::GroundTerm;

    #[test]
    fn even_is_sat_with_two_state_invariant() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap();
        let (answer, stats) = solve(&sys, &RingenConfig::default());
        let sat = match answer {
            Answer::Sat(s) => s,
            other => panic!("expected SAT, got {other:?}"),
        };
        assert_eq!(stats.model_size, Some(2));
        let even = sys.rels.by_name("even").unwrap();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        assert!(sat
            .invariant
            .holds(even, &[GroundTerm::iterate(s, GroundTerm::leaf(z), 8)]));
        assert!(!sat
            .invariant
            .holds(even, &[GroundTerm::iterate(s, GroundTerm::leaf(z), 7)]));
    }

    #[test]
    fn unsat_diseq_query_is_refuted() {
        // Example 3: Z ≠ S(Z) → ⊥ is unsatisfiable over ADTs.
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (assert (=> (distinct Z (S Z)) false))
            "#,
        )
        .unwrap();
        let (answer, _) = solve(&sys, &RingenConfig::default());
        assert!(answer.is_unsat(), "got {answer:?}");
    }

    #[test]
    fn quick_config_diverges_on_hard_instances_gracefully() {
        // eq/diseq over Nat: the Diag system has no regular invariant, so
        // model search must exhaust and report Unknown rather than hang.
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun eq (Nat Nat) Bool)
            (declare-fun diseq (Nat Nat) Bool)
            (assert (forall ((x Nat)) (eq x x)))
            (assert (forall ((x Nat)) (diseq (S x) Z)))
            (assert (forall ((y Nat)) (diseq Z (S y))))
            (assert (forall ((x Nat) (y Nat)) (=> (diseq x y) (diseq (S x) (S y)))))
            (assert (forall ((x Nat) (y Nat)) (=> (and (eq x y) (diseq x y)) false)))
            "#,
        )
        .unwrap();
        let (answer, _) = solve(&sys, &RingenConfig::quick());
        assert!(answer.is_unknown(), "Diag must diverge, got {answer:?}");
    }

    #[test]
    fn cancelled_solve_interrupts_and_leaves_the_store_reusable() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap();
        let mut store = AutStore::new();
        // A tripped guard interrupts before any phase runs to completion.
        let g = Guard::new();
        g.cancel();
        let (answer, _) = solve_guarded(&sys, &RingenConfig::default(), &mut store, &g);
        assert!(answer.is_interrupted(), "got {answer:?}");
        // A fuel guard trips mid-run; the answer is still Interrupted and
        // the stats reflect partial work.
        let g = Guard::with_fuel(2);
        let (answer, stats) = solve_guarded(&sys, &RingenConfig::default(), &mut store, &g);
        assert!(answer.is_interrupted(), "got {answer:?}");
        assert!(stats.saturation.is_some());
        // The same store then serves an uncancelled solve normally.
        let (answer, _) = solve_guarded(&sys, &RingenConfig::default(), &mut store, &Guard::new());
        assert!(answer.is_sat(), "got {answer:?}");
    }
}
