//! Executable definability analysis (§6, §7, Appendix A–C).
//!
//! The paper separates three representation classes with pumping lemmas
//! (negative results) and explicit constructions (positive results). This
//! module makes both directions executable:
//!
//! * **Positive `Reg`**: Theorem 1 turns the finite-model search itself
//!   into a complete enumeration of regular invariants by state count —
//!   [`search_regular_invariant`] reports the least one.
//! * **Negative `Reg`**: [`no_regular_invariant_up_to`] certifies that no
//!   model (equivalently, no shared-transition DFTA invariant) of total
//!   size ≤ k exists, the machine-checkable core of `Diag ∉ Reg` and
//!   `LtGt ∉ Reg` (Prop. 11/12 cite Comon et al. for the unbounded
//!   claim).
//! * **Negative `Elem`** (Lemma 6): [`pump`] computes `g[P ← t]` and
//!   [`pumping_refutes_elem`] runs the Prop. 1 argument: the pumped tuple
//!   must stay in any elementary safe invariant, yet together with facts
//!   of the least model it fires a query clause — contradiction.
//!
//! The `SizeElem` pumping lemma (Lemma 7) needs linear-set arithmetic and
//! lives in the `ringen-sizeelem` crate, which builds on these helpers.

use ringen_chc::{ChcSystem, Constraint, PredId};
use ringen_fmf::{find_model, FinderConfig, FmfOutcome};
use ringen_terms::{leaves, replace_all, GroundTerm, Path};

use crate::preprocess::preprocess;
use crate::saturation::Fact;

use rustc_hash::FxHashMap;

/// Result of the bounded regular-invariant search.
#[derive(Debug, Clone)]
pub struct RegSearch {
    /// The least model size at which an invariant was found, if any.
    pub found_at: Option<usize>,
    /// Sizes were exhausted up to this total (inclusive).
    pub exhausted_up_to: usize,
}

/// Searches for a regular invariant with total state count ≤
/// `max_total_size` by running the Figure 1 pipeline. Because model size
/// vectors are enumerated in order of total size, a `found_at = k` answer
/// means *no* smaller regular invariant of this shared-transition shape
/// exists.
pub fn search_regular_invariant(sys: &ChcSystem, max_total_size: usize) -> RegSearch {
    let pre = preprocess(sys);
    let cfg = FinderConfig {
        max_total_size,
        ..FinderConfig::default()
    };
    match find_model(&pre.system, &cfg) {
        Ok((FmfOutcome::Model(m), _)) => RegSearch {
            found_at: Some(m.size()),
            exhausted_up_to: m.size().saturating_sub(1),
        },
        // Interrupted is unreachable here: the unguarded `find_model`
        // never trips, but the match must stay exhaustive.
        Ok((FmfOutcome::Exhausted | FmfOutcome::Interrupted, _)) | Err(_) => RegSearch {
            found_at: None,
            exhausted_up_to: max_total_size,
        },
    }
}

/// Certifies that the system has no regular invariant representable by a
/// finite model of total size ≤ `k` (the bounded, machine-checkable part
/// of the paper's negative `Reg` results).
pub fn no_regular_invariant_up_to(sys: &ChcSystem, k: usize) -> bool {
    search_regular_invariant(sys, k).found_at.is_none()
}

/// The pumping substitution of Lemma 6: replaces the subterms of `g` at
/// every path in `paths` simultaneously by `t`. Returns `None` if a path
/// misses `g`.
pub fn pump(g: &GroundTerm, paths: &[Path], t: &GroundTerm) -> Option<GroundTerm> {
    replace_all(g, paths, t)
}

/// A run of the Prop. 1 pumping argument against elementary
/// definability.
#[derive(Debug, Clone)]
pub struct ElemPumpingRefutation {
    /// The base tuple `⟨g₁,…,gₙ⟩` taken from the least model.
    pub base: Fact,
    /// The pumped component index `i` of Lemma 6.
    pub component: usize,
    /// Paths `P` that were replaced.
    pub paths: Vec<Path>,
    /// The replacement term `t` (height > N for the lemma's `N`).
    pub pumped_with: GroundTerm,
    /// The resulting tuple, which fires a query clause together with
    /// `context` — contradicting safety of any Elem invariant containing
    /// the least model.
    pub pumped: Fact,
    /// Additional least-model facts used to fire the query.
    pub context: Vec<Fact>,
    /// Index of the fired query clause.
    pub query_clause: usize,
}

/// Runs the Prop. 1 argument. `base` must be a least-model fact of
/// `pred` whose `component`-th term has `sort`-leaves deeper than the
/// would-be constant `K`; `pumped_with` plays the lemma's `t`; `context`
/// supplies the other least-model facts a query clause needs.
///
/// Returns a certificate if the pumped tuple (which Lemma 6 forces into
/// every elementary invariant L ⊇ lfp) makes some query clause fire —
/// i.e. L cannot be safe, so no elementary safe invariant exists.
///
/// The check instantiates each query clause with the pumped fact and the
/// context facts in every order and evaluates the ground constraints
/// natively; it is a complete check for the fixed instantiation.
pub fn pumping_refutes_elem(
    sys: &ChcSystem,
    pred: PredId,
    base: &[GroundTerm],
    component: usize,
    sort: ringen_terms::SortId,
    pumped_with: &GroundTerm,
    context: &[Fact],
) -> Option<ElemPumpingRefutation> {
    let g = &base[component];
    let paths = leaves(&sys.sig, g, sort);
    if paths.is_empty() {
        return None;
    }
    let mut pumped_terms = base.to_vec();
    pumped_terms[component] = pump(g, &paths, pumped_with)?;
    let pumped: Fact = (pred, pumped_terms);

    let mut facts: Vec<Fact> = vec![pumped.clone()];
    facts.extend(context.iter().cloned());

    for (ci, clause) in sys.clauses.iter().enumerate() {
        if !clause.is_query() {
            continue;
        }
        if query_fires(sys, ci, &facts) {
            return Some(ElemPumpingRefutation {
                base: (pred, base.to_vec()),
                component,
                paths,
                pumped_with: pumped_with.clone(),
                pumped,
                context: context.to_vec(),
                query_clause: ci,
            });
        }
    }
    None
}

/// Whether query clause `ci` fires given exactly the listed facts.
pub fn query_fires(sys: &ChcSystem, ci: usize, facts: &[Fact]) -> bool {
    let clause = &sys.clauses[ci];
    assert!(clause.is_query(), "clause {ci} is not a query");
    fires_from(sys, ci, 0, &ringen_terms::Substitution::new(), facts)
}

fn fires_from(
    sys: &ChcSystem,
    ci: usize,
    k: usize,
    sub: &ringen_terms::Substitution,
    facts: &[Fact],
) -> bool {
    let clause = &sys.clauses[ci];
    if k == clause.body.len() {
        return ground_constraints_hold(clause, sub);
    }
    let atom = &clause.body[k];
    for (p, args) in facts {
        if *p != atom.pred {
            continue;
        }
        let mut sub2 = sub.clone();
        let ok =
            atom.args.iter().zip(args).all(|(pat, g)| {
                ringen_terms::match_ground_into(&sub2.apply_deep(pat), g, &mut sub2)
            });
        if ok && fires_from(sys, ci, k + 1, &sub2, facts) {
            return true;
        }
    }
    false
}

fn ground_constraints_hold(clause: &ringen_chc::Clause, sub: &ringen_terms::Substitution) -> bool {
    clause.constraints.iter().all(|c| match c {
        Constraint::Eq(a, b) => {
            match (sub.apply_deep(a).to_ground(), sub.apply_deep(b).to_ground()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }
        }
        Constraint::Neq(a, b) => {
            match (sub.apply_deep(a).to_ground(), sub.apply_deep(b).to_ground()) {
                (Some(a), Some(b)) => a != b,
                _ => false,
            }
        }
        Constraint::Tester {
            ctor,
            term,
            positive,
        } => match sub.apply_deep(term).to_ground() {
            Some(g) => (g.func() == *ctor) == *positive,
            None => false,
        },
    })
}

/// Membership oracle backed by bounded saturation: the facts of the
/// least Herbrand model up to the configured budgets. Useful for
/// checking that candidate invariants contain the least model.
#[derive(Debug, Clone)]
pub struct LfpOracle {
    facts: FxHashMap<PredId, Vec<Vec<GroundTerm>>>,
}

impl LfpOracle {
    /// Saturates the system and indexes the derived facts.
    pub fn new(sys: &ChcSystem, cfg: &crate::saturation::SaturationConfig) -> Self {
        use crate::saturation::SaturationOutcome;
        let (outcome, _) = crate::saturation::saturate(sys, cfg);
        let base = match outcome {
            SaturationOutcome::Saturated(b)
            | SaturationOutcome::Budget(b)
            | SaturationOutcome::Interrupted(b) => b,
            SaturationOutcome::Refuted(_) => {
                // Unsat systems have no invariant; an empty oracle is the
                // honest answer.
                return LfpOracle {
                    facts: FxHashMap::default(),
                };
            }
        };
        let mut facts: FxHashMap<PredId, Vec<Vec<GroundTerm>>> = FxHashMap::default();
        for (p, args) in base.ground_facts() {
            facts.entry(p).or_default().push(args);
        }
        LfpOracle { facts }
    }

    /// Whether the tuple was derived (false negatives are possible beyond
    /// the saturation budget; false positives are not).
    pub fn contains(&self, p: PredId, args: &[GroundTerm]) -> bool {
        self.facts
            .get(&p)
            .is_some_and(|v| v.iter().any(|a| a == args))
    }

    /// All derived members of a predicate.
    pub fn members(&self, p: PredId) -> &[Vec<GroundTerm>] {
        self.facts.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::parse_str;

    fn even_system() -> ChcSystem {
        parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat) (y Nat)) (=> (and (even x) (even y) (= y (S x))) false)))
            "#,
        )
        .unwrap()
    }

    #[test]
    fn even_proposition_1() {
        // Prop. 1: pump g = S^{2K}(Z) at its single Nat leaf with the odd
        // term t = S^{2N+1}(Z); the result S^{2K+2N+1}(Z) together with
        // even(S^{2K+2N}(Z)) fires the query.
        let sys = even_system();
        let even = sys.rels.by_name("even").unwrap();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let nat = sys.sig.sort_by_name("Nat").unwrap();
        let k = 4;
        let n = 3;
        let g = GroundTerm::iterate(s, GroundTerm::leaf(z), 2 * k);
        let t = GroundTerm::iterate(s, GroundTerm::leaf(z), 2 * n + 1);
        // Context: even(S^{2K + 2N}(Z)) is in the least model.
        let ctx = vec![(
            even,
            vec![GroundTerm::iterate(s, GroundTerm::leaf(z), 2 * k + 2 * n)],
        )];
        let refutation =
            pumping_refutes_elem(&sys, even, &[g], 0, nat, &t, &ctx).expect("Prop. 1 applies");
        assert_eq!(refutation.paths.len(), 1);
        assert_eq!(refutation.pumped.1[0].height(), 2 * k + 2 * n + 1 + 1);
    }

    #[test]
    fn even_has_a_two_state_regular_invariant() {
        let sys = even_system();
        let found = search_regular_invariant(&sys, 6);
        assert_eq!(found.found_at, Some(2));
    }

    #[test]
    fn lfp_oracle_contains_even_numbers() {
        let sys = even_system();
        let oracle = LfpOracle::new(&sys, &crate::saturation::SaturationConfig::default());
        let even = sys.rels.by_name("even").unwrap();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        for n in 0..6 {
            let t = GroundTerm::iterate(s, GroundTerm::leaf(z), n);
            assert_eq!(oracle.contains(even, &[t]), n % 2 == 0, "n = {n}");
        }
    }
}
