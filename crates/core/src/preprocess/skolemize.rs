//! Skolemization of ∀∃ query clauses for the model finder.
//!
//! The §5 STLC case study needs queries of the shape
//! `∀ū ∃v̄. R(t̄(ū, v̄)) → ⊥`. First-order Skolemization replaces each
//! existential variable `v` by a fresh *free* function symbol applied to
//! the universals, `sk_v(ū)`, preserving satisfiability over EUF — and
//! the MACE-style finder builds tables for free symbols natively.
//!
//! The Herbrand transfer needs one extra check on the way back: the
//! Skolem witnesses the model picks must be *reachable* domain elements
//! (ones denoted by ground terms), otherwise the finite model does not
//! induce a Herbrand model of the ∀∃ clause. [`crate::check_inductive`]
//! performs exactly that check on the un-Skolemized system, so unsound
//! models are rejected rather than trusted.

use ringen_chc::{Atom, ChcSystem, Clause};
use ringen_terms::{FuncId, Substitution, Term};

/// Result of the pass.
#[derive(Debug, Clone)]
pub struct Skolemization {
    /// The purely universal system (existential variables replaced by
    /// Skolem applications). The signature gains one free symbol per
    /// eliminated variable.
    pub system: ChcSystem,
    /// The Skolem symbols introduced.
    pub skolem_funcs: Vec<FuncId>,
}

/// Runs the pass. Clauses without existential variables pass through
/// unchanged.
///
/// # Panics
///
/// Panics if an existential variable occurs in a clause constraint
/// (ruled out by [`ChcSystem::well_sorted`]).
pub fn skolemize(sys: &ChcSystem) -> Skolemization {
    let mut out = ChcSystem::new(sys.sig.clone());
    out.rels = sys.rels.clone();
    let mut skolem_funcs = Vec::new();

    for (ci, clause) in sys.clauses.iter().enumerate() {
        if clause.exist_vars.is_empty() {
            out.clauses.push(clause.clone());
            continue;
        }
        let universals: Vec<_> = clause
            .vars
            .vars()
            .filter(|v| !clause.exist_vars.contains(v))
            .collect();
        let u_sorts: Vec<_> = universals
            .iter()
            .map(|&v| clause.vars.sort(v).expect("var in context"))
            .collect();
        let u_terms: Vec<Term> = universals.iter().map(|&v| Term::var(v)).collect();
        let mut sub = Substitution::new();
        for (k, &v) in clause.exist_vars.iter().enumerate() {
            let sort = clause.vars.sort(v).expect("var in context");
            let name = format!("sk-{ci}-{k}");
            let f = out.sig.add_free(name, u_sorts.clone(), sort);
            skolem_funcs.push(f);
            sub.bind(v, Term::app(f, u_terms.clone()));
        }
        let body: Vec<Atom> = clause
            .body
            .iter()
            .map(|a| Atom::new(a.pred, a.args.iter().map(|t| sub.apply(t)).collect()))
            .collect();
        let head = clause
            .head
            .as_ref()
            .map(|a| Atom::new(a.pred, a.args.iter().map(|t| sub.apply(t)).collect()));
        assert!(
            clause.constraints.is_empty(),
            "existential clauses must be constraint-free before skolemization"
        );
        let mut c = Clause::new(clause.vars.clone(), Vec::new(), body, head);
        c.name = clause.name.clone();
        out.clauses.push(c);
    }

    Skolemization {
        system: out,
        skolem_funcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::SystemBuilder;

    #[test]
    fn existential_query_gets_skolem_functions() {
        // ∀e ∃a. p(e, a) → ⊥.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let _z = b.ctor("Z", vec![], nat);
        let _s = b.ctor("S", vec![nat], nat);
        let p = b.pred("p", vec![nat, nat]);
        b.clause(|c| {
            let e = c.var("e", nat);
            let a = c.var("a", nat);
            c.body(p, vec![c.v(e), c.v(a)]);
        });
        let mut sys = b.finish();
        let a = sys.clauses[0].vars.vars().nth(1).unwrap();
        sys.clauses[0].exist_vars = vec![a];
        assert!(sys.well_sorted().is_ok());

        let sk = skolemize(&sys);
        assert_eq!(sk.skolem_funcs.len(), 1);
        let q = &sk.system.clauses[0];
        assert!(q.exist_vars.is_empty());
        // The second argument is now sk(e).
        let atom = &q.body[0];
        assert!(matches!(&atom.args[1], Term::App(f, _) if *f == sk.skolem_funcs[0]));
        assert!(sk.system.well_sorted().is_ok());
    }

    #[test]
    fn universal_clauses_pass_through() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let _z = b.ctor("Z", vec![], nat);
        let p = b.pred("p", vec![nat]);
        b.clause(|c| {
            let x = c.var("x", nat);
            c.head(p, vec![c.v(x)]);
        });
        let sys = b.finish();
        let sk = skolemize(&sys);
        assert!(sk.skolem_funcs.is_empty());
        assert_eq!(sk.system.clauses.len(), 1);
    }
}
