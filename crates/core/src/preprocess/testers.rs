//! Tester and selector elimination (§4.5).
//!
//! Finite-model finders interpret their input over a completely free
//! domain, which breaks the ADT axioms of testers and selectors. This pass
//! replaces them relationally:
//!
//! * a selector occurrence `sel(t)` (for the `i`-th argument of
//!   constructor `c`) becomes a fresh variable `a` plus a body atom
//!   `sel_c_i(t, a)`, defined by `⊤ → sel_c_i(c(y₁…yₙ), yᵢ)`;
//! * a positive tester `c?(t)` becomes the atom `is_c(t)`, defined by
//!   `⊤ → is_c(c(y₁…yₙ))`;
//! * a negative tester `¬c?(t)` splits the clause, one copy per other
//!   constructor `c'` of the sort, with `is_c'(t)` in the body.

use rustc_hash::FxHashMap;

use ringen_chc::{Atom, ChcSystem, Clause, Constraint, PredId};
use ringen_terms::{FuncId, FuncKind, Term, VarContext};

/// Result of the pass: the rewritten system plus the auxiliary predicates
/// it introduced (`is_c` and `sel_c_i` relations).
#[derive(Debug, Clone)]
pub struct TesterElimination {
    /// The rewritten system (same signature; clauses tester/selector-free).
    pub system: ChcSystem,
    /// Auxiliary predicates introduced by the pass.
    pub aux_preds: Vec<PredId>,
}

/// Runs the pass. The output system contains no [`Constraint::Tester`]
/// and no selector applications inside any term.
pub fn eliminate_testers_and_selectors(sys: &ChcSystem) -> TesterElimination {
    let mut out = ChcSystem::new(sys.sig.clone());
    out.rels = sys.rels.clone();
    let mut aux = AuxPreds {
        testers: FxHashMap::default(),
        selectors: FxHashMap::default(),
        aux_list: Vec::new(),
    };

    for clause in &sys.clauses {
        // Phase 1: remove selector applications from all terms.
        let mut vars = clause.vars.clone();
        let mut extra_atoms: Vec<Atom> = Vec::new();
        let strip =
            |t: &Term,
             vars: &mut VarContext,
             extra: &mut Vec<Atom>,
             aux: &mut AuxPreds,
             out: &mut ChcSystem| { strip_selectors(sys, t, vars, extra, aux, out) };
        let mut constraints = Vec::new();
        let mut split_testers: Vec<(Term, FuncId)> = Vec::new(); // negative testers
        for k in &clause.constraints {
            match k {
                Constraint::Eq(a, b) => {
                    let a = strip(a, &mut vars, &mut extra_atoms, &mut aux, &mut out);
                    let b = strip(b, &mut vars, &mut extra_atoms, &mut aux, &mut out);
                    constraints.push(Constraint::Eq(a, b));
                }
                Constraint::Neq(a, b) => {
                    let a = strip(a, &mut vars, &mut extra_atoms, &mut aux, &mut out);
                    let b = strip(b, &mut vars, &mut extra_atoms, &mut aux, &mut out);
                    constraints.push(Constraint::Neq(a, b));
                }
                Constraint::Tester {
                    ctor,
                    term,
                    positive,
                } => {
                    let t = strip(term, &mut vars, &mut extra_atoms, &mut aux, &mut out);
                    if *positive {
                        let p = aux.tester_pred(sys, &mut out, *ctor);
                        extra_atoms.push(Atom::new(p, vec![t]));
                    } else {
                        split_testers.push((t, *ctor));
                    }
                }
            }
        }
        let mut body: Vec<Atom> = Vec::new();
        for a in &clause.body {
            let args = a
                .args
                .iter()
                .map(|t| strip(t, &mut vars, &mut extra_atoms, &mut aux, &mut out))
                .collect();
            body.push(Atom::new(a.pred, args));
        }
        body.extend(extra_atoms);
        let head = clause.head.as_ref().map(|h| {
            let args = h
                .args
                .iter()
                .map(|t| strip(t, &mut vars, &mut body, &mut aux, &mut out))
                .collect();
            Atom::new(h.pred, args)
        });

        // Phase 2: expand negative testers into one clause per other
        // constructor.
        let mut variants: Vec<Vec<Atom>> = vec![Vec::new()];
        for (t, ctor) in &split_testers {
            let sort = sys.sig.func(*ctor).range;
            let others: Vec<FuncId> = sys
                .sig
                .constructors_of(sort)
                .iter()
                .copied()
                .filter(|c| c != ctor)
                .collect();
            let mut next = Vec::new();
            for prefix in &variants {
                for c in &others {
                    let p = aux.tester_pred(sys, &mut out, *c);
                    let mut row = prefix.clone();
                    row.push(Atom::new(p, vec![t.clone()]));
                    next.push(row);
                }
            }
            variants = next;
        }
        for extra in variants {
            let mut full_body = body.clone();
            full_body.extend(extra);
            let mut c = Clause::new(vars.clone(), constraints.clone(), full_body, head.clone());
            c.exist_vars = clause.exist_vars.clone();
            c.name = clause.name.clone();
            out.clauses.push(c);
        }
    }
    TesterElimination {
        system: out,
        aux_preds: aux.aux_list,
    }
}

struct AuxPreds {
    testers: FxHashMap<FuncId, PredId>,
    selectors: FxHashMap<FuncId, PredId>,
    aux_list: Vec<PredId>,
}

impl AuxPreds {
    /// The `is_c` predicate, with its defining clause, created on demand.
    fn tester_pred(&mut self, sys: &ChcSystem, out: &mut ChcSystem, ctor: FuncId) -> PredId {
        if let Some(&p) = self.testers.get(&ctor) {
            return p;
        }
        let decl = sys.sig.func(ctor).clone();
        let p = out.rels.add(format!("is-{}", decl.name), vec![decl.range]);
        self.testers.insert(ctor, p);
        self.aux_list.push(p);
        // ⊤ → is_c(c(y₁…yₙ))
        let mut vars = VarContext::new();
        let args: Vec<Term> = decl
            .domain
            .iter()
            .enumerate()
            .map(|(i, s)| Term::var(vars.fresh(format!("y{i}"), *s)))
            .collect();
        let head = Atom::new(p, vec![Term::app(ctor, args)]);
        out.clauses.push(
            Clause::new(vars, vec![], vec![], Some(head)).named(format!("def-is-{}", decl.name)),
        );
        p
    }

    /// The `sel_c_i` predicate for a selector symbol, with its defining
    /// clause, created on demand.
    fn selector_pred(&mut self, sys: &ChcSystem, out: &mut ChcSystem, sel: FuncId) -> PredId {
        if let Some(&p) = self.selectors.get(&sel) {
            return p;
        }
        let decl = sys.sig.func(sel).clone();
        let FuncKind::Selector { ctor, index } = decl.kind else {
            panic!("selector_pred on non-selector");
        };
        let p = out.rels.add(
            format!("sel-{}", decl.name),
            vec![decl.domain[0], decl.range],
        );
        self.selectors.insert(sel, p);
        self.aux_list.push(p);
        // ⊤ → sel_c_i(c(y₁…yₙ), yᵢ)
        let cdecl = sys.sig.func(ctor).clone();
        let mut vars = VarContext::new();
        let ys: Vec<Term> = cdecl
            .domain
            .iter()
            .enumerate()
            .map(|(i, s)| Term::var(vars.fresh(format!("y{i}"), *s)))
            .collect();
        let head = Atom::new(p, vec![Term::app(ctor, ys.clone()), ys[index].clone()]);
        out.clauses.push(
            Clause::new(vars, vec![], vec![], Some(head)).named(format!("def-sel-{}", decl.name)),
        );
        p
    }
}

/// Rewrites a term bottom-up, replacing each selector application with a
/// fresh variable constrained by a `sel_c_i` body atom.
fn strip_selectors(
    sys: &ChcSystem,
    t: &Term,
    vars: &mut VarContext,
    extra: &mut Vec<Atom>,
    aux: &mut AuxPreds,
    out: &mut ChcSystem,
) -> Term {
    match t {
        Term::Var(v) => Term::var(*v),
        Term::App(f, args) => {
            let new_args: Vec<Term> = args
                .iter()
                .map(|a| strip_selectors(sys, a, vars, extra, aux, out))
                .collect();
            if matches!(sys.sig.func(*f).kind, FuncKind::Selector { .. }) {
                let p = aux.selector_pred(sys, out, *f);
                let result_sort = sys.sig.func(*f).range;
                let fresh = vars.fresh_anon(result_sort);
                extra.push(Atom::new(p, vec![new_args[0].clone(), Term::var(fresh)]));
                Term::var(fresh)
            } else {
                Term::app(*f, new_args)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::SystemBuilder;

    /// Nat with a selector and a couple of test clauses.
    fn nat_with_selector() -> (ChcSystem, FuncId, FuncId, FuncId) {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        let pre = b.selector("pre", s, 0);
        let _p = b.pred("p", vec![nat]);
        (b.finish(), z, s, pre)
    }

    #[test]
    fn positive_tester_becomes_atom_with_rule() {
        let (mut sys, _z, s, _pre) = nat_with_selector();
        let p = sys.rels.by_name("p").unwrap();
        let mut vars = VarContext::new();
        let nat = sys.sig.sort_by_name("Nat").unwrap();
        let x = vars.fresh("x", nat);
        sys.clauses.push(Clause::new(
            vars,
            vec![Constraint::Tester {
                ctor: s,
                term: Term::var(x),
                positive: true,
            }],
            vec![],
            Some(Atom::new(p, vec![Term::var(x)])),
        ));
        let res = eliminate_testers_and_selectors(&sys);
        assert!(!res.system.has_testers_or_selectors());
        assert!(res.system.well_sorted().is_ok());
        assert_eq!(res.aux_preds.len(), 1);
        let is_s = res.system.rels.by_name("is-S").unwrap();
        // The rewritten clause has is-S(x) in the body; the defining rule
        // ⊤ → is-S(S(y0)) exists.
        let main = res
            .system
            .clauses
            .iter()
            .find(|c| c.head.as_ref().is_some_and(|h| h.pred == p))
            .unwrap();
        assert!(main.body.iter().any(|a| a.pred == is_s));
        assert!(res
            .system
            .clauses
            .iter()
            .any(|c| c.head.as_ref().is_some_and(|h| h.pred == is_s) && c.body.is_empty()));
    }

    #[test]
    fn negative_tester_splits_per_constructor() {
        let (mut sys, _z, s, _pre) = nat_with_selector();
        let p = sys.rels.by_name("p").unwrap();
        let nat = sys.sig.sort_by_name("Nat").unwrap();
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        sys.clauses.push(Clause::new(
            vars,
            vec![Constraint::Tester {
                ctor: s,
                term: Term::var(x),
                positive: false,
            }],
            vec![],
            Some(Atom::new(p, vec![Term::var(x)])),
        ));
        let res = eliminate_testers_and_selectors(&sys);
        // ¬S?(x) ⇒ is-Z(x): one variant (Nat has two constructors).
        let mains: Vec<_> = res
            .system
            .clauses
            .iter()
            .filter(|c| c.head.as_ref().is_some_and(|h| h.pred == p))
            .collect();
        assert_eq!(mains.len(), 1);
        let is_z = res.system.rels.by_name("is-Z").unwrap();
        assert!(mains[0].body.iter().any(|a| a.pred == is_z));
    }

    #[test]
    fn selector_in_constraint_is_relationalized() {
        // The paper's example: ¬(car(x) = cdr(y)) → P(x, y) becomes
        // car(x,a) ∧ cdr(y,b) ∧ ¬(a = b) → P(x,y). Here with `pre`.
        let (mut sys, z, _s, pre) = nat_with_selector();
        let p = sys.rels.by_name("p").unwrap();
        let nat = sys.sig.sort_by_name("Nat").unwrap();
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        sys.clauses.push(Clause::new(
            vars,
            vec![Constraint::Neq(
                Term::app(pre, vec![Term::var(x)]),
                Term::leaf(z),
            )],
            vec![],
            Some(Atom::new(p, vec![Term::var(x)])),
        ));
        let res = eliminate_testers_and_selectors(&sys);
        assert!(!res.system.has_testers_or_selectors());
        assert!(res.system.well_sorted().is_ok());
        let main = res
            .system
            .clauses
            .iter()
            .find(|c| c.head.as_ref().is_some_and(|h| h.pred == p))
            .unwrap();
        // Constraint is now between the fresh variable and Z.
        assert!(matches!(
            &main.constraints[0],
            Constraint::Neq(Term::Var(_), t) if *t == Term::leaf(z)
        ));
        let sel = res.system.rels.by_name("sel-pre").unwrap();
        assert!(main.body.iter().any(|a| a.pred == sel));
        // Defining rule: head sel-pre(S(y0), y0).
        let def = res
            .system
            .clauses
            .iter()
            .find(|c| c.head.as_ref().is_some_and(|h| h.pred == sel))
            .unwrap();
        let head = def.head.as_ref().unwrap();
        assert_eq!(head.args[1], Term::Var(ringen_terms::VarId(0)));
    }

    #[test]
    fn nested_selectors_unfold_bottom_up() {
        let (mut sys, z, _s, pre) = nat_with_selector();
        let p = sys.rels.by_name("p").unwrap();
        let nat = sys.sig.sort_by_name("Nat").unwrap();
        let mut vars = VarContext::new();
        let x = vars.fresh("x", nat);
        // pre(pre(x)) = Z
        sys.clauses.push(Clause::new(
            vars,
            vec![Constraint::Eq(
                Term::app(pre, vec![Term::app(pre, vec![Term::var(x)])]),
                Term::leaf(z),
            )],
            vec![],
            Some(Atom::new(p, vec![Term::var(x)])),
        ));
        let res = eliminate_testers_and_selectors(&sys);
        let main = res
            .system
            .clauses
            .iter()
            .find(|c| c.head.as_ref().is_some_and(|h| h.pred == p))
            .unwrap();
        let sel = res.system.rels.by_name("sel-pre").unwrap();
        assert_eq!(main.body.iter().filter(|a| a.pred == sel).count(), 2);
        assert!(res.system.well_sorted().is_ok());
    }

    #[test]
    fn clean_systems_pass_through() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let p = b.pred("p", vec![nat]);
        b.clause(|c| {
            c.head(p, vec![c.app0(z)]);
        });
        let sys = b.finish();
        let res = eliminate_testers_and_selectors(&sys);
        assert_eq!(res.system.clauses.len(), 1);
        assert!(res.aux_preds.is_empty());
    }
}
