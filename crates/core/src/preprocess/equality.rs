//! Positive-equality elimination (the normalization step in the proof of
//! Theorem 5).
//!
//! Over the Herbrand structure an equality `t = u` between terms with
//! universally quantified variables is satisfiable iff `t` and `u` are
//! unifiable, and then it is equivalent to applying their most general
//! unifier to the rest of the clause. This pass
//!
//! * unifies all `Eq` constraints of each clause and substitutes the mgu
//!   through body, head and remaining constraints;
//! * drops clauses whose equalities are ununifiable (they are vacuously
//!   true);
//! * garbage-collects unused clause variables, which keeps the model
//!   finder's grounding small.
//!
//! Combined with §4.4 (`diseq`) and §4.5 (testers/selectors) this leaves
//! every clause with an empty constraint (`φ = ⊤`), the shape required by
//! Lemma 2.

use std::collections::BTreeMap;

use ringen_chc::{Atom, ChcSystem, Clause, Constraint};
use ringen_terms::{unify_all, Substitution, Term, VarContext, VarId};

/// Statistics from [`eliminate_equalities`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EqualityStats {
    /// Clauses removed because their equalities were ununifiable.
    pub vacuous_clauses: usize,
    /// Equality literals eliminated.
    pub equalities_eliminated: usize,
    /// Variables garbage-collected.
    pub vars_removed: usize,
}

/// Runs the pass. The output system contains no [`Constraint::Eq`].
pub fn eliminate_equalities(sys: &ChcSystem) -> (ChcSystem, EqualityStats) {
    let mut out = ChcSystem::new(sys.sig.clone());
    out.rels = sys.rels.clone();
    let mut stats = EqualityStats::default();

    for clause in &sys.clauses {
        let mut eqs = Vec::new();
        let mut rest = Vec::new();
        for k in &clause.constraints {
            match k {
                Constraint::Eq(a, b) => eqs.push((a.clone(), b.clone())),
                other => rest.push(other.clone()),
            }
        }
        stats.equalities_eliminated += eqs.len();
        let mgu = match unify_all(eqs) {
            Ok(s) => s,
            Err(_) => {
                // Unsatisfiable constraint: the clause holds vacuously.
                stats.vacuous_clauses += 1;
                continue;
            }
        };
        let constraints: Vec<Constraint> = rest.iter().map(|k| apply_deep_k(k, &mgu)).collect();
        let body: Vec<Atom> = clause
            .body
            .iter()
            .map(|a| apply_deep_atom(a, &mgu))
            .collect();
        let head = clause.head.as_ref().map(|a| apply_deep_atom(a, &mgu));

        let (vars, rename, removed) = compact_vars(&clause.vars, &constraints, &body, &head);
        stats.vars_removed += removed;
        let constraints = constraints.iter().map(|k| rename_k(k, &rename)).collect();
        let body = body.iter().map(|a| rename_atom(a, &rename)).collect();
        let head = head.as_ref().map(|a| rename_atom(a, &rename));

        let mut c = Clause::new(vars, constraints, body, head);
        c.name = clause.name.clone();
        c.exist_vars = clause
            .exist_vars
            .iter()
            .filter_map(|v| rename.get(v).copied())
            .collect();
        out.clauses.push(c);
    }

    (out, stats)
}

fn apply_deep_atom(a: &Atom, sub: &Substitution) -> Atom {
    Atom::new(a.pred, a.args.iter().map(|t| sub.apply_deep(t)).collect())
}

fn apply_deep_k(k: &Constraint, sub: &Substitution) -> Constraint {
    match k {
        Constraint::Eq(a, b) => Constraint::Eq(sub.apply_deep(a), sub.apply_deep(b)),
        Constraint::Neq(a, b) => Constraint::Neq(sub.apply_deep(a), sub.apply_deep(b)),
        Constraint::Tester {
            ctor,
            term,
            positive,
        } => Constraint::Tester {
            ctor: *ctor,
            term: sub.apply_deep(term),
            positive: *positive,
        },
    }
}

fn rename_atom(a: &Atom, map: &BTreeMap<VarId, VarId>) -> Atom {
    Atom::new(a.pred, a.args.iter().map(|t| t.rename(map)).collect())
}

fn rename_k(k: &Constraint, map: &BTreeMap<VarId, VarId>) -> Constraint {
    match k {
        Constraint::Eq(a, b) => Constraint::Eq(a.rename(map), b.rename(map)),
        Constraint::Neq(a, b) => Constraint::Neq(a.rename(map), b.rename(map)),
        Constraint::Tester {
            ctor,
            term,
            positive,
        } => Constraint::Tester {
            ctor: *ctor,
            term: term.rename(map),
            positive: *positive,
        },
    }
}

/// Builds a fresh [`VarContext`] containing only the variables still used
/// by the clause parts, plus the renaming into it.
fn compact_vars(
    old: &VarContext,
    constraints: &[Constraint],
    body: &[Atom],
    head: &Option<Atom>,
) -> (VarContext, BTreeMap<VarId, VarId>, usize) {
    let mut used: Vec<VarId> = Vec::new();
    let mut mark = |t: &Term| {
        for v in t.vars() {
            if !used.contains(&v) {
                used.push(v);
            }
        }
    };
    for k in constraints {
        match k {
            Constraint::Eq(a, b) | Constraint::Neq(a, b) => {
                mark(a);
                mark(b);
            }
            Constraint::Tester { term, .. } => mark(term),
        }
    }
    for a in body.iter().chain(head.iter()) {
        for t in &a.args {
            mark(t);
        }
    }
    used.sort();
    let mut vars = VarContext::new();
    let mut rename = BTreeMap::new();
    for v in &used {
        let sort = old.sort(*v).expect("used var is in context");
        let nv = vars.fresh(old.name(*v).to_string(), sort);
        rename.insert(*v, nv);
    }
    let removed = old.len() - used.len();
    (vars, rename, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::SystemBuilder;

    #[test]
    fn even_system_becomes_constraint_free() {
        // x = Z → even(x); x = S(S(y)) ∧ even(y) → even(x).
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        let even = b.pred("even", vec![nat]);
        b.clause(|c| {
            let x = c.var("x", nat);
            c.eq(c.v(x), c.app0(z));
            c.head(even, vec![c.v(x)]);
        });
        b.clause(|c| {
            let x = c.var("x", nat);
            let y = c.var("y", nat);
            c.eq(c.v(x), c.app(s, vec![c.app(s, vec![c.v(y)])]));
            c.body(even, vec![c.v(y)]);
            c.head(even, vec![c.v(x)]);
        });
        let sys = b.finish();
        let (out, stats) = eliminate_equalities(&sys);
        assert_eq!(stats.equalities_eliminated, 2);
        assert!(out.clauses.iter().all(|c| c.is_constraint_free()));
        assert!(out.well_sorted().is_ok());
        // First clause head arg became the literal Z.
        let h0 = out.clauses[0].head.as_ref().unwrap();
        assert_eq!(h0.args[0], Term::leaf(z));
        // Second clause head arg is S(S(y)); its variable count shrank to 1.
        assert_eq!(out.clauses[1].vars.len(), 1);
    }

    #[test]
    fn clashing_equality_drops_clause() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        b.clause(|c| {
            let x = c.var("x", nat);
            let zt = c.app0(z);
            let st = c.app(s, vec![c.v(x)]);
            c.eq(zt, st);
        });
        let sys = b.finish();
        let (out, stats) = eliminate_equalities(&sys);
        assert_eq!(stats.vacuous_clauses, 1);
        assert!(out.clauses.is_empty());
    }

    #[test]
    fn occurs_check_drops_clause() {
        // x = S(x) is unsatisfiable over finite trees.
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let _z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        b.clause(|c| {
            let x = c.var("x", nat);
            let st = c.app(s, vec![c.v(x)]);
            c.eq(c.v(x), st);
        });
        let sys = b.finish();
        let (out, stats) = eliminate_equalities(&sys);
        assert_eq!(stats.vacuous_clauses, 1);
        assert!(out.clauses.is_empty());
    }

    #[test]
    fn variable_variable_equality_merges() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let _z = b.ctor("Z", vec![], nat);
        let p = b.pred("p", vec![nat, nat]);
        b.clause(|c| {
            let x = c.var("x", nat);
            let y = c.var("y", nat);
            c.eq(c.v(x), c.v(y));
            c.head(p, vec![c.v(x), c.v(y)]);
        });
        let sys = b.finish();
        let (out, _) = eliminate_equalities(&sys);
        let h = out.clauses[0].head.as_ref().unwrap();
        assert_eq!(h.args[0], h.args[1]);
        assert_eq!(out.clauses[0].vars.len(), 1);
    }
}
