//! The preprocessing pipeline of Figure 1.
//!
//! `CHCs over ADTs` → (§4.5 testers/selectors) → (§4.4 disequalities) →
//! (Thm 5 equality elimination) → `CHCs over EUF without ≠, testers and
//! selectors`, the shape the finite-model finder accepts. Theorem 5
//! guarantees that a finite EUF model of the output induces a regular
//! Herbrand model of the input.

pub mod diseq;
pub mod equality;
pub mod skolemize;
pub mod testers;

use ringen_chc::{ChcSystem, PredId};
use ringen_terms::SortId;
use std::collections::BTreeMap;

pub use diseq::{eliminate_disequalities, DiseqElimination};
pub use equality::{eliminate_equalities, EqualityStats};
pub use skolemize::{skolemize, Skolemization};
pub use testers::{eliminate_testers_and_selectors, TesterElimination};

/// Statistics accumulated over the whole pipeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// `is-c` / `sel-c-i` predicates introduced by §4.5.
    pub tester_preds: usize,
    /// `diseqσ` predicates introduced by §4.4.
    pub diseq_preds: usize,
    /// Equality-elimination details.
    pub equality: EqualityStats,
    /// Clause count before/after.
    pub clauses_in: usize,
    /// Clause count after the pipeline.
    pub clauses_out: usize,
}

/// A system ready for finite-model finding, with provenance.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// The constraint-free system over `ℛ ∪ {diseqσ} ∪ {is-c, sel-c-i}`,
    /// with ∀∃ queries intact — the system the inductiveness checker
    /// verifies invariants against.
    pub system: ChcSystem,
    /// The Skolemized (purely universal) version of [`Preprocessed::system`]
    /// that the finite-model finder consumes. Identical to `system` when
    /// no clause has existential variables.
    pub skolemized: ChcSystem,
    /// Skolem functions introduced for ∀∃ queries.
    pub skolem_funcs: Vec<ringen_terms::FuncId>,
    /// Predicates of the original system (ids are stable across passes).
    pub original_preds: Vec<PredId>,
    /// `diseqσ` predicates per sort.
    pub diseq_preds: BTreeMap<SortId, PredId>,
    /// Tester/selector predicates.
    pub tester_preds: Vec<PredId>,
    /// Pipeline statistics.
    pub stats: PreprocessStats,
}

/// Runs the full Figure-1 preprocessing pipeline.
///
/// The output system is constraint-free: every clause is of the Lemma 2
/// shape `R₁(t̄₁) ∧ … ∧ Rₘ(t̄ₘ) → H`.
///
/// # Panics
///
/// Panics if the input system is not well-sorted (callers should check
/// [`ChcSystem::well_sorted`] first) or if a pass produces an ill-sorted
/// system (a bug, guarded here because everything downstream relies on
/// it).
pub fn preprocess(sys: &ChcSystem) -> Preprocessed {
    let original_preds: Vec<PredId> = sys.rels.iter().collect();
    let mut stats = PreprocessStats {
        clauses_in: sys.clauses.len(),
        ..PreprocessStats::default()
    };

    let t = eliminate_testers_and_selectors(sys);
    stats.tester_preds = t.aux_preds.len();

    let d = eliminate_disequalities(&t.system);
    stats.diseq_preds = d.diseq_preds.len();

    let (system, eq_stats) = eliminate_equalities(&d.system);
    stats.equality = eq_stats;
    stats.clauses_out = system.clauses.len();

    debug_assert!(system.clauses.iter().all(|c| c.is_constraint_free()));
    if let Err(e) = system.well_sorted() {
        panic!("preprocessing produced an ill-sorted system: {e}");
    }
    let sk = skolemize(&system);

    Preprocessed {
        system,
        skolemized: sk.system,
        skolem_funcs: sk.skolem_funcs,
        original_preds,
        diseq_preds: d.diseq_preds,
        tester_preds: t.aux_preds,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::parse_str;

    #[test]
    fn even_pipeline_is_identity_modulo_equalities() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap();
        let p = preprocess(&sys);
        assert_eq!(p.stats.diseq_preds, 0);
        assert_eq!(p.stats.tester_preds, 0);
        assert_eq!(p.system.clauses.len(), 3);
        assert!(p.system.clauses.iter().all(|c| c.is_constraint_free()));
    }

    #[test]
    fn diseq_query_gets_rules() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (assert (forall ((x Nat)) (=> (distinct Z (S Z)) false)))
            "#,
        )
        .unwrap();
        let p = preprocess(&sys);
        assert_eq!(p.stats.diseq_preds, 1);
        // Query + 2 top rules + 1 congruence rule.
        assert_eq!(p.system.clauses.len(), 4);
        assert!(p.system.clauses.iter().all(|c| c.is_constraint_free()));
    }
}
