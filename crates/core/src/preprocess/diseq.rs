//! Disequality elimination (§4.4).
//!
//! A finite-model finder searches a completely free domain, so a clause
//! with a disequality constraint `t ≠ u` can be satisfied by collapsing
//! the whole sort to one point — which breaks the Herbrand reading.
//! Following §4.4, every literal `¬(t =σ u)` is replaced by an atom
//! `diseqσ(t, u)` over a fresh uninterpreted symbol, and the defining
//! rules of `diseqσ` are added:
//!
//! * `⊤ → diseqσ(c(x̄), c'(x̄'))` for all distinct constructors `c, c'`;
//! * `diseqσ'(x, y) → diseqσ(c(…, x, …), c(…, y, …))` for every
//!   constructor `c` and argument position (all other positions are
//!   pairwise-distinct fresh variables).
//!
//! Lemma 3: the least Herbrand model of these rules interprets `diseqσ`
//! by true disequality `𝒟σ = {(x, y) | x ≠ y}`, so by Lemma 4 any model
//! of the rewritten system yields a model of the original one.

use std::collections::BTreeMap;

use ringen_chc::{Atom, ChcSystem, Clause, Constraint, PredId};
use ringen_terms::{SortId, Term, VarContext};

/// Result of the §4.4 pass.
#[derive(Debug, Clone)]
pub struct DiseqElimination {
    /// The rewritten system; no clause carries a [`Constraint::Neq`].
    pub system: ChcSystem,
    /// The fresh `diseqσ` predicate for every sort that needed one.
    pub diseq_preds: BTreeMap<SortId, PredId>,
}

/// Runs the pass. Sorts that never occur under a disequality (directly or
/// as a constructor argument of one that does) get no `diseq` predicate,
/// keeping the model search small.
///
/// # Panics
///
/// Panics if a disequality compares terms whose sort cannot be computed
/// (i.e. the input system is not well-sorted).
pub fn eliminate_disequalities(sys: &ChcSystem) -> DiseqElimination {
    let mut out = ChcSystem::new(sys.sig.clone());
    out.rels = sys.rels.clone();

    // Which sorts need a diseq predicate: sorts of Neq literals, closed
    // under constructor argument sorts (the congruence rules recurse).
    let mut needed: Vec<SortId> = Vec::new();
    for clause in &sys.clauses {
        for k in &clause.constraints {
            if let Constraint::Neq(a, _) = k {
                let sort = a
                    .sort(&sys.sig, &clause.vars)
                    .expect("well-sorted disequality");
                if !needed.contains(&sort) {
                    needed.push(sort);
                }
            }
        }
    }
    let mut i = 0;
    while i < needed.len() {
        let sort = needed[i];
        for &c in sys.sig.constructors_of(sort) {
            for &arg in &sys.sig.func(c).domain {
                if !needed.contains(&arg) {
                    needed.push(arg);
                }
            }
        }
        i += 1;
    }
    needed.sort();

    let mut diseq_preds = BTreeMap::new();
    for &sort in &needed {
        let name = format!("diseq-{}", sys.sig.sort(sort).name);
        let p = out.rels.add(name, vec![sort, sort]);
        diseq_preds.insert(sort, p);
    }

    // Rewrite the original clauses.
    for clause in &sys.clauses {
        let mut constraints = Vec::new();
        let mut body = clause.body.clone();
        for k in &clause.constraints {
            match k {
                Constraint::Neq(a, b) => {
                    let sort = a
                        .sort(&sys.sig, &clause.vars)
                        .expect("well-sorted disequality");
                    let p = diseq_preds[&sort];
                    body.push(Atom::new(p, vec![a.clone(), b.clone()]));
                }
                other => constraints.push(other.clone()),
            }
        }
        let mut c = Clause::new(clause.vars.clone(), constraints, body, clause.head.clone());
        c.name = clause.name.clone();
        c.exist_vars = clause.exist_vars.clone();
        out.clauses.push(c);
    }

    // Defining rules.
    for &sort in &needed {
        let p = diseq_preds[&sort];
        let ctors = sys.sig.constructors_of(sort).to_vec();
        // Distinct top constructors (ordered pairs: diseq is not declared
        // symmetric, the rules make it so).
        for &c1 in &ctors {
            for &c2 in &ctors {
                if c1 == c2 {
                    continue;
                }
                let mut vars = VarContext::new();
                let args1: Vec<Term> = sys
                    .sig
                    .func(c1)
                    .domain
                    .iter()
                    .map(|&s| Term::var(vars.fresh_anon(s)))
                    .collect();
                let args2: Vec<Term> = sys
                    .sig
                    .func(c2)
                    .domain
                    .iter()
                    .map(|&s| Term::var(vars.fresh_anon(s)))
                    .collect();
                let head = Atom::new(p, vec![Term::app(c1, args1), Term::app(c2, args2)]);
                out.clauses
                    .push(Clause::new(vars, vec![], vec![], Some(head)).named(format!(
                        "diseq-top-{}-{}",
                        sys.sig.func(c1).name,
                        sys.sig.func(c2).name
                    )));
            }
        }
        // Congruence: a difference at position i propagates upward. All
        // other positions carry pairwise-distinct fresh variables (the
        // conclusion is still a true disequality whatever they are).
        for &c in &ctors {
            let domain = sys.sig.func(c).domain.clone();
            for (i, &arg_sort) in domain.iter().enumerate() {
                let q = diseq_preds[&arg_sort];
                let mut vars = VarContext::new();
                let x = vars.fresh("x", arg_sort);
                let y = vars.fresh("y", arg_sort);
                let args1: Vec<Term> = domain
                    .iter()
                    .enumerate()
                    .map(|(j, &s)| {
                        if j == i {
                            Term::var(x)
                        } else {
                            Term::var(vars.fresh_anon(s))
                        }
                    })
                    .collect();
                let args2: Vec<Term> = domain
                    .iter()
                    .enumerate()
                    .map(|(j, &s)| {
                        if j == i {
                            Term::var(y)
                        } else {
                            Term::var(vars.fresh_anon(s))
                        }
                    })
                    .collect();
                let body = vec![Atom::new(q, vec![Term::var(x), Term::var(y)])];
                let head = Atom::new(p, vec![Term::app(c, args1), Term::app(c, args2)]);
                out.clauses
                    .push(Clause::new(vars, vec![], body, Some(head)).named(format!(
                        "diseq-arg-{}-{}",
                        sys.sig.func(c).name,
                        i
                    )));
            }
        }
    }

    DiseqElimination {
        system: out,
        diseq_preds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::SystemBuilder;

    /// The paper's Example 3 system: `Z ≠ S(Z) → ⊥`.
    fn example3() -> ChcSystem {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let z = b.ctor("Z", vec![], nat);
        let s = b.ctor("S", vec![nat], nat);
        b.clause(|c| {
            let zt = c.app0(z);
            let szt = c.app(s, vec![c.app0(z)]);
            c.neq(zt, szt);
        });
        b.finish()
    }

    #[test]
    fn example3_shape() {
        let sys = example3();
        let res = eliminate_disequalities(&sys);
        assert!(!res.system.has_disequalities());
        assert!(res.system.well_sorted().is_ok());
        // Query + 2 top rules (Z/S, S/Z) + 1 congruence rule (S position 0).
        assert_eq!(res.system.clauses.len(), 4);
        let p = res.diseq_preds.values().next().copied().unwrap();
        let query = res.system.queries().next().unwrap();
        assert_eq!(query.body.len(), 1);
        assert_eq!(query.body[0].pred, p);
    }

    #[test]
    fn untouched_sorts_get_no_diseq() {
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let _z = b.ctor("Z", vec![], nat);
        let bool_sort = b.sort("B");
        let _t = b.ctor("T", vec![], bool_sort);
        let p = b.pred("p", vec![nat]);
        b.clause(|c| {
            let x = c.var("x", nat);
            c.head(p, vec![c.v(x)]);
        });
        let sys = b.finish();
        let res = eliminate_disequalities(&sys);
        assert!(res.diseq_preds.is_empty());
        assert_eq!(res.system.clauses.len(), 1);
    }

    #[test]
    fn nested_sorts_are_closed_over() {
        // diseq over List needs diseq over Nat (element position).
        let mut b = SystemBuilder::new();
        let nat = b.sort("Nat");
        let _z = b.ctor("Z", vec![], nat);
        let _s = b.ctor("S", vec![nat], nat);
        let list = b.sort("List");
        let _nil = b.ctor("nil", vec![], list);
        let _cons = b.ctor("cons", vec![nat, list], list);
        b.clause(|c| {
            let x = c.var("x", list);
            let y = c.var("y", list);
            c.neq(c.v(x), c.v(y));
        });
        let sys = b.finish();
        let res = eliminate_disequalities(&sys);
        assert_eq!(res.diseq_preds.len(), 2);
        assert!(res.system.well_sorted().is_ok());
    }
}
