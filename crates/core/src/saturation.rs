//! Bottom-up saturation: least-model computation and refutations.
//!
//! Finite-model finding only ever proves satisfiability. Unsatisfiability
//! of a CHC system is witnessed by a *ground derivation of ⊥*: a forward
//! chain of clause instances deriving facts until a query clause fires.
//! This module computes the least Herbrand model bottom-up (with
//! deterministic budgets) and, on refutation, returns a replayable
//! [`Refutation`] object that [`check_refutation`] validates from scratch
//! — UNSAT answers are certified, mirroring how SAT answers carry a
//! checkable [`crate::RegularInvariant`].
//!
//! Constraints are evaluated natively on ground terms (`=`, `≠`, testers)
//! so the refuter runs on the *original* system, independent of the
//! preprocessing pipeline it cross-validates.
//!
//! # The interned fact base
//!
//! Every derived term is hash-consed into one [`TermPool`] owned by the
//! [`FactBase`]: facts are `(PredId, args)` with [`TermId`] arguments,
//! the body join matches clause patterns directly against pooled ids
//! (variable bindings are `VarId → TermId` pairs — comparing a bound
//! variable against a candidate subterm is a `u32` compare, never a
//! tree walk), and the fact index is an open-addressing probe table
//! over the fact arena, so a fact is stored exactly once. Derived-term
//! heights come from the pool's memoized table. The boxed
//! [`GroundTerm`] representation only appears at the certificate
//! boundary ([`Refutation`] / [`check_refutation`]), which replays
//! derivations independently of the pool.

use std::error::Error;
use std::fmt;
use std::hash::Hasher;

use ringen_chc::{Atom, ChcSystem, Clause, Constraint, PredId};
use ringen_terms::intern::InternTable;
use ringen_terms::{
    herbrand::terms_by_size, GroundTerm, Substitution, Term, TermId, TermPool, VarId,
};
use rustc_hash::{FxHashMap, FxHashSet, FxHasher};
use smallvec::SmallVec;

/// Budgets for [`saturate`]. All limits are deterministic step counts,
/// never wall time, so results are reproducible.
#[derive(Debug, Clone)]
pub struct SaturationConfig {
    /// Stop after deriving this many facts.
    pub max_facts: usize,
    /// Stop after this many saturation rounds.
    pub max_rounds: usize,
    /// Discard derived facts containing a term higher than this.
    pub max_term_height: usize,
    /// How many candidate ground terms to enumerate per sort when a head
    /// variable is not bound by the body (e.g. `⊤ → p(c(x))`).
    pub free_var_candidates: usize,
    /// Abort after this many body-match attempts.
    pub max_steps: u64,
}

impl Default for SaturationConfig {
    fn default() -> Self {
        SaturationConfig {
            max_facts: 20_000,
            max_rounds: 64,
            max_term_height: 24,
            free_var_candidates: 8,
            max_steps: 2_000_000,
        }
    }
}

/// A ground fact in the boxed certificate representation.
pub type Fact = (PredId, Vec<GroundTerm>);

/// Interned fact arguments: inline up to arity 4, ids into the base's
/// [`TermPool`].
pub type FactArgs = SmallVec<[TermId; 4]>;

/// Interned variable binding of one clause instance.
type Bind = SmallVec<[(VarId, TermId); 8]>;

/// Provenance of a derived fact: (clause index, pooled variable
/// binding, premise fact indices).
type Provenance = (usize, Vec<(VarId, TermId)>, Vec<usize>);

/// One step of a ground derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefStep {
    /// Index of the applied clause in [`ChcSystem::clauses`].
    pub clause: usize,
    /// Ground instantiation of every clause variable.
    pub binding: Vec<(VarId, GroundTerm)>,
    /// Indices (into the step list) of the facts matching the body atoms,
    /// in body order.
    pub premises: Vec<usize>,
    /// The derived fact; `None` for the final ⊥ step of a query clause.
    pub fact: Option<Fact>,
}

/// A ground derivation of ⊥ — the UNSAT certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refutation {
    /// Derivation steps; the last step derives ⊥.
    pub steps: Vec<RefStep>,
}

impl Refutation {
    /// Number of clause applications in the derivation.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the derivation is empty (never true for real refutations).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Fx hash of a fact. Query slices and stored facts go through this one
/// function so probes agree.
#[inline]
fn fact_hash(pred: PredId, args: &[TermId]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(pred.index() as u32);
    for a in args {
        h.write_u32(a.index() as u32);
    }
    h.finish()
}

/// The facts derived by a (partial) saturation, interned end to end.
#[derive(Debug, Clone, Default)]
pub struct FactBase {
    /// Hash-consing pool every fact argument (and subterm) lives in.
    pool: TermPool,
    facts: Vec<(PredId, FactArgs)>,
    /// Open-addressing index over `facts` — the fact arena *is* the
    /// storage; the index holds only `u32` slots.
    table: InternTable,
    by_pred: FxHashMap<PredId, Vec<u32>>,
    /// For each fact: (clause index, binding, premise fact indices).
    provenance: Vec<Provenance>,
}

impl FactBase {
    /// The term pool all fact arguments are interned in.
    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    /// All facts in derivation order, as `(pred, pooled args)`.
    pub fn pooled_facts(&self) -> impl Iterator<Item = (PredId, &[TermId])> + '_ {
        self.facts.iter().map(|(p, args)| (*p, args.as_slice()))
    }

    /// All facts in derivation order, reconstructed as boxed terms.
    pub fn ground_facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.facts
            .iter()
            .map(|(p, args)| (*p, args.iter().map(|a| self.pool.to_ground(*a)).collect()))
    }

    /// The `i`-th derived fact, reconstructed.
    pub fn ground_fact(&self, i: usize) -> Fact {
        let (p, args) = &self.facts[i];
        (*p, args.iter().map(|a| self.pool.to_ground(*a)).collect())
    }

    /// Whether a fact has been derived.
    pub fn contains(&self, fact: &Fact) -> bool {
        let Some(args) = fact
            .1
            .iter()
            .map(|g| self.pool.find_term(g))
            .collect::<Option<FactArgs>>()
        else {
            // A fact whose terms were never interned cannot be present.
            return false;
        };
        self.find(fact.0, &args).is_some()
    }

    /// Index of the interned fact, if derived.
    fn find(&self, pred: PredId, args: &[TermId]) -> Option<u32> {
        self.table.find(fact_hash(pred, args), |i| {
            let (p, a) = &self.facts[i as usize];
            *p == pred && a.as_slice() == args
        })
    }

    /// Pooled argument tuples of one predicate's facts.
    pub fn of_pred(&self, p: PredId) -> impl Iterator<Item = &[TermId]> + '_ {
        self.by_pred
            .get(&p)
            .into_iter()
            .flatten()
            .map(move |&i| self.facts[i as usize].1.as_slice())
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no fact was derived.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    fn insert(
        &mut self,
        pred: PredId,
        args: FactArgs,
        clause: usize,
        binding: Vec<(VarId, TermId)>,
        premises: Vec<usize>,
    ) -> bool {
        let hash = fact_hash(pred, &args);
        let present = self
            .table
            .find(hash, |i| {
                let (p, a) = &self.facts[i as usize];
                *p == pred && *a == args
            })
            .is_some();
        if present {
            return false;
        }
        // `u32::MAX` is the probe table's empty sentinel — reject it
        // (not just overflow) so a full arena cannot corrupt the table.
        let i = u32::try_from(self.facts.len())
            .ok()
            .filter(|i| *i != u32::MAX)
            .expect("fact count fits the id space");
        self.by_pred.entry(pred).or_default().push(i);
        self.facts.push((pred, args));
        self.provenance.push((clause, binding, premises));
        let FactBase { table, facts, .. } = self;
        table.insert_new(hash, i, |v| {
            let (p, a) = &facts[v as usize];
            fact_hash(*p, a)
        });
        true
    }
}

/// Outcome of [`saturate`].
#[derive(Debug, Clone)]
pub enum SaturationOutcome {
    /// A query clause fired: the system is unsatisfiable.
    Refuted(Refutation),
    /// A fixed point was reached below every budget: the fact base *is*
    /// the least Herbrand model restricted to the explored space, and no
    /// query fires in it. (If budgets clipped term heights this is still
    /// only a half-answer; see [`SaturationOutcome::Budget`].)
    Saturated(FactBase),
    /// A budget was exhausted first; facts derived so far are returned.
    Budget(FactBase),
}

/// Statistics from a [`saturate`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaturationStats {
    /// Completed rounds.
    pub rounds: usize,
    /// Facts derived.
    pub facts: usize,
    /// Body-match attempts.
    pub steps: u64,
    /// Distinct terms interned in the fact base's pool.
    pub pooled_terms: usize,
}

/// Computes the least model bottom-up; reports a [`Refutation`] as soon
/// as a query clause fires.
pub fn saturate(sys: &ChcSystem, cfg: &SaturationConfig) -> (SaturationOutcome, SaturationStats) {
    let mut base = FactBase::default();
    let mut stats = SaturationStats::default();
    let mut enum_pool: FxHashMap<ringen_terms::SortId, Vec<GroundTerm>> = FxHashMap::default();
    let mut budget_hit = false;

    for round in 0..cfg.max_rounds {
        stats.rounds = round + 1;
        let before = base.len();
        for (ci, clause) in sys.clauses.iter().enumerate() {
            // A query of the ∀∃ shape (§5) cannot be fired by a finite
            // set of facts; the refuter conservatively skips it.
            if !clause.exist_vars.is_empty() {
                continue;
            }
            if std::env::var_os("RINGEN_SAT_DEBUG").is_some() {
                eprintln!(
                    "round {round} clause {ci} facts={} steps={}",
                    base.len(),
                    stats.steps
                );
            }
            let mut matcher = Matcher {
                sys,
                cfg,
                clause,
                ci,
                base: &mut base,
                enum_pool: &mut enum_pool,
                steps: &mut stats.steps,
                refutation: None,
                budget_hit: &mut budget_hit,
                new_facts: Vec::new(),
                new_index: FxHashSet::default(),
            };
            matcher.run();
            let new_facts = matcher.new_facts;
            if let Some(r) = matcher.refutation {
                stats.facts = base.len();
                stats.pooled_terms = base.pool.len();
                return (SaturationOutcome::Refuted(r), stats);
            }
            for (pred, args, binding, premises) in new_facts {
                base.insert(pred, args, ci, binding.into_vec(), premises);
            }
            if base.len() >= cfg.max_facts || stats.steps >= cfg.max_steps {
                budget_hit = true;
            }
            if budget_hit {
                stats.facts = base.len();
                stats.pooled_terms = base.pool.len();
                return (SaturationOutcome::Budget(base), stats);
            }
        }
        if base.len() == before {
            stats.facts = base.len();
            stats.pooled_terms = base.pool.len();
            return (SaturationOutcome::Saturated(base), stats);
        }
    }
    stats.facts = base.len();
    stats.pooled_terms = base.pool.len();
    (SaturationOutcome::Budget(base), stats)
}

/// Looks up a variable in a pooled binding.
#[inline]
fn bind_get(bind: &Bind, v: VarId) -> Option<TermId> {
    bind.iter().find(|(w, _)| *w == v).map(|(_, id)| *id)
}

/// Matches a clause pattern against an interned ground term, extending
/// `bind`. Repeated variables compare by id — O(1), never a tree walk.
fn match_pooled(pool: &TermPool, pat: &Term, id: TermId, bind: &mut Bind) -> bool {
    match pat {
        Term::Var(v) => match bind_get(bind, *v) {
            Some(bound) => bound == id,
            None => {
                bind.push((*v, id));
                true
            }
        },
        Term::App(f, pats) => {
            if pool.func(id) != *f {
                return false;
            }
            let args = pool.args(id);
            debug_assert_eq!(args.len(), pats.len(), "well-sorted pattern arity");
            // Child ids are copied out so the recursion does not hold
            // the `args` borrow; patterns are clause-authored and
            // shallow, and arity ≤ 4 stays on the stack.
            let args: FactArgs = SmallVec::from_slice(args);
            pats.iter()
                .zip(args)
                .all(|(p, a)| match_pooled(pool, p, a, bind))
        }
    }
}

/// Instantiates a (fully bound) clause term directly into the pool.
/// `None` if a variable is unbound — the caller falls back to the
/// enumeration path.
fn intern_pattern(pool: &mut TermPool, pat: &Term, bind: &Bind) -> Option<TermId> {
    match pat {
        Term::Var(v) => bind_get(bind, *v),
        Term::App(f, pats) => {
            let ids: FactArgs = pats
                .iter()
                .map(|p| intern_pattern(pool, p, bind))
                .collect::<Option<_>>()?;
            Some(pool.intern(*f, &ids))
        }
    }
}

/// Height the instantiated pattern *would* have, without interning
/// anything — so over-budget heads are rejected before they pollute
/// the long-lived pool. `None` if a variable is unbound.
fn pattern_height(pool: &TermPool, pat: &Term, bind: &Bind) -> Option<usize> {
    match pat {
        Term::Var(v) => bind_get(bind, *v).map(|id| pool.height(id)),
        Term::App(_, pats) => {
            let mut max = 0usize;
            for p in pats {
                max = max.max(pattern_height(pool, p, bind)?);
            }
            Some(max + 1)
        }
    }
}

struct Matcher<'a> {
    sys: &'a ChcSystem,
    cfg: &'a SaturationConfig,
    clause: &'a Clause,
    ci: usize,
    base: &'a mut FactBase,
    /// Enumerated candidate terms per sort for unbound head variables.
    enum_pool: &'a mut FxHashMap<ringen_terms::SortId, Vec<GroundTerm>>,
    steps: &'a mut u64,
    refutation: Option<Refutation>,
    budget_hit: &'a mut bool,
    #[allow(clippy::type_complexity)]
    new_facts: Vec<(PredId, FactArgs, Bind, Vec<usize>)>,
    /// Hash index over `new_facts` (the in-round dedup must not scan).
    new_index: FxHashSet<(PredId, FactArgs)>,
}

impl Matcher<'_> {
    fn run(&mut self) {
        self.match_body(0, Bind::new(), Vec::new());
    }

    /// Joins body atoms left to right against the fact base, entirely on
    /// pooled ids: no term is cloned or reconstructed here.
    fn match_body(&mut self, k: usize, bind: Bind, premises: Vec<usize>) {
        if self.refutation.is_some() || *self.budget_hit {
            return;
        }
        if k == self.clause.body.len() {
            self.finish_constraints(bind, premises);
            return;
        }
        let atom = &self.clause.body[k];
        let candidates: Vec<u32> = self
            .base
            .by_pred
            .get(&atom.pred)
            .cloned()
            .unwrap_or_default();
        for fi in candidates {
            *self.steps += 1;
            if *self.steps >= self.cfg.max_steps {
                *self.budget_hit = true;
                return;
            }
            let fi = fi as usize;
            let mut bind2 = bind.clone();
            let ok = {
                let fact_args = &self.base.facts[fi].1;
                atom.args
                    .iter()
                    .zip(fact_args)
                    .all(|(pat, id)| match_pooled(&self.base.pool, pat, *id, &mut bind2))
            };
            if ok {
                let mut premises2 = premises.clone();
                premises2.push(fi);
                self.match_body(k + 1, bind2, premises2);
            }
            if self.refutation.is_some() || *self.budget_hit {
                return;
            }
        }
    }

    /// After the body is matched: the common case — no constraints, all
    /// variables bound — derives the head fact without leaving the
    /// pool; otherwise fall back to the substitution machinery for
    /// constraint folding and free-variable enumeration.
    fn finish_constraints(&mut self, bind: Bind, premises: Vec<usize>) {
        let all_bound = self
            .clause
            .vars
            .vars()
            .all(|v| bind_get(&bind, v).is_some());
        if self.clause.constraints.is_empty() && all_bound {
            self.finish_pooled(bind, premises);
            return;
        }

        // Legacy path. Reconstruct a substitution from the pooled
        // binding; equalities may bind further variables (clauses of
        // the form `x = S(y) ∧ … → …` carry definitions in
        // constraints).
        let mut sub = Substitution::new();
        for (v, id) in &bind {
            sub.bind(*v, self.base.pool.to_term(*id));
        }
        for c in &self.clause.constraints {
            match c {
                Constraint::Eq(a, b) => {
                    let a = sub.apply_deep(a);
                    let b = sub.apply_deep(b);
                    match ringen_terms::unify(&a, &b) {
                        Ok(u) => sub.compose(&u),
                        Err(_) => return,
                    }
                }
                Constraint::Neq(..) | Constraint::Tester { .. } => {}
            }
        }
        // Bind any variable still free with enumerated ground terms.
        let free: Vec<VarId> = self
            .clause
            .vars
            .vars()
            .filter(|&v| !sub.apply_deep(&Term::var(v)).is_ground())
            .collect();
        self.bind_free(&free, 0, sub, premises);
    }

    /// Pooled head derivation: instantiate head arguments directly as
    /// interned ids, check the height budget from the memoized table,
    /// dedup by id tuple.
    fn finish_pooled(&mut self, bind: Bind, premises: Vec<usize>) {
        match &self.clause.head {
            None => {
                // ⊥ derived: reconstruct the transitive premises.
                self.refutation = Some(build_refutation(self.base, self.ci, &bind, premises));
            }
            Some(atom) => {
                // Height check *before* interning: rejected heads must
                // not grow the pool (the old boxed path built a
                // transient term and dropped it).
                for t in &atom.args {
                    match pattern_height(&self.base.pool, t, &bind) {
                        Some(h) if h > self.cfg.max_term_height => return,
                        Some(_) => {}
                        None => return,
                    }
                }
                let args: Option<FactArgs> = atom
                    .args
                    .iter()
                    .map(|t| intern_pattern(&mut self.base.pool, t, &bind))
                    .collect();
                let Some(args) = args else { return };
                let pred = atom.pred;
                if self.base.find(pred, &args).is_none()
                    && !self.new_index.contains(&(pred, args.clone()))
                {
                    if self.base.len() + self.new_facts.len() >= self.cfg.max_facts {
                        *self.budget_hit = true;
                        return;
                    }
                    self.new_index.insert((pred, args.clone()));
                    self.new_facts.push((pred, args, bind, premises));
                }
            }
        }
    }

    fn bind_free(&mut self, free: &[VarId], k: usize, sub: Substitution, premises: Vec<usize>) {
        if self.refutation.is_some() || *self.budget_hit {
            return;
        }
        if k == free.len() {
            self.finish_ground(sub, premises);
            return;
        }
        let v = free[k];
        let sort = self.clause.vars.sort(v).expect("var in context");
        let (sig, limit) = (&self.sys.sig, self.cfg.free_var_candidates);
        let candidates = self
            .enum_pool
            .entry(sort)
            .or_insert_with(|| terms_by_size(sig, sort, limit))
            .clone();
        for t in candidates {
            *self.steps += 1;
            if *self.steps >= self.cfg.max_steps {
                *self.budget_hit = true;
                return;
            }
            let mut sub2 = sub.clone();
            let mut single = Substitution::new();
            single.bind(v, Term::from(&t));
            sub2.compose(&single);
            self.bind_free(free, k + 1, sub2, premises.clone());
            if self.refutation.is_some() || *self.budget_hit {
                return;
            }
        }
    }

    /// End of the legacy path: every variable is ground under `sub`.
    /// Constraints are re-checked groundly, then the binding and head
    /// arguments are interned into the pool.
    fn finish_ground(&mut self, sub: Substitution, premises: Vec<usize>) {
        // Check remaining (now ground) constraints.
        for c in &self.clause.constraints {
            match c {
                Constraint::Eq(a, b) => {
                    // Already folded into the substitution; re-check
                    // groundly for safety.
                    let (Some(a), Some(b)) =
                        (sub.apply_deep(a).to_ground(), sub.apply_deep(b).to_ground())
                    else {
                        return;
                    };
                    if a != b {
                        return;
                    }
                }
                Constraint::Neq(a, b) => {
                    let (Some(a), Some(b)) =
                        (sub.apply_deep(a).to_ground(), sub.apply_deep(b).to_ground())
                    else {
                        return;
                    };
                    if a == b {
                        return;
                    }
                }
                Constraint::Tester {
                    ctor,
                    term,
                    positive,
                } => {
                    let Some(g) = sub.apply_deep(term).to_ground() else {
                        return;
                    };
                    if (g.func() == *ctor) != *positive {
                        return;
                    }
                }
            }
        }
        // Height-check the instantiated head transiently (boxed, then
        // dropped — as the pre-pool code did) before interning the
        // binding into the long-lived pool.
        if let Some(atom) = &self.clause.head {
            for t in &atom.args {
                let Some(g) = sub.apply_deep(t).to_ground() else {
                    return;
                };
                if g.height() > self.cfg.max_term_height {
                    return;
                }
            }
        }
        let binding: Bind = self
            .clause
            .vars
            .vars()
            .filter_map(|v| {
                sub.apply_deep(&Term::var(v))
                    .to_ground()
                    .map(|g| (v, self.base.pool.intern_term(&g)))
            })
            .collect();
        self.finish_pooled(binding, premises);
    }
}

/// Extracts the sub-derivation ending in the ⊥ step, reconstructing
/// boxed terms from the pool at this certificate boundary only.
fn build_refutation(
    base: &FactBase,
    query_clause: usize,
    binding: &Bind,
    premises: Vec<usize>,
) -> Refutation {
    let ground_binding = |b: &[(VarId, TermId)]| -> Vec<(VarId, GroundTerm)> {
        b.iter()
            .map(|(v, id)| (*v, base.pool.to_ground(*id)))
            .collect()
    };
    // Collect all transitively needed facts.
    let mut needed: Vec<usize> = Vec::new();
    let mut stack = premises.clone();
    while let Some(i) = stack.pop() {
        if !needed.contains(&i) {
            needed.push(i);
            stack.extend(base.provenance[i].2.iter().copied());
        }
    }
    needed.sort();
    let renumber: FxHashMap<usize, usize> =
        needed.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    let mut steps: Vec<RefStep> = needed
        .iter()
        .map(|&i| {
            let (clause, binding, prem) = &base.provenance[i];
            RefStep {
                clause: *clause,
                binding: ground_binding(binding),
                premises: prem.iter().map(|p| renumber[p]).collect(),
                fact: Some(base.ground_fact(i)),
            }
        })
        .collect();
    steps.push(RefStep {
        clause: query_clause,
        binding: ground_binding(binding),
        premises: premises.iter().map(|p| renumber[p]).collect(),
        fact: None,
    });
    Refutation { steps }
}

/// Why a refutation failed to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefutationError {
    /// A step references a clause index outside the system.
    BadClause(usize),
    /// The binding does not ground every clause variable.
    UnboundVariable(usize),
    /// A ground constraint of the instantiated clause is false.
    FalseConstraint(usize),
    /// A premise index is out of range or derives the wrong fact.
    BadPremise(usize),
    /// The instantiated head disagrees with the recorded fact.
    WrongFact(usize),
    /// The final step does not apply a query clause.
    NoQuery,
}

impl fmt::Display for RefutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefutationError::BadClause(i) => write!(f, "step {i}: clause index out of range"),
            RefutationError::UnboundVariable(i) => {
                write!(f, "step {i}: binding leaves a clause variable free")
            }
            RefutationError::FalseConstraint(i) => {
                write!(f, "step {i}: instantiated constraint is false")
            }
            RefutationError::BadPremise(i) => write!(f, "step {i}: premise mismatch"),
            RefutationError::WrongFact(i) => {
                write!(f, "step {i}: instantiated head differs from recorded fact")
            }
            RefutationError::NoQuery => write!(f, "final step is not a query clause"),
        }
    }
}

impl Error for RefutationError {}

/// Replays a refutation against the system from scratch. Every UNSAT
/// answer the solver returns has passed this check.
///
/// # Errors
///
/// Returns the first [`RefutationError`] encountered.
pub fn check_refutation(sys: &ChcSystem, r: &Refutation) -> Result<(), RefutationError> {
    let mut derived: Vec<Fact> = Vec::with_capacity(r.steps.len());
    for (si, step) in r.steps.iter().enumerate() {
        let clause = sys
            .clauses
            .get(step.clause)
            .ok_or(RefutationError::BadClause(si))?;
        let bind: FxHashMap<VarId, &GroundTerm> =
            step.binding.iter().map(|(v, g)| (*v, g)).collect();
        let inst = |t: &Term| -> Option<GroundTerm> { instantiate(t, &bind) };
        // Variables may be missing from the binding only if unused.
        for c in &clause.constraints {
            let ok = match c {
                Constraint::Eq(a, b) => {
                    let (a, b) = (inst(a), inst(b));
                    match (a, b) {
                        (Some(a), Some(b)) => a == b,
                        _ => return Err(RefutationError::UnboundVariable(si)),
                    }
                }
                Constraint::Neq(a, b) => {
                    let (a, b) = (inst(a), inst(b));
                    match (a, b) {
                        (Some(a), Some(b)) => a != b,
                        _ => return Err(RefutationError::UnboundVariable(si)),
                    }
                }
                Constraint::Tester {
                    ctor,
                    term,
                    positive,
                } => match inst(term) {
                    Some(g) => (g.func() == *ctor) == *positive,
                    None => return Err(RefutationError::UnboundVariable(si)),
                },
            };
            if !ok {
                return Err(RefutationError::FalseConstraint(si));
            }
        }
        if step.premises.len() != clause.body.len() {
            return Err(RefutationError::BadPremise(si));
        }
        for (atom, &pi) in clause.body.iter().zip(&step.premises) {
            if pi >= si {
                return Err(RefutationError::BadPremise(si));
            }
            let expected =
                instantiate_atom(atom, &bind).ok_or(RefutationError::UnboundVariable(si))?;
            if derived[pi] != expected {
                return Err(RefutationError::BadPremise(si));
            }
        }
        match (&clause.head, &step.fact) {
            (None, None) => {
                if si + 1 != r.steps.len() {
                    return Err(RefutationError::NoQuery);
                }
                return Ok(());
            }
            (Some(atom), Some(fact)) => {
                let expected =
                    instantiate_atom(atom, &bind).ok_or(RefutationError::UnboundVariable(si))?;
                if &expected != fact {
                    return Err(RefutationError::WrongFact(si));
                }
                derived.push(fact.clone());
            }
            _ => return Err(RefutationError::WrongFact(si)),
        }
    }
    Err(RefutationError::NoQuery)
}

fn instantiate(t: &Term, bind: &FxHashMap<VarId, &GroundTerm>) -> Option<GroundTerm> {
    match t {
        Term::Var(v) => bind.get(v).map(|g| (*g).clone()),
        Term::App(f, args) => {
            let args: Option<Vec<GroundTerm>> = args.iter().map(|a| instantiate(a, bind)).collect();
            Some(GroundTerm::app(*f, args?))
        }
    }
}

fn instantiate_atom(atom: &Atom, bind: &FxHashMap<VarId, &GroundTerm>) -> Option<Fact> {
    let args: Option<Vec<GroundTerm>> = atom.args.iter().map(|t| instantiate(t, bind)).collect();
    Some((atom.pred, args?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::parse_str;

    fn unsat_even() -> ChcSystem {
        // even(Z), even(x) → even(S(S(x))), even(S(S(Z))) → ⊥: unsat.
        parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (=> (even (S (S Z))) false))
            "#,
        )
        .unwrap()
    }

    #[test]
    fn refutes_and_replays() {
        let sys = unsat_even();
        let (outcome, _) = saturate(&sys, &SaturationConfig::default());
        let r = match outcome {
            SaturationOutcome::Refuted(r) => r,
            other => panic!("expected refutation, got {other:?}"),
        };
        assert!(check_refutation(&sys, &r).is_ok());
        // Derivation: even(Z), even(S(S(Z))), ⊥.
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn tampered_refutation_is_rejected() {
        let sys = unsat_even();
        let (outcome, _) = saturate(&sys, &SaturationConfig::default());
        let mut r = match outcome {
            SaturationOutcome::Refuted(r) => r,
            other => panic!("expected refutation, got {other:?}"),
        };
        // Point the final step's premise at the wrong fact.
        let last = r.steps.len() - 1;
        r.steps[last].premises[0] = 0;
        assert!(check_refutation(&sys, &r).is_err());
    }

    #[test]
    fn sat_system_saturates_or_budgets() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap();
        let cfg = SaturationConfig {
            max_facts: 50,
            ..SaturationConfig::default()
        };
        let (outcome, stats) = saturate(&sys, &cfg);
        match outcome {
            SaturationOutcome::Budget(base) | SaturationOutcome::Saturated(base) => {
                assert!(!base.is_empty());
                let even = sys.rels.by_name("even").unwrap();
                assert!(base.of_pred(even).count() > 3);
                // Interned facts share subterms: S^{2k}(Z) facts need
                // only one chain of nodes in the pool.
                assert!(base.pool().len() <= 2 * base.len() + 2);
            }
            SaturationOutcome::Refuted(_) => panic!("even system is satisfiable"),
        }
        assert!(stats.steps > 0);
        assert!(stats.pooled_terms > 0);
    }

    #[test]
    fn diseq_constraints_filter_matches() {
        // p(Z), p(x) ∧ x ≠ Z → ⊥ is satisfiable; with p(S(Z)) it's not.
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat) Bool)
            (assert (p Z))
            (assert (p (S Z)))
            (assert (forall ((x Nat)) (=> (and (p x) (distinct x Z)) false)))
            "#,
        )
        .unwrap();
        let (outcome, _) = saturate(&sys, &SaturationConfig::default());
        let r = match outcome {
            SaturationOutcome::Refuted(r) => r,
            other => panic!("expected refutation, got {other:?}"),
        };
        assert!(check_refutation(&sys, &r).is_ok());
    }

    #[test]
    fn fact_base_probes_ground_facts() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            "#,
        )
        .unwrap();
        let cfg = SaturationConfig {
            max_facts: 8,
            ..SaturationConfig::default()
        };
        let (outcome, _) = saturate(&sys, &cfg);
        let base = match outcome {
            SaturationOutcome::Budget(b) | SaturationOutcome::Saturated(b) => b,
            SaturationOutcome::Refuted(_) => panic!("even system is satisfiable"),
        };
        let even = sys.rels.by_name("even").unwrap();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let two = GroundTerm::iterate(s, GroundTerm::leaf(z), 2);
        let one = GroundTerm::iterate(s, GroundTerm::leaf(z), 1);
        assert!(base.contains(&(even, vec![GroundTerm::leaf(z)])));
        assert!(base.contains(&(even, vec![two])));
        assert!(!base.contains(&(even, vec![one])));
        // Boxed and pooled views agree.
        for (i, fact) in base.ground_facts().enumerate() {
            assert_eq!(base.ground_fact(i), fact);
            assert!(base.contains(&fact));
        }
        assert_eq!(base.pooled_facts().count(), base.len());
    }
}
