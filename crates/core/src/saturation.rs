//! Bottom-up saturation: least-model computation and refutations.
//!
//! Finite-model finding only ever proves satisfiability. Unsatisfiability
//! of a CHC system is witnessed by a *ground derivation of ⊥*: a forward
//! chain of clause instances deriving facts until a query clause fires.
//! This module computes the least Herbrand model bottom-up (with
//! deterministic budgets) and, on refutation, returns a replayable
//! [`Refutation`] object that [`check_refutation`] validates from scratch
//! — UNSAT answers are certified, mirroring how SAT answers carry a
//! checkable [`crate::RegularInvariant`].
//!
//! Constraints are evaluated natively on ground terms (`=`, `≠`, testers)
//! so the refuter runs on the *original* system, independent of the
//! preprocessing pipeline it cross-validates.

use std::error::Error;
use std::fmt;

use ringen_chc::{Atom, ChcSystem, Clause, Constraint, PredId};
use ringen_terms::{
    herbrand::terms_by_size, match_ground_into, GroundTerm, Substitution, Term, VarId,
};
use rustc_hash::{FxHashMap, FxHashSet};

/// Budgets for [`saturate`]. All limits are deterministic step counts,
/// never wall time, so results are reproducible.
#[derive(Debug, Clone)]
pub struct SaturationConfig {
    /// Stop after deriving this many facts.
    pub max_facts: usize,
    /// Stop after this many saturation rounds.
    pub max_rounds: usize,
    /// Discard derived facts containing a term higher than this.
    pub max_term_height: usize,
    /// How many candidate ground terms to enumerate per sort when a head
    /// variable is not bound by the body (e.g. `⊤ → p(c(x))`).
    pub free_var_candidates: usize,
    /// Abort after this many body-match attempts.
    pub max_steps: u64,
}

impl Default for SaturationConfig {
    fn default() -> Self {
        SaturationConfig {
            max_facts: 20_000,
            max_rounds: 64,
            max_term_height: 24,
            free_var_candidates: 8,
            max_steps: 2_000_000,
        }
    }
}

/// A derived ground fact.
pub type Fact = (PredId, Vec<GroundTerm>);

/// Provenance of a derived fact: (clause index, variable binding,
/// premise fact indices).
type Provenance = (usize, Vec<(VarId, GroundTerm)>, Vec<usize>);

/// One step of a ground derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefStep {
    /// Index of the applied clause in [`ChcSystem::clauses`].
    pub clause: usize,
    /// Ground instantiation of every clause variable.
    pub binding: Vec<(VarId, GroundTerm)>,
    /// Indices (into the step list) of the facts matching the body atoms,
    /// in body order.
    pub premises: Vec<usize>,
    /// The derived fact; `None` for the final ⊥ step of a query clause.
    pub fact: Option<Fact>,
}

/// A ground derivation of ⊥ — the UNSAT certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refutation {
    /// Derivation steps; the last step derives ⊥.
    pub steps: Vec<RefStep>,
}

impl Refutation {
    /// Number of clause applications in the derivation.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the derivation is empty (never true for real refutations).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The facts derived by a (partial) saturation.
#[derive(Debug, Clone, Default)]
pub struct FactBase {
    facts: Vec<Fact>,
    index: FxHashMap<Fact, usize>,
    by_pred: FxHashMap<PredId, Vec<usize>>,
    /// For each fact: (clause index, binding, premise fact indices).
    provenance: Vec<Provenance>,
}

impl FactBase {
    /// All derived facts, in derivation order.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Whether a fact has been derived.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.index.contains_key(fact)
    }

    /// Facts of one predicate.
    pub fn of_pred(&self, p: PredId) -> impl Iterator<Item = &Fact> + '_ {
        self.by_pred
            .get(&p)
            .into_iter()
            .flatten()
            .map(move |&i| &self.facts[i])
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no fact was derived.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    fn insert(
        &mut self,
        fact: Fact,
        clause: usize,
        binding: Vec<(VarId, GroundTerm)>,
        premises: Vec<usize>,
    ) -> bool {
        if self.index.contains_key(&fact) {
            return false;
        }
        let i = self.facts.len();
        self.index.insert(fact.clone(), i);
        self.by_pred.entry(fact.0).or_default().push(i);
        self.facts.push(fact);
        self.provenance.push((clause, binding, premises));
        true
    }
}

/// Outcome of [`saturate`].
#[derive(Debug, Clone)]
pub enum SaturationOutcome {
    /// A query clause fired: the system is unsatisfiable.
    Refuted(Refutation),
    /// A fixed point was reached below every budget: the fact base *is*
    /// the least Herbrand model restricted to the explored space, and no
    /// query fires in it. (If budgets clipped term heights this is still
    /// only a half-answer; see [`SaturationOutcome::Budget`].)
    Saturated(FactBase),
    /// A budget was exhausted first; facts derived so far are returned.
    Budget(FactBase),
}

/// Statistics from a [`saturate`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaturationStats {
    /// Completed rounds.
    pub rounds: usize,
    /// Facts derived.
    pub facts: usize,
    /// Body-match attempts.
    pub steps: u64,
}

/// Computes the least model bottom-up; reports a [`Refutation`] as soon
/// as a query clause fires.
pub fn saturate(sys: &ChcSystem, cfg: &SaturationConfig) -> (SaturationOutcome, SaturationStats) {
    let mut base = FactBase::default();
    let mut stats = SaturationStats::default();
    let mut pool: FxHashMap<ringen_terms::SortId, Vec<GroundTerm>> = FxHashMap::default();
    let mut budget_hit = false;

    for round in 0..cfg.max_rounds {
        stats.rounds = round + 1;
        let before = base.len();
        for (ci, clause) in sys.clauses.iter().enumerate() {
            // A query of the ∀∃ shape (§5) cannot be fired by a finite
            // set of facts; the refuter conservatively skips it.
            if !clause.exist_vars.is_empty() {
                continue;
            }
            if std::env::var_os("RINGEN_SAT_DEBUG").is_some() {
                eprintln!(
                    "round {round} clause {ci} facts={} steps={}",
                    base.len(),
                    stats.steps
                );
            }
            let mut matcher = Matcher {
                sys,
                cfg,
                clause,
                ci,
                base: &mut base,
                pool: &mut pool,
                steps: &mut stats.steps,
                refutation: None,
                budget_hit: &mut budget_hit,
                new_facts: Vec::new(),
                new_index: FxHashSet::default(),
            };
            matcher.run();
            let new_facts = matcher.new_facts;
            if let Some(r) = matcher.refutation {
                stats.facts = base.len();
                return (SaturationOutcome::Refuted(r), stats);
            }
            for (fact, binding, premises) in new_facts {
                base.insert(fact, ci, binding, premises);
            }
            if base.len() >= cfg.max_facts || stats.steps >= cfg.max_steps {
                budget_hit = true;
            }
            if budget_hit {
                stats.facts = base.len();
                return (SaturationOutcome::Budget(base), stats);
            }
        }
        if base.len() == before {
            stats.facts = base.len();
            return (SaturationOutcome::Saturated(base), stats);
        }
    }
    stats.facts = base.len();
    (SaturationOutcome::Budget(base), stats)
}

struct Matcher<'a> {
    sys: &'a ChcSystem,
    cfg: &'a SaturationConfig,
    clause: &'a Clause,
    ci: usize,
    base: &'a mut FactBase,
    pool: &'a mut FxHashMap<ringen_terms::SortId, Vec<GroundTerm>>,
    steps: &'a mut u64,
    refutation: Option<Refutation>,
    budget_hit: &'a mut bool,
    #[allow(clippy::type_complexity)]
    new_facts: Vec<(Fact, Vec<(VarId, GroundTerm)>, Vec<usize>)>,
    /// Hash index over `new_facts` (the in-round dedup must not scan).
    new_index: FxHashSet<Fact>,
}

impl Matcher<'_> {
    fn run(&mut self) {
        let sub = Substitution::new();
        self.match_body(0, sub, Vec::new());
    }

    /// Joins body atoms left to right against the fact base.
    fn match_body(&mut self, k: usize, sub: Substitution, premises: Vec<usize>) {
        if self.refutation.is_some() || *self.budget_hit {
            return;
        }
        if k == self.clause.body.len() {
            self.finish_constraints(sub, premises);
            return;
        }
        let atom = &self.clause.body[k];
        let candidates: Vec<usize> = self
            .base
            .by_pred
            .get(&atom.pred)
            .cloned()
            .unwrap_or_default();
        for fi in candidates {
            *self.steps += 1;
            if *self.steps >= self.cfg.max_steps {
                *self.budget_hit = true;
                return;
            }
            let fact_args: Vec<GroundTerm> = self.base.facts[fi].1.clone();
            let mut sub2 = sub.clone();
            let ok = atom
                .args
                .iter()
                .zip(&fact_args)
                .all(|(pat, g)| match_ground_into(&sub2.apply_deep(pat), g, &mut sub2));
            if ok {
                let mut premises2 = premises.clone();
                premises2.push(fi);
                self.match_body(k + 1, sub2, premises2);
            }
            if self.refutation.is_some() || *self.budget_hit {
                return;
            }
        }
    }

    /// After the body is matched, evaluate constraints and bind leftover
    /// variables.
    fn finish_constraints(&mut self, mut sub: Substitution, premises: Vec<usize>) {
        // Equalities may bind further variables (clauses of the form
        // `x = S(y) ∧ … → …` carry definitions in constraints).
        for c in &self.clause.constraints {
            match c {
                Constraint::Eq(a, b) => {
                    let a = sub.apply_deep(a);
                    let b = sub.apply_deep(b);
                    match ringen_terms::unify(&a, &b) {
                        Ok(u) => sub.compose(&u),
                        Err(_) => return,
                    }
                }
                Constraint::Neq(..) | Constraint::Tester { .. } => {}
            }
        }
        // Bind any variable still free with enumerated ground terms.
        let free: Vec<VarId> = self
            .clause
            .vars
            .vars()
            .filter(|&v| !sub.apply_deep(&Term::var(v)).is_ground())
            .collect();
        self.bind_free(&free, 0, sub, premises);
    }

    fn bind_free(&mut self, free: &[VarId], k: usize, sub: Substitution, premises: Vec<usize>) {
        if self.refutation.is_some() || *self.budget_hit {
            return;
        }
        if k == free.len() {
            self.finish_ground(sub, premises);
            return;
        }
        let v = free[k];
        let sort = self.clause.vars.sort(v).expect("var in context");
        let (sig, limit) = (&self.sys.sig, self.cfg.free_var_candidates);
        let candidates = self
            .pool
            .entry(sort)
            .or_insert_with(|| terms_by_size(sig, sort, limit))
            .clone();
        for t in candidates {
            *self.steps += 1;
            if *self.steps >= self.cfg.max_steps {
                *self.budget_hit = true;
                return;
            }
            let mut sub2 = sub.clone();
            let mut single = Substitution::new();
            single.bind(v, ground_to_term(&t));
            sub2.compose(&single);
            self.bind_free(free, k + 1, sub2, premises.clone());
            if self.refutation.is_some() || *self.budget_hit {
                return;
            }
        }
    }

    fn finish_ground(&mut self, sub: Substitution, premises: Vec<usize>) {
        // Check remaining (now ground) constraints.
        for c in &self.clause.constraints {
            match c {
                Constraint::Eq(a, b) => {
                    // Already folded into the substitution; re-check
                    // groundly for safety.
                    let (Some(a), Some(b)) =
                        (sub.apply_deep(a).to_ground(), sub.apply_deep(b).to_ground())
                    else {
                        return;
                    };
                    if a != b {
                        return;
                    }
                }
                Constraint::Neq(a, b) => {
                    let (Some(a), Some(b)) =
                        (sub.apply_deep(a).to_ground(), sub.apply_deep(b).to_ground())
                    else {
                        return;
                    };
                    if a == b {
                        return;
                    }
                }
                Constraint::Tester {
                    ctor,
                    term,
                    positive,
                } => {
                    let Some(g) = sub.apply_deep(term).to_ground() else {
                        return;
                    };
                    if (g.func() == *ctor) != *positive {
                        return;
                    }
                }
            }
        }
        let binding: Vec<(VarId, GroundTerm)> = self
            .clause
            .vars
            .vars()
            .filter_map(|v| sub.apply_deep(&Term::var(v)).to_ground().map(|g| (v, g)))
            .collect();
        match &self.clause.head {
            None => {
                // ⊥ derived: reconstruct the transitive premises.
                self.refutation = Some(build_refutation(self.base, self.ci, binding, premises));
            }
            Some(atom) => {
                let args: Option<Vec<GroundTerm>> = atom
                    .args
                    .iter()
                    .map(|t| sub.apply_deep(t).to_ground())
                    .collect();
                let Some(args) = args else { return };
                if args.iter().any(|g| g.height() > self.cfg.max_term_height) {
                    return;
                }
                let fact = (atom.pred, args);
                if !self.base.contains(&fact) && !self.new_index.contains(&fact) {
                    if self.base.len() + self.new_facts.len() >= self.cfg.max_facts {
                        *self.budget_hit = true;
                        return;
                    }
                    self.new_index.insert(fact.clone());
                    self.new_facts.push((fact, binding, premises));
                }
            }
        }
    }
}

fn ground_to_term(g: &GroundTerm) -> Term {
    Term::app(g.func(), g.args().iter().map(ground_to_term).collect())
}

/// Extracts the sub-derivation ending in the ⊥ step.
fn build_refutation(
    base: &FactBase,
    query_clause: usize,
    binding: Vec<(VarId, GroundTerm)>,
    premises: Vec<usize>,
) -> Refutation {
    // Collect all transitively needed facts.
    let mut needed: Vec<usize> = Vec::new();
    let mut stack = premises.clone();
    while let Some(i) = stack.pop() {
        if !needed.contains(&i) {
            needed.push(i);
            stack.extend(base.provenance[i].2.iter().copied());
        }
    }
    needed.sort();
    let renumber: FxHashMap<usize, usize> =
        needed.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    let mut steps: Vec<RefStep> = needed
        .iter()
        .map(|&i| {
            let (clause, binding, prem) = &base.provenance[i];
            RefStep {
                clause: *clause,
                binding: binding.clone(),
                premises: prem.iter().map(|p| renumber[p]).collect(),
                fact: Some(base.facts[i].clone()),
            }
        })
        .collect();
    steps.push(RefStep {
        clause: query_clause,
        binding,
        premises: premises.iter().map(|p| renumber[p]).collect(),
        fact: None,
    });
    Refutation { steps }
}

/// Why a refutation failed to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefutationError {
    /// A step references a clause index outside the system.
    BadClause(usize),
    /// The binding does not ground every clause variable.
    UnboundVariable(usize),
    /// A ground constraint of the instantiated clause is false.
    FalseConstraint(usize),
    /// A premise index is out of range or derives the wrong fact.
    BadPremise(usize),
    /// The instantiated head disagrees with the recorded fact.
    WrongFact(usize),
    /// The final step does not apply a query clause.
    NoQuery,
}

impl fmt::Display for RefutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefutationError::BadClause(i) => write!(f, "step {i}: clause index out of range"),
            RefutationError::UnboundVariable(i) => {
                write!(f, "step {i}: binding leaves a clause variable free")
            }
            RefutationError::FalseConstraint(i) => {
                write!(f, "step {i}: instantiated constraint is false")
            }
            RefutationError::BadPremise(i) => write!(f, "step {i}: premise mismatch"),
            RefutationError::WrongFact(i) => {
                write!(f, "step {i}: instantiated head differs from recorded fact")
            }
            RefutationError::NoQuery => write!(f, "final step is not a query clause"),
        }
    }
}

impl Error for RefutationError {}

/// Replays a refutation against the system from scratch. Every UNSAT
/// answer the solver returns has passed this check.
///
/// # Errors
///
/// Returns the first [`RefutationError`] encountered.
pub fn check_refutation(sys: &ChcSystem, r: &Refutation) -> Result<(), RefutationError> {
    let mut derived: Vec<Fact> = Vec::with_capacity(r.steps.len());
    for (si, step) in r.steps.iter().enumerate() {
        let clause = sys
            .clauses
            .get(step.clause)
            .ok_or(RefutationError::BadClause(si))?;
        let bind: FxHashMap<VarId, &GroundTerm> =
            step.binding.iter().map(|(v, g)| (*v, g)).collect();
        let inst = |t: &Term| -> Option<GroundTerm> { instantiate(t, &bind) };
        // Variables may be missing from the binding only if unused.
        for c in &clause.constraints {
            let ok = match c {
                Constraint::Eq(a, b) => {
                    let (a, b) = (inst(a), inst(b));
                    match (a, b) {
                        (Some(a), Some(b)) => a == b,
                        _ => return Err(RefutationError::UnboundVariable(si)),
                    }
                }
                Constraint::Neq(a, b) => {
                    let (a, b) = (inst(a), inst(b));
                    match (a, b) {
                        (Some(a), Some(b)) => a != b,
                        _ => return Err(RefutationError::UnboundVariable(si)),
                    }
                }
                Constraint::Tester {
                    ctor,
                    term,
                    positive,
                } => match inst(term) {
                    Some(g) => (g.func() == *ctor) == *positive,
                    None => return Err(RefutationError::UnboundVariable(si)),
                },
            };
            if !ok {
                return Err(RefutationError::FalseConstraint(si));
            }
        }
        if step.premises.len() != clause.body.len() {
            return Err(RefutationError::BadPremise(si));
        }
        for (atom, &pi) in clause.body.iter().zip(&step.premises) {
            if pi >= si {
                return Err(RefutationError::BadPremise(si));
            }
            let expected =
                instantiate_atom(atom, &bind).ok_or(RefutationError::UnboundVariable(si))?;
            if derived[pi] != expected {
                return Err(RefutationError::BadPremise(si));
            }
        }
        match (&clause.head, &step.fact) {
            (None, None) => {
                if si + 1 != r.steps.len() {
                    return Err(RefutationError::NoQuery);
                }
                return Ok(());
            }
            (Some(atom), Some(fact)) => {
                let expected =
                    instantiate_atom(atom, &bind).ok_or(RefutationError::UnboundVariable(si))?;
                if &expected != fact {
                    return Err(RefutationError::WrongFact(si));
                }
                derived.push(fact.clone());
            }
            _ => return Err(RefutationError::WrongFact(si)),
        }
    }
    Err(RefutationError::NoQuery)
}

fn instantiate(t: &Term, bind: &FxHashMap<VarId, &GroundTerm>) -> Option<GroundTerm> {
    match t {
        Term::Var(v) => bind.get(v).map(|g| (*g).clone()),
        Term::App(f, args) => {
            let args: Option<Vec<GroundTerm>> = args.iter().map(|a| instantiate(a, bind)).collect();
            Some(GroundTerm::app(*f, args?))
        }
    }
}

fn instantiate_atom(atom: &Atom, bind: &FxHashMap<VarId, &GroundTerm>) -> Option<Fact> {
    let args: Option<Vec<GroundTerm>> = atom.args.iter().map(|t| instantiate(t, bind)).collect();
    Some((atom.pred, args?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::parse_str;

    fn unsat_even() -> ChcSystem {
        // even(Z), even(x) → even(S(S(x))), even(S(S(Z))) → ⊥: unsat.
        parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (=> (even (S (S Z))) false))
            "#,
        )
        .unwrap()
    }

    #[test]
    fn refutes_and_replays() {
        let sys = unsat_even();
        let (outcome, _) = saturate(&sys, &SaturationConfig::default());
        let r = match outcome {
            SaturationOutcome::Refuted(r) => r,
            other => panic!("expected refutation, got {other:?}"),
        };
        assert!(check_refutation(&sys, &r).is_ok());
        // Derivation: even(Z), even(S(S(Z))), ⊥.
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn tampered_refutation_is_rejected() {
        let sys = unsat_even();
        let (outcome, _) = saturate(&sys, &SaturationConfig::default());
        let mut r = match outcome {
            SaturationOutcome::Refuted(r) => r,
            other => panic!("expected refutation, got {other:?}"),
        };
        // Point the final step's premise at the wrong fact.
        let last = r.steps.len() - 1;
        r.steps[last].premises[0] = 0;
        assert!(check_refutation(&sys, &r).is_err());
    }

    #[test]
    fn sat_system_saturates_or_budgets() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap();
        let cfg = SaturationConfig {
            max_facts: 50,
            ..SaturationConfig::default()
        };
        let (outcome, stats) = saturate(&sys, &cfg);
        match outcome {
            SaturationOutcome::Budget(base) | SaturationOutcome::Saturated(base) => {
                assert!(!base.is_empty());
                let even = sys.rels.by_name("even").unwrap();
                assert!(base.of_pred(even).count() > 3);
            }
            SaturationOutcome::Refuted(_) => panic!("even system is satisfiable"),
        }
        assert!(stats.steps > 0);
    }

    #[test]
    fn diseq_constraints_filter_matches() {
        // p(Z), p(x) ∧ x ≠ Z → ⊥ is satisfiable; with p(S(Z)) it's not.
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat) Bool)
            (assert (p Z))
            (assert (p (S Z)))
            (assert (forall ((x Nat)) (=> (and (p x) (distinct x Z)) false)))
            "#,
        )
        .unwrap();
        let (outcome, _) = saturate(&sys, &SaturationConfig::default());
        let r = match outcome {
            SaturationOutcome::Refuted(r) => r,
            other => panic!("expected refutation, got {other:?}"),
        };
        assert!(check_refutation(&sys, &r).is_ok());
    }
}
