//! Bottom-up saturation: least-model computation and refutations.
//!
//! Finite-model finding only ever proves satisfiability. Unsatisfiability
//! of a CHC system is witnessed by a *ground derivation of ⊥*: a forward
//! chain of clause instances deriving facts until a query clause fires.
//! This module computes the least Herbrand model bottom-up (with
//! deterministic budgets) and, on refutation, returns a replayable
//! [`Refutation`] object that [`check_refutation`] validates from scratch
//! — UNSAT answers are certified, mirroring how SAT answers carry a
//! checkable [`crate::RegularInvariant`].
//!
//! Constraints are evaluated natively on ground terms (`=`, `≠`, testers)
//! so the refuter runs on the *original* system, independent of the
//! preprocessing pipeline it cross-validates.
//!
//! # The interned fact base
//!
//! Every derived term is hash-consed into one [`TermPool`] owned by the
//! [`FactBase`]: facts are `(PredId, args)` with [`TermId`] arguments,
//! the body join matches clause patterns directly against pooled ids
//! (variable bindings are `VarId → TermId` pairs — comparing a bound
//! variable against a candidate subterm is a `u32` compare, never a
//! tree walk), and the fact index is an open-addressing probe table
//! over the fact arena, so a fact is stored exactly once. Derived-term
//! heights come from the pool's memoized table. The boxed
//! [`GroundTerm`] representation only appears at the certificate
//! boundary ([`Refutation`] / [`check_refutation`]), which replays
//! derivations independently of the pool.
//!
//! # Sharded rounds: snapshot, delta, merge
//!
//! Within a round every clause matches against the **frozen snapshot**
//! of the fact base taken at the round's start (Jacobi iteration — a
//! clause never sees facts derived earlier in the *same* round). That
//! makes clauses independent, so the round shards the clause list
//! across a [`ringen_parallel::Pool`]: each worker joins its clauses
//! against the shared `&FactBase`, interning derived terms into a
//! thread-local [`ScratchPool`] and accumulating a private delta of
//! candidate facts. A sequential merge then folds the deltas **in
//! clause order** — re-interning scratch terms into the master pool
//! ([`TermPool::reintern`]), deduplicating, recording provenance, and
//! applying the fact/step budgets — so the outcome, the fact order, the
//! pool contents, and any refutation certificate are a pure function of
//! the per-clause results and therefore bit-for-bit identical at any
//! thread count (`RINGEN_THREADS=1` forces the spawn-free inline
//! path; the differential property tests in `tests/` pin 2, 4 and 8
//! workers to it). Budgets stay deterministic because each clause runs
//! under the budget remaining at the round's start, and the merge
//! re-applies the global caps clause by clause. The workers themselves
//! are spawned **once per [`saturate`] call** and parked between
//! rounds ([`ringen_parallel::Pool::persistent`]), so many-round
//! instances pay no per-round spawn latency.
//!
//! # Semi-naive rounds: delta-driven variants
//!
//! A naive round rematches every clause against the **whole** frozen
//! snapshot, so round `r` re-derives (and re-discards) everything
//! round `r-1` already found — the dominant cost on recursive systems.
//! The default engine is instead *semi-naive*: the fact base is
//! partitioned by the previous round's merge point into `old` rows and
//! last round's `delta` rows (rows are in insertion order, so the
//! partition is a binary search on the fact index, not a second
//! store), and a clause with `k` body atoms is scheduled as `k`
//! **variants** — variant `i` ranges atom `i` over the delta, atoms
//! `< i` over old rows, and atoms `> i` over old ∪ delta:
//!
//! ```text
//!        naive round                 semi-naive round (k = 3)
//!  ┌───────────────────┐    v0: Δ        × (old∪Δ) × (old∪Δ)
//!  │ all  × all  × all │    v1: old      × Δ       × (old∪Δ)
//!  └───────────────────┘    v2: old      × old     × Δ
//! ```
//!
//! Every derivation with at least one new premise is enumerated by
//! exactly one variant (the one whose index is its first delta
//! premise), and all-old tuples — whose conclusions were already
//! merged, deduplicated, or height-rejected in an earlier round — are
//! never rematched. Joins are additionally backed by a per-`(pred,
//! argument position, TermId)` **argument index** in [`FactBase`]:
//! when a body atom's argument is a variable the left-to-right join
//! has already bound, the matcher scans that id's posting list instead
//! of the whole predicate row (ids are hash-consed, so equality is id
//! equality). Variants shard across the worker pool exactly like
//! clauses did, and the sequential merge is extended from clause order
//! to **variant order**: each clause's candidates are merged sorted by
//! their premise tuple, which is precisely the order the naive
//! engine's nested left-to-right join emits them in — so outcome, fact
//! order, pool contents, and refutation certificates are identical to
//! the naive engine (and to themselves at any thread count). The one
//! intentional difference is [`SaturationStats::steps`] /
//! [`SaturationStats::candidates`], which measure the *work actually
//! done* — the entire point is that the semi-naive engine does less of
//! it, so a `max_steps` budget that cuts one engine mid-round may not
//! cut the other at the same fact.
//!
//! Two budget edge cases keep the engines aligned: (1) a worker that
//! exhausts the *step* budget always ends the run in that same round —
//! `Budget`, or `Refuted` when a sibling variant or earlier clause
//! fires a query first — so its truncated matches never leak into a
//! later round; (2) a worker truncated by the *fact* cap whose round
//! ends below the cap (possible when another clause merged the same
//! facts first) marks its clause **dirty**, and a dirty clause is
//! rescheduled as a full naive rescan next round — exactly how the
//! naive engine rediscovers the dropped candidates. Setting
//! `RINGEN_SAT_SEMINAIVE=0` (or [`SaturationConfig::semi_naive`] =
//! `false`) selects the naive matcher, kept verbatim as the
//! differential reference.

use std::error::Error;
use std::fmt;
use std::hash::Hasher;

use ringen_chc::{Atom, ChcSystem, Clause, Constraint, PredId};
use ringen_parallel::{Guard, ParallelConfig, Pool, Recorder};
use ringen_terms::intern::InternTable;
use ringen_terms::{
    herbrand::terms_by_size, GroundTerm, ScratchNodes, ScratchPool, SortId, Substitution, Term,
    TermId, TermPool, VarId,
};
use rustc_hash::{FxHashMap, FxHashSet, FxHasher};
use smallvec::SmallVec;

/// Budgets for [`saturate`]. All limits are deterministic step counts,
/// never wall time, so results are reproducible.
#[derive(Debug, Clone)]
pub struct SaturationConfig {
    /// Stop after deriving this many facts.
    pub max_facts: usize,
    /// Stop after this many saturation rounds.
    pub max_rounds: usize,
    /// Discard derived facts containing a term higher than this.
    pub max_term_height: usize,
    /// How many candidate ground terms to enumerate per sort when a head
    /// variable is not bound by the body (e.g. `⊤ → p(c(x))`).
    pub free_var_candidates: usize,
    /// Abort once the merged body-match attempts reach this count. The
    /// cap is applied deterministically at clause boundaries of the
    /// round merge, and every clause of a round runs under the budget
    /// remaining at the *round's start* — so in the terminal round the
    /// engine may speculatively attempt (and then discard) up to
    /// `clauses × remaining` matches beyond the cap. A budget, not an
    /// exact step count.
    pub max_steps: u64,
    /// Worker threads for the sharded round engine. The default honors
    /// `RINGEN_THREADS` (1 forces the inline path); outcomes are
    /// bit-for-bit identical at any value.
    pub parallel: ParallelConfig,
    /// Use the delta-driven semi-naive round engine with
    /// argument-indexed joins (see the [module docs](self)). The
    /// default honors `RINGEN_SAT_SEMINAIVE` (`0` selects the naive
    /// reference matcher); outcomes, fact order, pool contents and
    /// certificates are identical either way — only
    /// [`SaturationStats::steps`] / [`SaturationStats::candidates`]
    /// reflect the engine's actual (smaller) workload.
    pub semi_naive: bool,
}

impl Default for SaturationConfig {
    fn default() -> Self {
        SaturationConfig {
            max_facts: 20_000,
            max_rounds: 64,
            max_term_height: 24,
            free_var_candidates: 8,
            max_steps: 2_000_000,
            parallel: ParallelConfig::default(),
            semi_naive: std::env::var_os("RINGEN_SAT_SEMINAIVE").is_none_or(|v| v != *"0"),
        }
    }
}

/// A ground fact in the boxed certificate representation.
pub type Fact = (PredId, Vec<GroundTerm>);

/// Interned fact arguments: inline up to arity 4, ids into the base's
/// [`TermPool`].
pub type FactArgs = SmallVec<[TermId; 4]>;

/// Interned variable binding of one clause instance.
type Bind = SmallVec<[(VarId, TermId); 8]>;

/// Provenance of a derived fact: (clause index, pooled variable
/// binding, premise fact indices).
type Provenance = (usize, Vec<(VarId, TermId)>, Vec<usize>);

/// A fired query-clause instance awaiting certificate construction at
/// merge time: (pooled binding, premise fact indices).
type QueryFire = (Vec<(VarId, TermId)>, Vec<usize>);

/// One step of a ground derivation, in the boxed *view*
/// representation ([`Refutation::step`]): bindings and facts are
/// reconstructed [`GroundTerm`] trees, convenient for display and
/// independent replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefStep {
    /// Index of the applied clause in [`ChcSystem::clauses`].
    pub clause: usize,
    /// Ground instantiation of every clause variable.
    pub binding: Vec<(VarId, GroundTerm)>,
    /// Indices (into the step list) of the facts matching the body atoms,
    /// in body order.
    pub premises: Vec<usize>,
    /// The derived fact; `None` for the final ⊥ step of a query clause.
    pub fact: Option<Fact>,
}

/// One step of a ground derivation in the *stored* representation:
/// every term is a [`TermId`] into the certificate's own pool dump
/// ([`Refutation::pool`]). Large derivations share their subterms —
/// `S²ᵏ(Z)` chains cost one node apiece instead of one boxed tree per
/// step they appear in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PooledStep {
    /// Index of the applied clause in [`ChcSystem::clauses`].
    pub clause: usize,
    /// Ground instantiation of every clause variable, as pool ids.
    pub binding: Vec<(VarId, TermId)>,
    /// Indices (into the step list) of the facts matching the body atoms,
    /// in body order.
    pub premises: Vec<usize>,
    /// The derived fact; `None` for the final ⊥ step of a query clause.
    pub fact: Option<(PredId, Vec<TermId>)>,
}

/// A ground derivation of ⊥ — the UNSAT certificate.
///
/// Stored pooled: the steps carry [`TermId`]s plus **one** hash-consed
/// pool dump holding exactly the terms the derivation references (built
/// by [`TermPool::import`] at the certificate boundary, so the solver's
/// much larger working pool is never retained). The boxed
/// [`RefStep`] form is a lazy view ([`Refutation::step`] /
/// [`Refutation::boxed_steps`]) materialized only for display and
/// replay.
#[derive(Debug, Clone)]
pub struct Refutation {
    /// The certificate's private term pool; every [`PooledStep`] id
    /// points here.
    pub pool: TermPool,
    /// Derivation steps; the last step derives ⊥.
    pub steps: Vec<PooledStep>,
}

impl Refutation {
    /// Number of clause applications in the derivation.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the derivation is empty (never true for real refutations).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The `i`-th step in the boxed view (terms reconstructed from the
    /// pool on demand).
    pub fn step(&self, i: usize) -> RefStep {
        let s = &self.steps[i];
        RefStep {
            clause: s.clause,
            binding: s
                .binding
                .iter()
                .map(|(v, id)| (*v, self.pool.to_ground(*id)))
                .collect(),
            premises: s.premises.clone(),
            fact: s
                .fact
                .as_ref()
                .map(|(p, args)| (*p, args.iter().map(|a| self.pool.to_ground(*a)).collect())),
        }
    }

    /// All steps in the boxed view, materialized lazily in order.
    pub fn boxed_steps(&self) -> impl Iterator<Item = RefStep> + '_ {
        (0..self.len()).map(|i| self.step(i))
    }
}

/// Semantic equality: two certificates are equal when their boxed views
/// are — independent of how each pool dump happens to be laid out.
impl PartialEq for Refutation {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.step(i) == other.step(i))
    }
}

impl Eq for Refutation {}

/// Fx hash of a fact. Query slices and stored facts go through this one
/// function so probes agree.
#[inline]
fn fact_hash(pred: PredId, args: &[TermId]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(pred.index() as u32);
    for a in args {
        h.write_u32(a.index() as u32);
    }
    h.finish()
}

/// The facts derived by a (partial) saturation, interned end to end.
#[derive(Debug, Clone, Default)]
pub struct FactBase {
    /// Hash-consing pool every fact argument (and subterm) lives in.
    pool: TermPool,
    facts: Vec<(PredId, FactArgs)>,
    /// Open-addressing index over `facts` — the fact arena *is* the
    /// storage; the index holds only `u32` slots.
    table: InternTable,
    by_pred: FxHashMap<PredId, Vec<u32>>,
    /// Argument index: `(pred, argument position, argument TermId)` →
    /// the rows of `pred` whose argument at that position *is* that id
    /// (ids are hash-consed, so equality is id equality). Lists are in
    /// insertion order — i.e. ascending fact index — so the semi-naive
    /// old/delta split applies to them by binary search, exactly as it
    /// does to `by_pred` rows. Maintained only when `index_args` is
    /// set (the semi-naive engine); the naive reference scans rows.
    arg_index: FxHashMap<(PredId, u32, TermId), Vec<u32>>,
    /// Whether inserts maintain `arg_index`.
    index_args: bool,
    /// For each fact: (clause index, binding, premise fact indices).
    provenance: Vec<Provenance>,
}

impl FactBase {
    /// The term pool all fact arguments are interned in.
    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    /// All facts in derivation order, as `(pred, pooled args)`.
    pub fn pooled_facts(&self) -> impl Iterator<Item = (PredId, &[TermId])> + '_ {
        self.facts.iter().map(|(p, args)| (*p, args.as_slice()))
    }

    /// All facts in derivation order, reconstructed as boxed terms.
    pub fn ground_facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.facts
            .iter()
            .map(|(p, args)| (*p, args.iter().map(|a| self.pool.to_ground(*a)).collect()))
    }

    /// The `i`-th derived fact, reconstructed.
    pub fn ground_fact(&self, i: usize) -> Fact {
        let (p, args) = &self.facts[i];
        (*p, args.iter().map(|a| self.pool.to_ground(*a)).collect())
    }

    /// Whether a fact has been derived.
    pub fn contains(&self, fact: &Fact) -> bool {
        let Some(args) = fact
            .1
            .iter()
            .map(|g| self.pool.find_term(g))
            .collect::<Option<FactArgs>>()
        else {
            // A fact whose terms were never interned cannot be present.
            return false;
        };
        self.find(fact.0, &args).is_some()
    }

    /// Index of the interned fact, if derived.
    fn find(&self, pred: PredId, args: &[TermId]) -> Option<u32> {
        self.table.find(fact_hash(pred, args), |i| {
            let (p, a) = &self.facts[i as usize];
            *p == pred && a.as_slice() == args
        })
    }

    /// Pooled argument tuples of one predicate's facts.
    pub fn of_pred(&self, p: PredId) -> impl Iterator<Item = &[TermId]> + '_ {
        self.by_pred
            .get(&p)
            .into_iter()
            .flatten()
            .map(move |&i| self.facts[i as usize].1.as_slice())
    }

    /// The row list of one predicate, in ascending fact-index order.
    fn pred_row(&self, p: PredId) -> &[u32] {
        self.by_pred.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The argument-index posting list for `(pred, position, id)`, in
    /// ascending fact-index order; empty when no fact has that
    /// argument (or when the index is disabled — callers must not
    /// consult it then).
    fn arg_row(&self, p: PredId, pos: usize, id: TermId) -> &[u32] {
        debug_assert!(self.index_args, "argument index consulted but not built");
        self.arg_index
            .get(&(p, pos as u32, id))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no fact was derived.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    fn insert(
        &mut self,
        pred: PredId,
        args: FactArgs,
        clause: usize,
        binding: Vec<(VarId, TermId)>,
        premises: Vec<usize>,
    ) -> bool {
        let hash = fact_hash(pred, &args);
        let present = self
            .table
            .find(hash, |i| {
                let (p, a) = &self.facts[i as usize];
                *p == pred && *a == args
            })
            .is_some();
        if present {
            return false;
        }
        // `u32::MAX` is the probe table's empty sentinel — reject it
        // (not just overflow) so a full arena cannot corrupt the table.
        let i = u32::try_from(self.facts.len())
            .ok()
            .filter(|i| *i != u32::MAX)
            .expect("fact count fits the id space");
        self.by_pred.entry(pred).or_default().push(i);
        if self.index_args {
            for (pos, &arg) in args.iter().enumerate() {
                self.arg_index
                    .entry((pred, pos as u32, arg))
                    .or_default()
                    .push(i);
            }
        }
        self.facts.push((pred, args));
        self.provenance.push((clause, binding, premises));
        let FactBase { table, facts, .. } = self;
        table.insert_new(hash, i, |v| {
            let (p, a) = &facts[v as usize];
            fact_hash(*p, a)
        });
        true
    }
}

/// Join candidates between guard polls inside a worker's matcher (see
/// [`saturate_guarded`]).
pub const GUARD_STEP_PERIOD: u64 = 128;

/// Outcome of [`saturate`].
#[derive(Debug, Clone)]
pub enum SaturationOutcome {
    /// A query clause fired: the system is unsatisfiable.
    Refuted(Refutation),
    /// A fixed point was reached below every budget: the fact base *is*
    /// the least Herbrand model restricted to the explored space, and no
    /// query fires in it. (If budgets clipped term heights this is still
    /// only a half-answer; see [`SaturationOutcome::Budget`].)
    Saturated(FactBase),
    /// A budget was exhausted first; facts derived so far are returned.
    Budget(FactBase),
    /// The [`Guard`] tripped (cancellation or deadline). The fact base
    /// holds every *completed* round's facts — the in-flight round's
    /// deltas are discarded wholesale, so the state is exactly what a
    /// smaller `max_rounds` budget would have produced and is safe to
    /// reuse or resume from.
    Interrupted(FactBase),
}

/// Statistics from a [`saturate`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaturationStats {
    /// Completed rounds.
    pub rounds: usize,
    /// Facts derived.
    pub facts: usize,
    /// Body-match attempts *merged into the result*: clauses past an
    /// early round cut (refutation or budget) ran speculatively against
    /// the snapshot, and their attempts are discarded with their
    /// deltas — deterministically, whatever the worker count. This
    /// measures the engine's *actual* matching work, so the semi-naive
    /// engine reports far fewer steps than the naive reference on the
    /// same system.
    pub steps: u64,
    /// Head-fact candidates the merge considered (after worker-side
    /// budget truncation, before cross-clause deduplication). A
    /// derivation re-attempted is a candidate re-counted, so on a
    /// system whose facts each have one derivation the semi-naive
    /// engine keeps this exactly equal to [`SaturationStats::facts`] —
    /// the "each fact derived once" contract the unit tests pin. (The
    /// naive engine's *rescan* cost shows up in
    /// [`SaturationStats::steps`], not here: its workers filter
    /// already-known heads against the snapshot before they become
    /// candidates.)
    pub candidates: u64,
    /// Distinct terms interned in the fact base's pool.
    pub pooled_terms: usize,
}

/// One scheduled unit of a round: a clause matched under a candidate
/// range restriction. The naive engine (and a semi-naive full rescan —
/// round 0, or a dirty clause) uses `delta_atom = None`; the
/// semi-naive variants pin one body atom to last round's delta rows.
#[derive(Debug, Clone, Copy)]
struct WorkItem {
    clause: usize,
    /// `None` = full rescan; `Some(i)` = semi-naive variant: atom `i`
    /// over the delta, atoms `< i` over old rows, atoms `> i` over all.
    delta_atom: Option<usize>,
}

/// One work item's contribution to a round: a private delta computed
/// against the frozen snapshot, merged deterministically afterwards.
struct ClauseRun {
    /// Body-match attempts spent by this item.
    steps: u64,
    /// A fired query clause: (binding in scratch ids, premise facts).
    refutation: Option<QueryFire>,
    /// Derived facts in derivation order, args/bindings in scratch ids.
    #[allow(clippy::type_complexity)]
    new_facts: Vec<(PredId, FactArgs, Bind, Vec<usize>)>,
    /// Terms this item interned beyond the snapshot.
    nodes: ScratchNodes,
    /// Enumerated free-variable candidates computed fresh (pure per
    /// sort; merged into the shared cache for later rounds).
    enum_terms: Vec<(SortId, Vec<GroundTerm>)>,
    /// The matcher stopped early on the fact cap: some candidates were
    /// dropped. The semi-naive merge marks the clause dirty so a full
    /// rescan next round rediscovers them (as the naive engine would).
    facts_capped: bool,
    /// The matcher observed a tripped guard; the whole round's deltas
    /// will be discarded.
    interrupted: bool,
}

/// Runs one work item against the frozen snapshot. Pure: depends only
/// on the snapshot, the item, and the round-start step budget — never
/// on sibling items or the worker schedule.
#[allow(clippy::too_many_arguments)]
fn run_item(
    sys: &ChcSystem,
    cfg: &SaturationConfig,
    item: WorkItem,
    base: &FactBase,
    old_len: u32,
    use_index: bool,
    enum_cache: &FxHashMap<SortId, Vec<GroundTerm>>,
    step_budget: u64,
    guard: Option<&Guard>,
) -> ClauseRun {
    let clause = &sys.clauses[item.clause];
    // A query of the ∀∃ shape (§5) cannot be fired by a finite set of
    // facts; the refuter conservatively skips it.
    if !clause.exist_vars.is_empty() {
        return ClauseRun {
            steps: 0,
            refutation: None,
            new_facts: Vec::new(),
            nodes: ScratchNodes::default(),
            enum_terms: Vec::new(),
            facts_capped: false,
            interrupted: false,
        };
    }
    let mut matcher = Matcher {
        sys,
        cfg,
        clause,
        base,
        delta_atom: item.delta_atom,
        old_len,
        use_index,
        scratch: base.pool.scratch(),
        enum_cache,
        enum_fresh: FxHashMap::default(),
        steps: 0,
        step_budget,
        budget_hit: false,
        facts_capped: false,
        guard,
        interrupted: false,
        refutation: None,
        new_facts: Vec::new(),
        new_index: FxHashSet::default(),
    };
    matcher.run();
    let mut enum_terms: Vec<(SortId, Vec<GroundTerm>)> = matcher.enum_fresh.into_iter().collect();
    enum_terms.sort_by_key(|(s, _)| *s);
    ClauseRun {
        steps: matcher.steps,
        refutation: matcher.refutation,
        new_facts: matcher.new_facts,
        nodes: matcher.scratch.into_nodes(),
        enum_terms,
        facts_capped: matcher.facts_capped,
        interrupted: matcher.interrupted,
    }
}

/// How a round's merge ended.
enum RoundEnd {
    /// All deltas merged below every budget.
    Done,
    /// A query clause fired; the certificate is already built.
    Refuted(Refutation),
    /// A budget was exhausted while merging.
    Budget,
}

/// Re-interns one scratch id into the master pool. Ids below the
/// round-start pool length are snapshot ids by construction and pass
/// through without touching the intern table (or the memo), so dedup
/// probes on snapshot-only tuples stay allocation- and probe-free.
#[inline]
fn remap(
    pool: &mut TermPool,
    nodes: &ScratchNodes,
    memo: &mut Vec<Option<TermId>>,
    id: TermId,
) -> TermId {
    if id.index() < nodes.split() {
        id
    } else {
        pool.reintern(nodes, memo, id)
    }
}

/// A pre-sized scratch-id → master-id memo for one delta: `reintern`
/// would otherwise grow it by repeated `resize` probes mid-merge.
#[inline]
fn presized_memo(nodes: &ScratchNodes) -> Vec<Option<TermId>> {
    vec![None; nodes.len()]
}

/// Folds the per-clause deltas into the base **in clause order** —
/// dedup, budgets, provenance and refutation selection are all decided
/// here, sequentially, which is what makes the engine deterministic at
/// any thread count. This is the naive engine's merge, kept verbatim
/// as the differential reference; the semi-naive engine merges through
/// [`merge_round_semi`].
fn merge_round(
    cfg: &SaturationConfig,
    base: &mut FactBase,
    enum_cache: &mut FxHashMap<SortId, Vec<GroundTerm>>,
    runs: Vec<ClauseRun>,
    stats: &mut SaturationStats,
    rec: &Recorder,
    round: usize,
) -> RoundEnd {
    for (ci, run) in runs.into_iter().enumerate() {
        if rec.text_enabled() {
            rec.text_line(format_args!(
                "round {round} clause {ci} facts={} steps={} (clause spent {} steps, {} candidates)",
                base.len(),
                stats.steps,
                run.steps,
                run.new_facts.len(),
            ));
        }
        stats.steps += run.steps;
        for (sort, terms) in run.enum_terms {
            enum_cache.entry(sort).or_insert(terms);
        }
        // Scratch-id → master-id memo, shared across this delta.
        let mut memo = presized_memo(&run.nodes);
        if let Some((bind, premises)) = run.refutation {
            let bind: Vec<(VarId, TermId)> = bind
                .into_iter()
                .map(|(v, id)| (v, remap(&mut base.pool, &run.nodes, &mut memo, id)))
                .collect();
            return RoundEnd::Refuted(build_refutation(base, ci, &bind, premises));
        }
        for (pred, args, bind, premises) in run.new_facts {
            let margs: FactArgs = args
                .iter()
                .map(|&a| remap(&mut base.pool, &run.nodes, &mut memo, a))
                .collect();
            stats.candidates += 1;
            // First derivation wins: a clause earlier in this round (or
            // an earlier round) already owns this fact and its
            // provenance.
            if base.find(pred, &margs).is_some() {
                continue;
            }
            if base.len() >= cfg.max_facts {
                return RoundEnd::Budget;
            }
            let bind: Vec<(VarId, TermId)> = bind
                .into_iter()
                .map(|(v, id)| (v, remap(&mut base.pool, &run.nodes, &mut memo, id)))
                .collect();
            base.insert(pred, margs, ci, bind, premises);
        }
        if stats.steps >= cfg.max_steps || base.len() >= cfg.max_facts {
            return RoundEnd::Budget;
        }
    }
    RoundEnd::Done
}

/// The semi-naive merge: folds per-**variant** deltas into the base in
/// clause order, and within a clause in **premise-tuple order** — the
/// exact order the naive engine's nested join emits candidates in, so
/// first-derivation-wins picks the same provenance, the fact list
/// comes out in the same order, and the fact cap truncates at the same
/// point. `snap_len` is the fact count at the round's start (the
/// worker-side cap threshold); `dirty` is updated for the next round.
#[allow(clippy::too_many_arguments)]
fn merge_round_semi(
    cfg: &SaturationConfig,
    base: &mut FactBase,
    enum_cache: &mut FxHashMap<SortId, Vec<GroundTerm>>,
    items: &[WorkItem],
    mut runs: Vec<ClauseRun>,
    dirty: &mut [bool],
    snap_len: usize,
    stats: &mut SaturationStats,
    rec: &Recorder,
    round: usize,
) -> RoundEnd {
    // The naive matcher retains at most this many clause-new candidates
    // before flagging the fact cap; replaying that truncation at merge
    // time is what keeps the engines' Budget behavior aligned.
    let clause_cap = cfg.max_facts.saturating_sub(snap_len);
    let mut start = 0;
    while start < runs.len() {
        let ci = items[start].clause;
        let end = start
            + items[start..]
                .iter()
                .position(|it| it.clause != ci)
                .unwrap_or(items.len() - start);
        let group = &mut runs[start..end];
        let group_steps: u64 = group.iter().map(|r| r.steps).sum();
        if rec.text_enabled() {
            rec.text_line(format_args!(
                "round {round} clause {ci} facts={} steps={} ({} variants spent {} steps, {} candidates)",
                base.len(),
                stats.steps,
                group.len(),
                group_steps,
                group.iter().map(|r| r.new_facts.len()).sum::<usize>(),
            ));
        }
        stats.steps += group_steps;
        for run in group.iter_mut() {
            for (sort, terms) in std::mem::take(&mut run.enum_terms) {
                enum_cache.entry(sort).or_insert(terms);
            }
        }
        let mut memos: Vec<Vec<Option<TermId>>> =
            group.iter().map(|r| presized_memo(&r.nodes)).collect();

        // A fired query clause: the naive engine reports the join's
        // first firing, i.e. the premise-lexicographically least one.
        // Each variant short-circuited at its own least firing, so the
        // minimum over variants is the global least.
        let fire = group
            .iter_mut()
            .enumerate()
            .filter_map(|(vi, r)| r.refutation.take().map(|f| (vi, f)))
            .min_by(|(_, a), (_, b)| a.1.cmp(&b.1));
        if let Some((vi, (bind, premises))) = fire {
            let nodes = &group[vi].nodes;
            let bind: Vec<(VarId, TermId)> = bind
                .into_iter()
                .map(|(v, id)| (v, remap(&mut base.pool, nodes, &mut memos[vi], id)))
                .collect();
            return RoundEnd::Refuted(build_refutation(base, ci, &bind, premises));
        }

        // Candidates of all variants, in the naive join's emission
        // order. Premise tuples are unique per variant (a tuple's first
        // delta position *is* its variant) and emitted in ascending
        // order within one, so a stable sort on the tuple interleaves
        // the variants exactly; enumeration-path candidates that share
        // a tuple keep their in-variant order.
        let mut order: Vec<(usize, usize)> = group
            .iter()
            .enumerate()
            .flat_map(|(vi, r)| (0..r.new_facts.len()).map(move |fi| (vi, fi)))
            .collect();
        order.sort_by(|&(va, fa), &(vb, fb)| {
            group[va].new_facts[fa].3.cmp(&group[vb].new_facts[fb].3)
        });

        // Replay the naive worker's per-clause accounting: `clause_seen`
        // is its `new_index` (cross-variant duplicates were never
        // emitted by the naive matcher, so they are skipped *uncounted*)
        // and `processed` its retained-candidate count.
        let mut clause_seen: FxHashSet<(PredId, FactArgs)> = FxHashSet::default();
        let mut processed = 0usize;
        let mut truncated = false;
        for (vi, fi) in order {
            if processed >= clause_cap {
                // The naive worker hit the fact cap here: nothing past
                // this point was ever emitted (or its terms interned),
                // so stop before touching the pool. The remainder may
                // be cross-variant duplicates rather than dropped
                // facts — over-approximating the truncation only costs
                // a no-op rescan, never correctness.
                truncated = true;
                break;
            }
            let (pred, args, bind, premises) = {
                let entry = &mut group[vi].new_facts[fi];
                (
                    entry.0,
                    std::mem::take(&mut entry.1),
                    std::mem::take(&mut entry.2),
                    std::mem::take(&mut entry.3),
                )
            };
            let nodes = &group[vi].nodes;
            let margs: FactArgs = args
                .iter()
                .map(|&a| remap(&mut base.pool, nodes, &mut memos[vi], a))
                .collect();
            if !clause_seen.insert((pred, margs.clone())) {
                // The naive matcher's `new_index` suppressed this
                // cross-variant duplicate before it counted against
                // the cap; its terms are the first occurrence's, so
                // the remap above grew nothing.
                continue;
            }
            processed += 1;
            stats.candidates += 1;
            if base.find(pred, &margs).is_some() {
                continue;
            }
            if base.len() >= cfg.max_facts {
                return RoundEnd::Budget;
            }
            let bind: Vec<(VarId, TermId)> = bind
                .into_iter()
                .map(|(v, id)| (v, remap(&mut base.pool, nodes, &mut memos[vi], id)))
                .collect();
            base.insert(pred, margs, ci, bind, premises);
        }
        dirty[ci] = truncated || group.iter().any(|r| r.facts_capped);
        if stats.steps >= cfg.max_steps || base.len() >= cfg.max_facts {
            return RoundEnd::Budget;
        }
        start = end;
    }
    RoundEnd::Done
}

/// Computes the least model bottom-up; reports a [`Refutation`] as soon
/// as a query clause fires.
///
/// Rounds are sharded across [`SaturationConfig::parallel`] workers,
/// spawned once per call and parked between rounds (see the
/// [module docs](self)); the result is identical at any worker count.
pub fn saturate(sys: &ChcSystem, cfg: &SaturationConfig) -> (SaturationOutcome, SaturationStats) {
    saturate_guarded(sys, cfg, &Guard::new())
}

/// [`saturate`] under a cooperative [`Guard`].
///
/// The token is polled between rounds and every [`GUARD_STEP_PERIOD`]
/// join candidates inside the workers. When it trips, the in-flight
/// round's deltas are discarded *wholesale* and
/// [`SaturationOutcome::Interrupted`] returns the fact base as of the
/// last completed round — never a torn half-merge — together with the
/// stats accumulated so far. With a never-tripping guard the run is
/// bit-identical to [`saturate`].
pub fn saturate_guarded(
    sys: &ChcSystem,
    cfg: &SaturationConfig,
    guard: &Guard,
) -> (SaturationOutcome, SaturationStats) {
    // `RINGEN_SAT_DEBUG` arms the recorder's human-readable text sink
    // (the env lookup happens once per call, never per clause); the
    // per-round trace itself goes through `Recorder::text_line`.
    let rec = if std::env::var_os("RINGEN_SAT_DEBUG").is_some() {
        guard.recorder().with_text()
    } else {
        guard.recorder().clone()
    };
    let mut span = rec.span("saturate");
    let (outcome, stats) = saturate_rounds(sys, cfg, guard, &rec);
    span.note("rounds", stats.rounds as i64);
    span.note("facts", stats.facts as i64);
    span.note("steps", stats.steps as i64);
    span.note("candidates", stats.candidates as i64);
    span.note_str(
        "outcome",
        match &outcome {
            SaturationOutcome::Refuted(_) => "refuted",
            SaturationOutcome::Saturated(_) => "saturated",
            SaturationOutcome::Budget(_) => "budget",
            SaturationOutcome::Interrupted(_) => "interrupted",
        },
    );
    rec.add("sat.rounds", stats.rounds as i64);
    rec.add("sat.facts", stats.facts as i64);
    rec.add("sat.candidates", stats.candidates as i64);
    (outcome, stats)
}

/// The round loop behind [`saturate_guarded`] (split out so the
/// wrapper can annotate one `saturate` span around the many returns).
fn saturate_rounds(
    sys: &ChcSystem,
    cfg: &SaturationConfig,
    guard: &Guard,
    rec: &Recorder,
) -> (SaturationOutcome, SaturationStats) {
    let pool = Pool::persistent(&cfg.parallel);
    let semi = cfg.semi_naive;
    let mut base = FactBase {
        index_args: semi,
        ..FactBase::default()
    };
    let mut stats = SaturationStats::default();
    let mut enum_cache: FxHashMap<SortId, Vec<GroundTerm>> = FxHashMap::default();
    // Clauses needing a full rescan next round (fact-cap truncation).
    let mut dirty = vec![false; sys.clauses.len()];
    // Fact count at the start of the *previous* round: everything at or
    // past it is the delta the semi-naive variants pivot on.
    let mut old_len = 0usize;

    let finalize = |stats: &mut SaturationStats, base: &mut FactBase| {
        stats.facts = base.len();
        stats.pooled_terms = base.pool.len();
        // The argument index is the round engine's private join
        // accelerator; outcomes hand the base to consumers that never
        // probe it, so don't make them carry its memory.
        base.arg_index = FxHashMap::default();
    };

    for round in 0..cfg.max_rounds {
        if guard.is_cancelled() {
            finalize(&mut stats, &mut base);
            return (SaturationOutcome::Interrupted(base), stats);
        }
        let mut round_span = rec.span("sat.round");
        round_span.note("round", round as i64);
        stats.rounds = round + 1;
        let before = base.len();
        // Round 0 has no delta (and must run the fact clauses), so the
        // semi-naive engine starts with one full rescan; afterwards a
        // clause is either dirty (full rescan) or scheduled as its
        // per-atom delta variants. Empty-body clauses have no variant:
        // their derivations have no new premise, so they can only
        // re-derive what round 0 merged (or a dirty pass recovers).
        let items: Vec<WorkItem> = if !semi || round == 0 {
            (0..sys.clauses.len())
                .map(|clause| WorkItem {
                    clause,
                    delta_atom: None,
                })
                .collect()
        } else {
            let mut items = Vec::new();
            for (clause, c) in sys.clauses.iter().enumerate() {
                if !c.exist_vars.is_empty() {
                    continue; // never matched by the refuter
                }
                if dirty[clause] {
                    items.push(WorkItem {
                        clause,
                        delta_atom: None,
                    });
                } else {
                    items.extend((0..c.body.len()).map(|a| WorkItem {
                        clause,
                        delta_atom: Some(a),
                    }));
                }
            }
            items
        };
        // Every item runs under the budget left at the round's start
        // (not reduced by sibling items — that would reintroduce a
        // cross-item order dependence); the merge re-applies the
        // global cap clause by clause.
        let step_budget = cfg.max_steps.saturating_sub(stats.steps);
        let runs: Vec<ClauseRun> = pool.map_items(&items, |_, &item| {
            run_item(
                sys,
                cfg,
                item,
                &base,
                old_len as u32,
                semi,
                &enum_cache,
                step_budget,
                Some(guard),
            )
        });
        // A tripped guard discards the whole round: merging a torn
        // subset of the deltas would leave a state no budget-bounded
        // run could produce. `stats.rounds` already counts this round
        // as started; facts/steps reflect only completed rounds.
        if runs.iter().any(|r| r.interrupted) || guard.is_cancelled() {
            round_span.note_str("end", "interrupted");
            stats.rounds = round;
            finalize(&mut stats, &mut base);
            return (SaturationOutcome::Interrupted(base), stats);
        }
        let end = if semi {
            merge_round_semi(
                cfg,
                &mut base,
                &mut enum_cache,
                &items,
                runs,
                &mut dirty,
                before,
                &mut stats,
                rec,
                round,
            )
        } else {
            merge_round(
                cfg,
                &mut base,
                &mut enum_cache,
                runs,
                &mut stats,
                rec,
                round,
            )
        };
        round_span.note("new_facts", (base.len() - before) as i64);
        match end {
            RoundEnd::Refuted(r) => {
                round_span.note_str("end", "refuted");
                finalize(&mut stats, &mut base);
                return (SaturationOutcome::Refuted(r), stats);
            }
            RoundEnd::Budget => {
                round_span.note_str("end", "budget");
                finalize(&mut stats, &mut base);
                return (SaturationOutcome::Budget(base), stats);
            }
            RoundEnd::Done => {}
        }
        if base.len() == before && !dirty.iter().any(|&d| d) {
            round_span.note_str("end", "saturated");
            finalize(&mut stats, &mut base);
            return (SaturationOutcome::Saturated(base), stats);
        }
        old_len = before;
    }
    finalize(&mut stats, &mut base);
    (SaturationOutcome::Budget(base), stats)
}

/// Looks up a variable in a pooled binding.
#[inline]
fn bind_get(bind: &Bind, v: VarId) -> Option<TermId> {
    bind.iter().find(|(w, _)| *w == v).map(|(_, id)| *id)
}

/// Matches a clause pattern against an interned ground term, extending
/// `bind`. Repeated variables compare by id — O(1), never a tree walk.
fn match_pooled(pool: &TermPool, pat: &Term, id: TermId, bind: &mut Bind) -> bool {
    match pat {
        Term::Var(v) => match bind_get(bind, *v) {
            Some(bound) => bound == id,
            None => {
                bind.push((*v, id));
                true
            }
        },
        Term::App(f, pats) => {
            if pool.func(id) != *f {
                return false;
            }
            let args = pool.args(id);
            debug_assert_eq!(args.len(), pats.len(), "well-sorted pattern arity");
            // Child ids are copied out so the recursion does not hold
            // the `args` borrow; patterns are clause-authored and
            // shallow, and arity ≤ 4 stays on the stack.
            let args: FactArgs = SmallVec::from_slice(args);
            pats.iter()
                .zip(args)
                .all(|(p, a)| match_pooled(pool, p, a, bind))
        }
    }
}

/// Instantiates a (fully bound) clause term directly into the worker's
/// scratch pool. `None` if a variable is unbound — the caller falls
/// back to the enumeration path.
fn intern_pattern(pool: &mut ScratchPool<'_>, pat: &Term, bind: &Bind) -> Option<TermId> {
    match pat {
        Term::Var(v) => bind_get(bind, *v),
        Term::App(f, pats) => {
            let ids: FactArgs = pats
                .iter()
                .map(|p| intern_pattern(pool, p, bind))
                .collect::<Option<_>>()?;
            Some(pool.intern(*f, &ids))
        }
    }
}

/// Height the instantiated pattern *would* have, without interning
/// anything — so over-budget heads are rejected before they pollute
/// the long-lived pool. `None` if a variable is unbound.
fn pattern_height(pool: &ScratchPool<'_>, pat: &Term, bind: &Bind) -> Option<usize> {
    match pat {
        Term::Var(v) => bind_get(bind, *v).map(|id| pool.height(id)),
        Term::App(_, pats) => {
            let mut max = 0usize;
            for p in pats {
                max = max.max(pattern_height(pool, p, bind)?);
            }
            Some(max + 1)
        }
    }
}

struct Matcher<'a> {
    sys: &'a ChcSystem,
    cfg: &'a SaturationConfig,
    clause: &'a Clause,
    /// The frozen snapshot. Shared — many matchers read it at once.
    base: &'a FactBase,
    /// Semi-naive variant: the body atom pinned to last round's delta
    /// rows (atoms before it range over old rows, atoms after it over
    /// all rows). `None` is a full naive rescan.
    delta_atom: Option<usize>,
    /// Fact-index partition point: facts below it are "old" (present
    /// before last round's merge), at or past it are the delta.
    old_len: u32,
    /// Consult the [`FactBase`] argument index for body atoms whose
    /// argument is an already-bound variable (the semi-naive engine;
    /// the naive reference keeps its plain row scans).
    use_index: bool,
    /// Thread-local extension of the snapshot's pool for derived terms.
    scratch: ScratchPool<'a>,
    /// Enumerated candidate terms per sort for unbound head variables:
    /// the shared cache from previous rounds…
    enum_cache: &'a FxHashMap<SortId, Vec<GroundTerm>>,
    /// …plus the entries this clause computed fresh (pure per sort).
    enum_fresh: FxHashMap<SortId, Vec<GroundTerm>>,
    /// Body-match attempts spent by this clause.
    steps: u64,
    /// Step budget remaining at the round's start.
    step_budget: u64,
    refutation: Option<QueryFire>,
    budget_hit: bool,
    /// `budget_hit` was (also) raised by the fact cap: candidates were
    /// dropped, which the semi-naive merge must repair via a dirty
    /// full rescan.
    facts_capped: bool,
    /// Cooperative cancellation token, polled every
    /// [`GUARD_STEP_PERIOD`] join candidates (`None` = never polled).
    guard: Option<&'a Guard>,
    /// The guard tripped; stop matching, the round will be discarded.
    interrupted: bool,
    #[allow(clippy::type_complexity)]
    new_facts: Vec<(PredId, FactArgs, Bind, Vec<usize>)>,
    /// Hash index over `new_facts` (the in-round dedup must not scan).
    new_index: FxHashSet<(PredId, FactArgs)>,
}

impl<'a> Matcher<'a> {
    fn run(&mut self) {
        self.match_body(0, Bind::new(), Vec::new());
    }

    /// The candidate rows for body atom `k` under `bind`: the
    /// argument-indexed posting list when an argument is an
    /// already-bound variable (shortest list wins; a missing list
    /// means no fact can match), the full predicate row otherwise —
    /// then restricted to the variant's old/delta range. Every list is
    /// in ascending fact-index order, so the restriction is a binary
    /// search and the join's emission order is unchanged.
    fn candidates_for(&self, k: usize, bind: &Bind) -> &'a [u32] {
        let atom = &self.clause.body[k];
        let base = self.base;
        let mut list: &'a [u32] = base.pred_row(atom.pred);
        if self.use_index {
            for (pos, pat) in atom.args.iter().enumerate() {
                if let Term::Var(v) = pat {
                    if let Some(id) = bind_get(bind, *v) {
                        let indexed = base.arg_row(atom.pred, pos, id);
                        if indexed.len() < list.len() {
                            list = indexed;
                        }
                    }
                }
            }
        }
        match self.delta_atom {
            None => list,
            Some(i) => {
                let old = self.old_len;
                let split = list.partition_point(|&fi| fi < old);
                match k.cmp(&i) {
                    std::cmp::Ordering::Less => &list[..split],
                    std::cmp::Ordering::Equal => &list[split..],
                    std::cmp::Ordering::Greater => list,
                }
            }
        }
    }

    /// Joins body atoms left to right against the frozen snapshot,
    /// entirely on pooled ids: no term is cloned or reconstructed here.
    fn match_body(&mut self, k: usize, bind: Bind, premises: Vec<usize>) {
        if self.refutation.is_some() || self.budget_hit || self.interrupted {
            return;
        }
        if k == self.clause.body.len() {
            self.finish_constraints(bind, premises);
            return;
        }
        let atom = &self.clause.body[k];
        // The snapshot is never written during the round, so the
        // candidate row can be borrowed across the recursion — the old
        // `&mut`-aliasing clone is gone.
        let base = self.base;
        let candidates: &[u32] = self.candidates_for(k, &bind);
        for &fi in candidates {
            self.steps += 1;
            if self.steps >= self.step_budget {
                self.budget_hit = true;
                return;
            }
            if self.steps.is_multiple_of(GUARD_STEP_PERIOD) {
                if let Some(g) = self.guard {
                    if g.is_cancelled() {
                        self.interrupted = true;
                        return;
                    }
                }
            }
            let fi = fi as usize;
            let mut bind2 = bind.clone();
            let ok = {
                let fact_args = &base.facts[fi].1;
                atom.args
                    .iter()
                    .zip(fact_args)
                    .all(|(pat, id)| match_pooled(&base.pool, pat, *id, &mut bind2))
            };
            if ok {
                let mut premises2 = premises.clone();
                premises2.push(fi);
                self.match_body(k + 1, bind2, premises2);
            }
            if self.refutation.is_some() || self.budget_hit || self.interrupted {
                return;
            }
        }
    }

    /// After the body is matched: the common case — no constraints, all
    /// variables bound — derives the head fact without leaving the
    /// pool; otherwise fall back to the substitution machinery for
    /// constraint folding and free-variable enumeration.
    fn finish_constraints(&mut self, bind: Bind, premises: Vec<usize>) {
        let all_bound = self
            .clause
            .vars
            .vars()
            .all(|v| bind_get(&bind, v).is_some());
        if self.clause.constraints.is_empty() && all_bound {
            self.finish_pooled(bind, premises);
            return;
        }

        // Legacy path. Reconstruct a substitution from the pooled
        // binding (ids here come from body matching, so they are
        // snapshot ids); equalities may bind further variables
        // (clauses of the form `x = S(y) ∧ … → …` carry definitions in
        // constraints).
        let mut sub = Substitution::new();
        for (v, id) in &bind {
            sub.bind(*v, self.base.pool.to_term(*id));
        }
        for c in &self.clause.constraints {
            match c {
                Constraint::Eq(a, b) => {
                    let a = sub.apply_deep(a);
                    let b = sub.apply_deep(b);
                    match ringen_terms::unify(&a, &b) {
                        Ok(u) => sub.compose(&u),
                        Err(_) => return,
                    }
                }
                Constraint::Neq(..) | Constraint::Tester { .. } => {}
            }
        }
        // Bind any variable still free with enumerated ground terms.
        let free: Vec<VarId> = self
            .clause
            .vars
            .vars()
            .filter(|&v| !sub.apply_deep(&Term::var(v)).is_ground())
            .collect();
        self.bind_free(&free, 0, sub, premises);
    }

    /// Pooled head derivation: instantiate head arguments directly as
    /// interned ids (into the scratch extension), check the height
    /// budget from the memoized tables, dedup by id tuple.
    fn finish_pooled(&mut self, bind: Bind, premises: Vec<usize>) {
        let clause = self.clause;
        match &clause.head {
            None => {
                // ⊥ derived. The certificate is built at merge time,
                // against the master pool; stash the instance.
                self.refutation = Some((bind.into_vec(), premises));
            }
            Some(atom) => {
                // Height check *before* interning: rejected heads must
                // not grow the scratch (the old boxed path built a
                // transient term and dropped it).
                for t in &atom.args {
                    match pattern_height(&self.scratch, t, &bind) {
                        Some(h) if h > self.cfg.max_term_height => return,
                        Some(_) => {}
                        None => return,
                    }
                }
                let args: Option<FactArgs> = atom
                    .args
                    .iter()
                    .map(|t| intern_pattern(&mut self.scratch, t, &bind))
                    .collect();
                let Some(args) = args else { return };
                let pred = atom.pred;
                // Snapshot facts only reference snapshot ids, so a
                // tuple containing a scratch id correctly misses here.
                if self.base.find(pred, &args).is_none()
                    && !self.new_index.contains(&(pred, args.clone()))
                {
                    if self.base.len() + self.new_facts.len() >= self.cfg.max_facts {
                        self.budget_hit = true;
                        self.facts_capped = true;
                        return;
                    }
                    self.new_index.insert((pred, args.clone()));
                    self.new_facts.push((pred, args, bind, premises));
                }
            }
        }
    }

    fn bind_free(&mut self, free: &[VarId], k: usize, sub: Substitution, premises: Vec<usize>) {
        if self.refutation.is_some() || self.budget_hit || self.interrupted {
            return;
        }
        if k == free.len() {
            self.finish_ground(sub, premises);
            return;
        }
        let v = free[k];
        let sort = self.clause.vars.sort(v).expect("var in context");
        let cached = self
            .enum_cache
            .get(&sort)
            .or_else(|| self.enum_fresh.get(&sort))
            .cloned();
        let candidates = match cached {
            Some(v) => v,
            None => {
                let v = terms_by_size(&self.sys.sig, sort, self.cfg.free_var_candidates);
                self.enum_fresh.insert(sort, v.clone());
                v
            }
        };
        for t in candidates {
            self.steps += 1;
            if self.steps >= self.step_budget {
                self.budget_hit = true;
                return;
            }
            if self.steps.is_multiple_of(GUARD_STEP_PERIOD) {
                if let Some(g) = self.guard {
                    if g.is_cancelled() {
                        self.interrupted = true;
                        return;
                    }
                }
            }
            let mut sub2 = sub.clone();
            let mut single = Substitution::new();
            single.bind(v, Term::from(&t));
            sub2.compose(&single);
            self.bind_free(free, k + 1, sub2, premises.clone());
            if self.refutation.is_some() || self.budget_hit || self.interrupted {
                return;
            }
        }
    }

    /// End of the legacy path: every variable is ground under `sub`.
    /// Constraints are re-checked groundly, then the binding and head
    /// arguments are interned into the pool.
    fn finish_ground(&mut self, sub: Substitution, premises: Vec<usize>) {
        // Check remaining (now ground) constraints.
        for c in &self.clause.constraints {
            match c {
                Constraint::Eq(a, b) => {
                    // Already folded into the substitution; re-check
                    // groundly for safety.
                    let (Some(a), Some(b)) =
                        (sub.apply_deep(a).to_ground(), sub.apply_deep(b).to_ground())
                    else {
                        return;
                    };
                    if a != b {
                        return;
                    }
                }
                Constraint::Neq(a, b) => {
                    let (Some(a), Some(b)) =
                        (sub.apply_deep(a).to_ground(), sub.apply_deep(b).to_ground())
                    else {
                        return;
                    };
                    if a == b {
                        return;
                    }
                }
                Constraint::Tester {
                    ctor,
                    term,
                    positive,
                } => {
                    let Some(g) = sub.apply_deep(term).to_ground() else {
                        return;
                    };
                    if (g.func() == *ctor) != *positive {
                        return;
                    }
                }
            }
        }
        // Height-check the instantiated head transiently (boxed, then
        // dropped — as the pre-pool code did) before interning the
        // binding into the scratch extension.
        let clause = self.clause;
        if let Some(atom) = &clause.head {
            for t in &atom.args {
                let Some(g) = sub.apply_deep(t).to_ground() else {
                    return;
                };
                if g.height() > self.cfg.max_term_height {
                    return;
                }
            }
        }
        let binding: Bind = clause
            .vars
            .vars()
            .filter_map(|v| {
                sub.apply_deep(&Term::var(v))
                    .to_ground()
                    .map(|g| (v, self.scratch.intern_term(&g)))
            })
            .collect();
        self.finish_pooled(binding, premises);
    }
}

/// Extracts the sub-derivation ending in the ⊥ step. The certificate
/// gets its own pool dump: every term the derivation references is
/// [`TermPool::import`]ed once (shared subterms stay shared), instead
/// of re-boxing a [`GroundTerm`] tree per step. The binding must
/// already be in master-pool ids (the merge re-interns scratch
/// bindings before calling this).
fn build_refutation(
    base: &FactBase,
    query_clause: usize,
    binding: &[(VarId, TermId)],
    premises: Vec<usize>,
) -> Refutation {
    let mut pool = TermPool::new();
    let mut memo: Vec<Option<TermId>> = Vec::new();
    // Collect all transitively needed facts.
    let mut needed: Vec<usize> = Vec::new();
    let mut stack = premises.clone();
    while let Some(i) = stack.pop() {
        if !needed.contains(&i) {
            needed.push(i);
            stack.extend(base.provenance[i].2.iter().copied());
        }
    }
    needed.sort();
    let renumber: FxHashMap<usize, usize> =
        needed.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    let mut steps: Vec<PooledStep> = Vec::with_capacity(needed.len() + 1);
    for &i in &needed {
        let (clause, bind, prem) = &base.provenance[i];
        let (pred, args) = &base.facts[i];
        steps.push(PooledStep {
            clause: *clause,
            binding: bind
                .iter()
                .map(|(v, id)| (*v, pool.import(&base.pool, &mut memo, *id)))
                .collect(),
            premises: prem.iter().map(|p| renumber[p]).collect(),
            fact: Some((
                *pred,
                args.iter()
                    .map(|a| pool.import(&base.pool, &mut memo, *a))
                    .collect(),
            )),
        });
    }
    steps.push(PooledStep {
        clause: query_clause,
        binding: binding
            .iter()
            .map(|(v, id)| (*v, pool.import(&base.pool, &mut memo, *id)))
            .collect(),
        premises: premises.iter().map(|p| renumber[p]).collect(),
        fact: None,
    });
    Refutation { pool, steps }
}

/// Why a refutation failed to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefutationError {
    /// A step references a clause index outside the system.
    BadClause(usize),
    /// The binding does not ground every clause variable.
    UnboundVariable(usize),
    /// A ground constraint of the instantiated clause is false.
    FalseConstraint(usize),
    /// A premise index is out of range or derives the wrong fact.
    BadPremise(usize),
    /// The instantiated head disagrees with the recorded fact.
    WrongFact(usize),
    /// The final step does not apply a query clause.
    NoQuery,
}

impl fmt::Display for RefutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefutationError::BadClause(i) => write!(f, "step {i}: clause index out of range"),
            RefutationError::UnboundVariable(i) => {
                write!(f, "step {i}: binding leaves a clause variable free")
            }
            RefutationError::FalseConstraint(i) => {
                write!(f, "step {i}: instantiated constraint is false")
            }
            RefutationError::BadPremise(i) => write!(f, "step {i}: premise mismatch"),
            RefutationError::WrongFact(i) => {
                write!(f, "step {i}: instantiated head differs from recorded fact")
            }
            RefutationError::NoQuery => write!(f, "final step is not a query clause"),
        }
    }
}

impl Error for RefutationError {}

/// Replays a refutation against the system from scratch. Every UNSAT
/// answer the solver returns has passed this check.
///
/// # Errors
///
/// Returns the first [`RefutationError`] encountered.
pub fn check_refutation(sys: &ChcSystem, r: &Refutation) -> Result<(), RefutationError> {
    let mut derived: Vec<Fact> = Vec::with_capacity(r.len());
    for (si, step) in r.boxed_steps().enumerate() {
        let step = &step;
        let clause = sys
            .clauses
            .get(step.clause)
            .ok_or(RefutationError::BadClause(si))?;
        let bind: FxHashMap<VarId, &GroundTerm> =
            step.binding.iter().map(|(v, g)| (*v, g)).collect();
        let inst = |t: &Term| -> Option<GroundTerm> { instantiate(t, &bind) };
        // Variables may be missing from the binding only if unused.
        for c in &clause.constraints {
            let ok = match c {
                Constraint::Eq(a, b) => {
                    let (a, b) = (inst(a), inst(b));
                    match (a, b) {
                        (Some(a), Some(b)) => a == b,
                        _ => return Err(RefutationError::UnboundVariable(si)),
                    }
                }
                Constraint::Neq(a, b) => {
                    let (a, b) = (inst(a), inst(b));
                    match (a, b) {
                        (Some(a), Some(b)) => a != b,
                        _ => return Err(RefutationError::UnboundVariable(si)),
                    }
                }
                Constraint::Tester {
                    ctor,
                    term,
                    positive,
                } => match inst(term) {
                    Some(g) => (g.func() == *ctor) == *positive,
                    None => return Err(RefutationError::UnboundVariable(si)),
                },
            };
            if !ok {
                return Err(RefutationError::FalseConstraint(si));
            }
        }
        if step.premises.len() != clause.body.len() {
            return Err(RefutationError::BadPremise(si));
        }
        for (atom, &pi) in clause.body.iter().zip(&step.premises) {
            if pi >= si {
                return Err(RefutationError::BadPremise(si));
            }
            let expected =
                instantiate_atom(atom, &bind).ok_or(RefutationError::UnboundVariable(si))?;
            if derived[pi] != expected {
                return Err(RefutationError::BadPremise(si));
            }
        }
        match (&clause.head, &step.fact) {
            (None, None) => {
                if si + 1 != r.len() {
                    return Err(RefutationError::NoQuery);
                }
                return Ok(());
            }
            (Some(atom), Some(fact)) => {
                let expected =
                    instantiate_atom(atom, &bind).ok_or(RefutationError::UnboundVariable(si))?;
                if &expected != fact {
                    return Err(RefutationError::WrongFact(si));
                }
                derived.push(fact.clone());
            }
            _ => return Err(RefutationError::WrongFact(si)),
        }
    }
    Err(RefutationError::NoQuery)
}

fn instantiate(t: &Term, bind: &FxHashMap<VarId, &GroundTerm>) -> Option<GroundTerm> {
    match t {
        Term::Var(v) => bind.get(v).map(|g| (*g).clone()),
        Term::App(f, args) => {
            let args: Option<Vec<GroundTerm>> = args.iter().map(|a| instantiate(a, bind)).collect();
            Some(GroundTerm::app(*f, args?))
        }
    }
}

fn instantiate_atom(atom: &Atom, bind: &FxHashMap<VarId, &GroundTerm>) -> Option<Fact> {
    let args: Option<Vec<GroundTerm>> = atom.args.iter().map(|t| instantiate(t, bind)).collect();
    Some((atom.pred, args?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::parse_str;

    fn unsat_even() -> ChcSystem {
        // even(Z), even(x) → even(S(S(x))), even(S(S(Z))) → ⊥: unsat.
        parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (=> (even (S (S Z))) false))
            "#,
        )
        .unwrap()
    }

    #[test]
    fn refutes_and_replays() {
        let sys = unsat_even();
        let (outcome, _) = saturate(&sys, &SaturationConfig::default());
        let r = match outcome {
            SaturationOutcome::Refuted(r) => r,
            other => panic!("expected refutation, got {other:?}"),
        };
        assert!(check_refutation(&sys, &r).is_ok());
        // Derivation: even(Z), even(S(S(Z))), ⊥.
        assert_eq!(r.len(), 3);
        // The certificate is pooled: one dump holding exactly the
        // shared chain Z, S(Z), S(S(Z)) — not one boxed tree per step.
        assert_eq!(r.pool.len(), 3);
        // The boxed view reconstructs every step coherently.
        let boxed: Vec<RefStep> = r.boxed_steps().collect();
        assert_eq!(boxed.len(), r.len());
        assert!(boxed[0].fact.is_some() && boxed[2].fact.is_none());
        assert_eq!(boxed[2].premises, vec![1]);
        // Semantic equality is pool-layout independent.
        assert_eq!(r.clone(), r);
    }

    #[test]
    fn tampered_refutation_is_rejected() {
        let sys = unsat_even();
        let (outcome, _) = saturate(&sys, &SaturationConfig::default());
        let mut r = match outcome {
            SaturationOutcome::Refuted(r) => r,
            other => panic!("expected refutation, got {other:?}"),
        };
        // Point the final step's premise at the wrong fact.
        let last = r.steps.len() - 1;
        r.steps[last].premises[0] = 0;
        assert!(check_refutation(&sys, &r).is_err());
    }

    #[test]
    fn sat_system_saturates_or_budgets() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap();
        let cfg = SaturationConfig {
            max_facts: 50,
            ..SaturationConfig::default()
        };
        let (outcome, stats) = saturate(&sys, &cfg);
        match outcome {
            SaturationOutcome::Budget(base) | SaturationOutcome::Saturated(base) => {
                assert!(!base.is_empty());
                let even = sys.rels.by_name("even").unwrap();
                assert!(base.of_pred(even).count() > 3);
                // Interned facts share subterms: S^{2k}(Z) facts need
                // only one chain of nodes in the pool.
                assert!(base.pool().len() <= 2 * base.len() + 2);
            }
            SaturationOutcome::Refuted(_) => panic!("even system is satisfiable"),
            SaturationOutcome::Interrupted(_) => panic!("unguarded saturate cannot trip"),
        }
        assert!(stats.steps > 0);
        assert!(stats.pooled_terms > 0);
    }

    #[test]
    fn diseq_constraints_filter_matches() {
        // p(Z), p(x) ∧ x ≠ Z → ⊥ is satisfiable; with p(S(Z)) it's not.
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat) Bool)
            (assert (p Z))
            (assert (p (S Z)))
            (assert (forall ((x Nat)) (=> (and (p x) (distinct x Z)) false)))
            "#,
        )
        .unwrap();
        let (outcome, _) = saturate(&sys, &SaturationConfig::default());
        let r = match outcome {
            SaturationOutcome::Refuted(r) => r,
            other => panic!("expected refutation, got {other:?}"),
        };
        assert!(check_refutation(&sys, &r).is_ok());
    }

    #[test]
    fn fact_base_probes_ground_facts() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            "#,
        )
        .unwrap();
        let cfg = SaturationConfig {
            max_facts: 8,
            ..SaturationConfig::default()
        };
        let (outcome, _) = saturate(&sys, &cfg);
        let base = match outcome {
            SaturationOutcome::Budget(b) | SaturationOutcome::Saturated(b) => b,
            SaturationOutcome::Refuted(_) => panic!("even system is satisfiable"),
            SaturationOutcome::Interrupted(_) => panic!("unguarded saturate cannot trip"),
        };
        let even = sys.rels.by_name("even").unwrap();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let two = GroundTerm::iterate(s, GroundTerm::leaf(z), 2);
        let one = GroundTerm::iterate(s, GroundTerm::leaf(z), 1);
        assert!(base.contains(&(even, vec![GroundTerm::leaf(z)])));
        assert!(base.contains(&(even, vec![two])));
        assert!(!base.contains(&(even, vec![one])));
        // Boxed and pooled views agree.
        for (i, fact) in base.ground_facts().enumerate() {
            assert_eq!(base.ground_fact(i), fact);
            assert!(base.contains(&fact));
        }
        assert_eq!(base.pooled_facts().count(), base.len());
    }
}
