//! Regular invariants: finite models as tree tuple automata (Theorem 1).
//!
//! A finite model `ℳ` of the EUF-reduced system induces one shared
//! transition table (`τ f(x₁…xₙ) = ℳ(f)(x₁…xₙ)`, states = domain
//! elements) and, per predicate `P`, the final-state set `ℳ(P)`. The
//! resulting [`RegularInvariant`] *is* the safe inductive invariant the
//! paper's tool returns.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ringen_automata::{Dfta, StateId, TupleAutomaton};
use ringen_chc::{ChcSystem, PredId};
use ringen_fmf::FiniteModel;
use ringen_terms::{FuncKind, GroundTerm, SortId};

/// A regular (tree-automaton) interpretation of every uninterpreted
/// predicate of a CHC system — the `Reg` representation class.
#[derive(Debug, Clone)]
pub struct RegularInvariant {
    dfta: Dfta,
    /// `state_of[sort.index()][element]` is the automaton state of that
    /// model element.
    state_of: Vec<Vec<StateId>>,
    /// Final tuples per predicate.
    finals: BTreeMap<PredId, BTreeSet<Vec<StateId>>>,
    /// Predicate domains, for display and acceptance.
    domains: BTreeMap<PredId, Vec<SortId>>,
}

impl RegularInvariant {
    /// Converts a finite model into the invariant of Theorem 1. Only
    /// constructor symbols enter the transition table: selectors were
    /// eliminated by preprocessing and free symbols have no place in a
    /// Herbrand invariant.
    pub fn from_model(sys: &ChcSystem, model: &FiniteModel) -> Self {
        let sig = &sys.sig;
        let mut dfta = Dfta::new();
        let mut state_of: Vec<Vec<StateId>> = Vec::with_capacity(sig.sort_count());
        for sort in sig.sorts() {
            let n = model.size_of(sort);
            state_of.push((0..n).map(|_| dfta.add_state(sort)).collect());
        }
        for f in sig.funcs() {
            let decl = sig.func(f);
            if decl.kind != FuncKind::Constructor {
                continue;
            }
            let dims: Vec<usize> = decl.domain.iter().map(|&s| model.size_of(s)).collect();
            for args in product(&dims) {
                let target = model.apply(sig, f, &args);
                let arg_states: Vec<StateId> = args
                    .iter()
                    .zip(&decl.domain)
                    .map(|(&a, &s)| state_of[s.index()][a])
                    .collect();
                dfta.add_transition(f, arg_states, state_of[decl.range.index()][target]);
            }
        }
        let mut finals = BTreeMap::new();
        let mut domains = BTreeMap::new();
        for p in sys.rels.iter() {
            let domain = sys.rels.decl(p).domain.clone();
            let set: BTreeSet<Vec<StateId>> = model
                .pred_table(p)
                .map(|tuple| {
                    tuple
                        .iter()
                        .zip(&domain)
                        .map(|(&a, &s)| state_of[s.index()][a])
                        .collect()
                })
                .collect();
            finals.insert(p, set);
            domains.insert(p, domain);
        }
        RegularInvariant {
            dfta,
            state_of,
            finals,
            domains,
        }
    }

    /// The shared transition table.
    pub fn dfta(&self) -> &Dfta {
        &self.dfta
    }

    /// The predicates interpreted by this invariant.
    pub fn preds(&self) -> impl Iterator<Item = PredId> + '_ {
        self.finals.keys().copied()
    }

    /// Final state tuples of a predicate.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not interpreted by this invariant.
    pub fn finals(&self, p: PredId) -> &BTreeSet<Vec<StateId>> {
        &self.finals[&p]
    }

    /// Mutable access to the final tuples of a predicate — useful for
    /// building invariants by hand (examples, weakening experiments) and
    /// for negative tests of the inductiveness checker.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not interpreted by this invariant.
    pub fn finals_mut(&mut self, p: PredId) -> &mut BTreeSet<Vec<StateId>> {
        self.finals.get_mut(&p).expect("predicate is interpreted")
    }

    /// The automaton state of a model element.
    pub fn state_of(&self, sort: SortId, element: usize) -> StateId {
        self.state_of[sort.index()][element]
    }

    /// Builds the standalone tuple automaton of one predicate
    /// (Definition 2/3), sharing no structure with the invariant.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not interpreted by this invariant.
    pub fn automaton(&self, p: PredId) -> TupleAutomaton {
        let mut a = TupleAutomaton::new(self.dfta.clone(), self.domains[&p].clone());
        for tuple in &self.finals[&p] {
            a.add_final(tuple.clone());
        }
        a
    }

    /// Whether the invariant holds of a ground tuple: runs the shared
    /// DFTA on every component and looks the state tuple up (Def. 3).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not interpreted by this invariant.
    pub fn holds(&self, p: PredId, terms: &[GroundTerm]) -> bool {
        let states: Option<Vec<StateId>> = terms.iter().map(|t| self.dfta.run(t)).collect();
        match states {
            Some(tuple) => self.finals[&p].contains(&tuple),
            None => false,
        }
    }

    /// Total number of automaton states (= sum of model sort
    /// cardinalities; the x-axis of the paper's Figure 6).
    pub fn state_count(&self) -> usize {
        self.dfta.state_count()
    }

    /// Renders the invariant with sort/predicate names.
    pub fn display<'a>(&'a self, sys: &'a ChcSystem) -> DisplayInvariant<'a> {
        DisplayInvariant { inv: self, sys }
    }
}

/// Enumerates all index tuples below the per-position bounds.
fn product(dims: &[usize]) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    for &d in dims {
        let mut next = Vec::with_capacity(out.len() * d);
        for prefix in &out {
            for i in 0..d {
                let mut t = prefix.clone();
                t.push(i);
                next.push(t);
            }
        }
        out = next;
    }
    out
}

/// Human-readable rendering of a [`RegularInvariant`].
#[derive(Debug)]
pub struct DisplayInvariant<'a> {
    inv: &'a RegularInvariant,
    sys: &'a ChcSystem,
}

impl fmt::Display for DisplayInvariant<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.inv.dfta.display(&self.sys.sig))?;
        for (p, finals) in &self.inv.finals {
            let name = &self.sys.rels.decl(*p).name;
            write!(f, "finals({name}) = {{")?;
            for (i, tuple) in finals.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "(")?;
                for (j, s) in tuple.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "q{}", s.index())?;
                }
                write!(f, ")")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_chc::parse_str;
    use ringen_fmf::{find_model, FinderConfig};
    use ringen_terms::GroundTerm;

    fn even_system() -> ChcSystem {
        parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap()
    }

    #[test]
    fn even_model_gives_the_papers_automaton() {
        let sys = even_system();
        let (outcome, _) = find_model(&sys, &FinderConfig::default()).unwrap();
        let model = outcome.model().expect("even has a 2-element model");
        let inv = RegularInvariant::from_model(&sys, &model);
        assert_eq!(inv.state_count(), 2);
        let even = sys.rels.by_name("even").unwrap();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        for n in 0..20usize {
            let t = GroundTerm::iterate(s, GroundTerm::leaf(z), n);
            assert_eq!(inv.holds(even, &[t]), n % 2 == 0, "n = {n}");
        }
        // The per-predicate automaton agrees.
        let a = inv.automaton(even);
        let four = GroundTerm::iterate(s, GroundTerm::leaf(z), 4);
        assert!(a.accepts(&[four]));
    }

    #[test]
    fn product_enumerates_lexicographically() {
        assert_eq!(product(&[]), vec![Vec::<usize>::new()]);
        assert_eq!(product(&[2, 2]).len(), 4);
        assert_eq!(product(&[3])[2], vec![2]);
    }
}
