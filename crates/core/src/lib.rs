//! `ringen-core` — regular invariant inference for CHCs over algebraic
//! data types.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Beyond the Elementary Representations of Program Invariants over
//! Algebraic Data Types"* (PLDI 2021): a solver that infers **regular**
//! (tree-automaton) inductive invariants by reducing CHC satisfiability
//! modulo ADTs to finite-model finding over EUF (Figure 1 / §4).
//!
//! * [`preprocess`] — §4.4 disequality elimination, §4.5
//!   tester/selector elimination, Theorem 5's equality elimination;
//! * [`solve`] — the end-to-end solver: UNSAT with a replayable
//!   [`Refutation`], SAT with a [`RegularInvariant`] re-verified by the
//!   decidable inductiveness check ([`check_inductive`]);
//! * [`definability`] — executable pumping lemmas (§6) and bounded
//!   regular-definability search (§7).
//!
//! # Example
//!
//! ```
//! use ringen_core::{solve, Answer, RingenConfig};
//!
//! let sys = ringen_chc::parse_str(r#"
//!   (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
//!   (declare-fun even (Nat) Bool)
//!   (assert (even Z))
//!   (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
//!   (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
//! "#)?;
//! let (answer, stats) = solve(&sys, &RingenConfig::default());
//! match answer {
//!     Answer::Sat(sat) => {
//!         // The paper's two-state automaton from Example 1.
//!         assert_eq!(sat.invariant.state_count(), 2);
//!     }
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! assert_eq!(stats.model_size, Some(2));
//! # Ok::<(), ringen_chc::ParseError>(())
//! ```

pub mod definability;
pub mod inductive;
pub mod invariant;
pub mod portfolio;
pub mod preprocess;
pub mod saturation;
pub mod solve;

pub use inductive::{
    check_inductive, check_inductive_guarded, check_inductive_with, InductiveCheck, Violation,
};
pub use invariant::{DisplayInvariant, RegularInvariant};
pub use preprocess::{preprocess, PreprocessStats, Preprocessed};
pub use ringen_parallel::{
    deadline_ms_from_env, FaultPlan, FaultStats, Faults, Guard, Poller, Recorder, RecorderLimits,
    SharedRecorder, Span, SpanHandle,
};
pub use saturation::{
    check_refutation, saturate, saturate_guarded, FactBase, Refutation, RefutationError,
    SaturationConfig, SaturationOutcome,
};
pub use solve::{
    solve, solve_guarded, solve_with_store, Answer, Divergence, RingenConfig, SatAnswer, SolveStats,
};
