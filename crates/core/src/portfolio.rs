//! A panic-isolated portfolio racer over guarded solver engines.
//!
//! §8 of the paper conjectures that "a hybrid approach to infer
//! invariants in parts by automata and in parts by FOL should exhibit
//! the best performance"; the FMF companion paper runs its engines as a
//! wall-clock race rather than a chain. This module is the race
//! harness: each entrant is a [`Engine`] — a name plus a closure that
//! accepts a [`Guard`] and cooperatively returns an [`EngineVerdict`] —
//! and [`race`] runs them on a [`Pool`], cancels the losers the moment
//! one entrant answers SAT or UNSAT, catches per-engine panics, and
//! records every entrant's fate in a [`PortfolioStats`].
//!
//! The racer is *generic* in the engine payload: `ringen-core` sits
//! below the template solvers in the dependency order, so the concrete
//! elem/sizeelem/regelem/FMF wiring lives in the facade crate
//! (`ringen::portfolio`).
//!
//! Degenerate thread counts degrade gracefully: with one worker the
//! race is the sequential hybrid chain — entrants run in order, and
//! once one wins, the rest observe the tripped race token on their
//! first poll and report [`EngineStatus::Cancelled`] without doing any
//! work.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ringen_obs::report::Section;
use ringen_parallel::{panic_message, Guard, ParallelConfig, Pool};

/// How the racer classifies an engine's answer. `Sat`/`Unsat` are
/// *definitive* — the first of either ends the race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineVerdict {
    /// The engine certified the system safe.
    Sat,
    /// The engine refuted the system.
    Unsat,
    /// The engine exhausted its own budgets.
    Unknown,
    /// The engine observed its guard trip and stopped cooperatively.
    Interrupted,
}

impl EngineVerdict {
    /// `true` for [`EngineVerdict::Sat`] and [`EngineVerdict::Unsat`]:
    /// the verdicts that win a race.
    pub fn is_definitive(self) -> bool {
        matches!(self, EngineVerdict::Sat | EngineVerdict::Unsat)
    }
}

/// The boxed entry point an [`Engine`] runs when its slot is claimed.
pub type EngineFn<'a, T> = Box<dyn FnOnce(&Guard) -> (EngineVerdict, T) + Send + 'a>;

/// A race entrant: a display name plus a guarded, run-once solve.
///
/// The closure must honor its [`Guard`]: return
/// [`EngineVerdict::Interrupted`] promptly once the token trips. It may
/// panic — the racer isolates that to an [`EngineStatus::Panicked`]
/// report.
pub struct Engine<'a, T> {
    name: &'static str,
    run: EngineFn<'a, T>,
}

impl<'a, T> Engine<'a, T> {
    /// Wraps a guarded solve as a race entrant.
    pub fn new(
        name: &'static str,
        run: impl FnOnce(&Guard) -> (EngineVerdict, T) + Send + 'a,
    ) -> Self {
        Engine {
            name,
            run: Box::new(run),
        }
    }

    /// The entrant's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// An entrant's fate, as recorded in [`PortfolioStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStatus {
    /// First to return a definitive verdict.
    Won,
    /// Returned a definitive verdict, but after the winner claimed.
    Lost,
    /// Observed the race token trip (a sibling won, or the caller
    /// cancelled) and stopped cooperatively.
    Cancelled,
    /// Observed the race token trip because the per-race deadline
    /// passed before anyone won.
    TimedOut,
    /// Panicked; the panic was caught and the race continued.
    Panicked,
    /// Ran to completion without a definitive verdict (own budgets
    /// exhausted).
    Unknown,
}

/// One entrant's line in the race report.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The entrant's display name.
    pub name: &'static str,
    /// The entrant's fate.
    pub status: EngineStatus,
    /// The verdict it returned; `None` if it panicked.
    pub verdict: Option<EngineVerdict>,
    /// Wall-clock time the entrant ran for.
    pub elapsed: Duration,
    /// The panic message, for [`EngineStatus::Panicked`].
    pub panic: Option<String>,
}

/// The full race report: one [`EngineReport`] per entrant, in entry
/// order, plus the winner (if any) and total wall-clock.
#[derive(Debug, Clone)]
pub struct PortfolioStats {
    /// Per-entrant reports, in the order the engines were passed in.
    pub engines: Vec<EngineReport>,
    /// Index (into `engines`) of the winner, if the race was decided.
    pub winner: Option<usize>,
    /// Total wall-clock for the race.
    pub elapsed: Duration,
    /// The per-race deadline that was armed, if any.
    pub deadline: Option<Duration>,
}

impl PortfolioStats {
    /// The winner's report, if the race was decided.
    pub fn winner_report(&self) -> Option<&EngineReport> {
        self.winner.map(|i| &self.engines[i])
    }

    /// The report for the named entrant.
    pub fn report(&self, name: &str) -> Option<&EngineReport> {
        self.engines.iter().find(|r| r.name == name)
    }

    /// How many entrants were cancelled by a winning sibling (or an
    /// outer cancel).
    pub fn cancelled(&self) -> usize {
        self.count(EngineStatus::Cancelled)
    }

    /// How many entrants hit the per-race deadline.
    pub fn timed_out(&self) -> usize {
        self.count(EngineStatus::TimedOut)
    }

    /// How many entrants panicked (and were isolated).
    pub fn panicked(&self) -> usize {
        self.count(EngineStatus::Panicked)
    }

    fn count(&self, status: EngineStatus) -> usize {
        self.engines.iter().filter(|r| r.status == status).count()
    }

    /// Flattens the race into report [`Section`]s: one `race` section
    /// plus one `engine.<name>` section per entrant. Shared by the CLI
    /// report path and the server's per-query reports, so the two
    /// documents stay field-for-field compatible.
    pub fn sections(&self) -> Vec<Section> {
        let ms = |d: Duration| i64::try_from(d.as_millis()).unwrap_or(i64::MAX);
        let mut race = Section::new("race")
            .entry("entrants", self.engines.len() as i64)
            .entry("elapsed_ms", ms(self.elapsed))
            .entry(
                "winner",
                self.winner.map_or(-1, |i| i64::try_from(i).unwrap_or(-1)),
            );
        if let Some(d) = self.deadline {
            race = race.entry("deadline_ms", ms(d));
        }
        let mut out = vec![race];
        for (i, e) in self.engines.iter().enumerate() {
            out.push(
                Section::new(format!("engine.{}", e.name))
                    .entry("elapsed_ms", ms(e.elapsed))
                    .entry("won", i64::from(self.winner == Some(i)))
                    .entry(
                        "definitive",
                        i64::from(e.verdict.as_ref().is_some_and(|v| v.is_definitive())),
                    )
                    .entry("panicked", i64::from(e.panic.is_some())),
            );
        }
        out
    }
}

/// Race-level knobs.
#[derive(Debug, Clone, Default)]
pub struct RaceConfig {
    /// Wall-clock budget for the whole race; `None` races unbounded.
    pub deadline: Option<Duration>,
    /// Worker pool for the entrants. One thread degenerates to the
    /// sequential hybrid chain.
    pub parallel: ParallelConfig,
}

impl RaceConfig {
    /// Reads `RINGEN_DEADLINE_MS` and `RINGEN_THREADS` (see
    /// `ENVIRONMENT.md` at the workspace root).
    pub fn from_env() -> Self {
        RaceConfig {
            deadline: ringen_parallel::deadline_ms_from_env().map(Duration::from_millis),
            parallel: ParallelConfig::from_env(),
        }
    }
}

/// The race's overall outcome.
#[derive(Debug)]
pub enum RaceOutcome<T> {
    /// An entrant returned a definitive verdict first; `value` is its
    /// payload and `engine` indexes [`PortfolioStats::engines`].
    Decided {
        /// Index of the winning entrant.
        engine: usize,
        /// The winning verdict ([`EngineVerdict::Sat`] or
        /// [`EngineVerdict::Unsat`]).
        verdict: EngineVerdict,
        /// The winning entrant's payload.
        value: T,
    },
    /// Every entrant finished under its own power without a definitive
    /// verdict.
    Undecided,
    /// The deadline (or an outer cancel) cut the race short before any
    /// entrant could decide. The per-engine reports still carry every
    /// partial verdict — the "best partial answer" of a bounded race.
    Interrupted,
}

struct RunRecord<T> {
    verdict: Option<EngineVerdict>,
    value: Option<T>,
    elapsed: Duration,
    panic: Option<String>,
}

/// Races `engines` under `guard`; first definitive SAT/UNSAT cancels
/// the rest. Never panics on an entrant's behalf: worker panics are
/// caught per engine and isolated into the stats.
pub fn race<T: Send>(
    engines: Vec<Engine<'_, T>>,
    cfg: &RaceConfig,
    guard: &Guard,
) -> (RaceOutcome<T>, PortfolioStats) {
    let start = Instant::now();
    let race_guard = match cfg.deadline {
        Some(d) => guard.child_with_deadline(d),
        None => guard.child(),
    };
    let rec = guard.recorder().clone();
    let mut race_span = rec.span("race");
    race_span.note("entrants", engines.len() as i64);
    // Entrant spans open on worker threads but nest under the race
    // span, so the race renders as one timeline row per entrant.
    let race_handle = race_span.handle();
    let names: Vec<&'static str> = engines.iter().map(|e| e.name).collect();
    // Each slot is taken exactly once by the pool job that claims it;
    // the Mutex is only there to move the FnOnce out of the shared
    // item list.
    let slots: Vec<Mutex<Option<Engine<'_, T>>>> =
        engines.into_iter().map(|e| Mutex::new(Some(e))).collect();
    let winner: Mutex<Option<usize>> = Mutex::new(None);

    let pool = Pool::persistent(&cfg.parallel);
    let mut records: Vec<RunRecord<T>> = pool.map_items(&slots, |i, slot| {
        let engine = slot
            .lock()
            .expect("engine slot lock")
            .take()
            .expect("each engine runs exactly once");
        let child = race_guard.child();
        // The entrant span closes when this job returns — the panic
        // is caught *inside* the job, so a crashed entrant still
        // records its lifetime (with every engine-internal span
        // closed by the unwind itself).
        let mut span = rec.span_under(engine.name, race_handle);
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| (engine.run)(&child)));
        let elapsed = t0.elapsed();
        match outcome {
            Ok((verdict, value)) => {
                if verdict.is_definitive() {
                    let mut w = winner.lock().expect("winner lock");
                    if w.is_none() {
                        *w = Some(i);
                        // Losers observe this on their next poll and
                        // come home as Interrupted.
                        race_guard.cancel();
                    }
                }
                span.note_str(
                    "verdict",
                    match verdict {
                        EngineVerdict::Sat => "sat",
                        EngineVerdict::Unsat => "unsat",
                        EngineVerdict::Unknown => "unknown",
                        EngineVerdict::Interrupted => "interrupted",
                    },
                );
                RunRecord {
                    verdict: Some(verdict),
                    value: Some(value),
                    elapsed,
                    panic: None,
                }
            }
            Err(payload) => {
                span.note_str("verdict", "panicked");
                RunRecord {
                    verdict: None,
                    value: None,
                    elapsed,
                    panic: Some(panic_message(payload.as_ref())),
                }
            }
        }
    });

    let won = *winner.lock().expect("winner lock");
    if let Some(i) = won {
        race_span.note_str("winner", names[i]);
    }
    let deadline_passed = race_guard.deadline().is_some_and(|at| Instant::now() >= at);
    let reports: Vec<EngineReport> = records
        .iter()
        .enumerate()
        .map(|(i, rec)| EngineReport {
            name: names[i],
            status: match rec.verdict {
                None => EngineStatus::Panicked,
                Some(v) if v.is_definitive() => {
                    if won == Some(i) {
                        EngineStatus::Won
                    } else {
                        EngineStatus::Lost
                    }
                }
                Some(EngineVerdict::Unknown) => EngineStatus::Unknown,
                Some(EngineVerdict::Interrupted) => {
                    if won.is_some() {
                        EngineStatus::Cancelled
                    } else if deadline_passed {
                        EngineStatus::TimedOut
                    } else {
                        EngineStatus::Cancelled
                    }
                }
                Some(_) => unreachable!("definitive verdicts matched above"),
            },
            verdict: rec.verdict,
            elapsed: rec.elapsed,
            panic: rec.panic.clone(),
        })
        .collect();

    let outcome = match won {
        Some(i) => {
            let rec = &mut records[i];
            RaceOutcome::Decided {
                engine: i,
                verdict: rec.verdict.expect("winner has a verdict"),
                value: rec.value.take().expect("winner has a payload"),
            }
        }
        // `Interrupted` is reserved for *race-level* cancellation (the
        // deadline or an outer cancel tripped the shared token) — the
        // caller may retry those. An entrant whose own child token
        // tripped (an injected fault, an engine-internal bail) without
        // the race being cancelled is just another loser: with every
        // entrant home and no decision, the race is definitively
        // `Undecided`, never a winner-slot hang.
        None if race_guard.is_cancelled()
            && records
                .iter()
                .any(|r| r.verdict == Some(EngineVerdict::Interrupted)) =>
        {
            RaceOutcome::Interrupted
        }
        None => RaceOutcome::Undecided,
    };
    let stats = PortfolioStats {
        engines: reports,
        winner: won,
        elapsed: start.elapsed(),
        deadline: cfg.deadline,
    };
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringen_parallel::Poller;

    fn threads(n: usize) -> RaceConfig {
        RaceConfig {
            deadline: None,
            parallel: ParallelConfig::with_threads(n),
        }
    }

    /// An entrant that spins until its guard trips.
    fn diverging(name: &'static str) -> Engine<'static, u32> {
        Engine::new(name, |g: &Guard| {
            let mut poller = Poller::with_period(g, 8);
            loop {
                if poller.poll() {
                    return (EngineVerdict::Interrupted, 0);
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        })
    }

    #[test]
    fn winner_cancels_the_divergent_sibling() {
        let engines = vec![
            Engine::new("fast", |_: &Guard| (EngineVerdict::Sat, 7)),
            diverging("slow"),
        ];
        let (outcome, stats) = race(engines, &threads(2), &Guard::new());
        match outcome {
            RaceOutcome::Decided {
                engine,
                verdict,
                value,
            } => {
                assert_eq!(engine, 0);
                assert_eq!(verdict, EngineVerdict::Sat);
                assert_eq!(value, 7);
            }
            other => panic!("expected Decided, got {other:?}"),
        }
        assert_eq!(stats.winner, Some(0));
        assert_eq!(stats.engines[0].status, EngineStatus::Won);
        assert_eq!(stats.engines[1].status, EngineStatus::Cancelled);
        assert_eq!(stats.cancelled(), 1);
    }

    #[test]
    fn one_thread_degenerates_to_the_sequential_chain() {
        // Entrants run in order; after the winner, the rest see a
        // tripped token on their very first poll.
        let engines = vec![
            Engine::new("first", |_: &Guard| (EngineVerdict::Unknown, 0)),
            Engine::new("second", |_: &Guard| (EngineVerdict::Unsat, 1)),
            diverging("third"),
        ];
        let (outcome, stats) = race(engines, &threads(1), &Guard::new());
        assert!(matches!(
            outcome,
            RaceOutcome::Decided {
                engine: 1,
                verdict: EngineVerdict::Unsat,
                value: 1
            }
        ));
        assert_eq!(stats.engines[0].status, EngineStatus::Unknown);
        assert_eq!(stats.engines[1].status, EngineStatus::Won);
        assert_eq!(stats.engines[2].status, EngineStatus::Cancelled);
    }

    #[test]
    fn deadline_times_the_whole_field_out() {
        for n in [1, 4] {
            let cfg = RaceConfig {
                deadline: Some(Duration::from_millis(20)),
                parallel: ParallelConfig::with_threads(n),
            };
            let engines = vec![diverging("a"), diverging("b")];
            let (outcome, stats) = race(engines, &cfg, &Guard::new());
            assert!(
                matches!(outcome, RaceOutcome::Interrupted),
                "threads={n}: expected Interrupted"
            );
            assert_eq!(stats.winner, None);
            assert_eq!(stats.timed_out(), 2, "threads={n}");
            // The race came home near the deadline, not hung.
            assert!(stats.elapsed < Duration::from_secs(10));
        }
    }

    #[test]
    fn panic_is_isolated_and_the_race_still_decides() {
        let engines = vec![
            Engine::new("crashy", |_: &Guard| -> (EngineVerdict, u32) {
                panic!("engine exploded: {}", 42)
            }),
            Engine::new("steady", |_: &Guard| (EngineVerdict::Sat, 9)),
        ];
        let (outcome, stats) = race(engines, &threads(2), &Guard::new());
        assert!(matches!(
            outcome,
            RaceOutcome::Decided {
                engine: 1,
                value: 9,
                ..
            }
        ));
        assert_eq!(stats.engines[0].status, EngineStatus::Panicked);
        let msg = stats.engines[0].panic.as_deref().unwrap_or("");
        assert!(msg.contains("engine exploded: 42"), "got {msg:?}");
        assert_eq!(stats.panicked(), 1);
        assert_eq!(stats.engines[1].status, EngineStatus::Won);
    }

    #[test]
    fn all_unknown_is_undecided_not_interrupted() {
        let engines = vec![
            Engine::new("a", |_: &Guard| (EngineVerdict::Unknown, 0)),
            Engine::new("b", |_: &Guard| (EngineVerdict::Unknown, 0)),
        ];
        let (outcome, stats) = race(engines, &threads(2), &Guard::new());
        assert!(matches!(outcome, RaceOutcome::Undecided));
        assert_eq!(stats.winner, None);
        assert!(stats
            .engines
            .iter()
            .all(|r| r.status == EngineStatus::Unknown));
    }

    #[test]
    fn all_entrants_panicking_is_a_definitive_undecided() {
        use ringen_parallel::{FaultPlan, Faults};
        // Each entrant opens an engine-internal span; the fault plan
        // panics every one of them, so the whole field crashes.
        let entrant = |name: &'static str, span: &'static str| {
            Engine::new(name, move |g: &Guard| -> (EngineVerdict, u32) {
                let _s = g.recorder().span(span);
                (EngineVerdict::Unknown, 0)
            })
        };
        for n in [1, 4] {
            let faults = Faults::new(FaultPlan::parse("panic@a.work, panic@b.work").unwrap());
            let guard = Guard::new().with_faults(&faults);
            let engines = vec![entrant("a", "a.work"), entrant("b", "b.work")];
            let (outcome, stats) = race(engines, &threads(n), &guard);
            // No winner slot to hang on: the race comes home Undecided
            // (a definitive Unknown), with every entrant's fate filed.
            assert!(
                matches!(outcome, RaceOutcome::Undecided),
                "threads={n}: expected Undecided, got {outcome:?}"
            );
            assert_eq!(stats.winner, None, "threads={n}");
            assert_eq!(stats.panicked(), 2, "threads={n}");
            assert_eq!(faults.stats().panics, 2, "threads={n}");
            for r in &stats.engines {
                assert_eq!(r.status, EngineStatus::Panicked, "threads={n}");
                assert!(r.panic.as_deref().unwrap_or("").contains("injected panic"));
            }
        }
    }

    #[test]
    fn self_interrupted_entrants_without_race_cancel_are_undecided() {
        use ringen_parallel::{FaultPlan, Faults};
        // A `cancel@…` fault trips each entrant's own child token —
        // NOT the race token — so every entrant comes home
        // Interrupted, yet the race itself was never cancelled. That
        // must read as a definitive Undecided, not Interrupted.
        let entrant = |name: &'static str, span: &'static str| {
            Engine::new(name, move |g: &Guard| -> (EngineVerdict, u32) {
                let faults = Faults::new(FaultPlan::parse("cancel@*").unwrap());
                let g = g.clone().with_faults(&faults);
                let _s = g.recorder().span(span);
                if g.is_cancelled() {
                    (EngineVerdict::Interrupted, 0)
                } else {
                    (EngineVerdict::Unknown, 0)
                }
            })
        };
        let engines = vec![entrant("a", "a.work"), entrant("b", "b.work")];
        let (outcome, stats) = race(engines, &threads(2), &Guard::new());
        assert!(
            matches!(outcome, RaceOutcome::Undecided),
            "expected Undecided, got {outcome:?}"
        );
        assert_eq!(stats.winner, None);
        assert_eq!(stats.cancelled(), 2);
    }

    #[test]
    fn outer_cancel_interrupts_the_race() {
        let guard = Guard::new();
        guard.cancel();
        let engines = vec![diverging("a"), diverging("b")];
        let (outcome, stats) = race(engines, &threads(2), &guard);
        assert!(matches!(outcome, RaceOutcome::Interrupted));
        // No deadline was armed, so a tripped token reads as Cancelled.
        assert_eq!(stats.cancelled(), 2);
    }
}
