//! Decidable inductiveness checking for regular invariants.
//!
//! For a *constraint-free* system (the output of
//! [`crate::preprocess::preprocess`]) and a [`RegularInvariant`], clause
//! validity is decidable: a deterministic complete automaton maps every
//! ground term to exactly one state, so a clause `R₁(t̄₁) ∧ … → H` is
//! violated iff some assignment of *reachable* states to its variables
//! makes every body tuple final and the head tuple non-final. Reachable
//! states all have ground witnesses, which turns any violating state
//! assignment into a concrete ground counterexample.
//!
//! This check independently validates every SAT answer the solver
//! produces — Theorem 5 is not trusted, it is re-verified.

use std::collections::{BTreeMap, BTreeSet};

use ringen_automata::{AutStore, StateId};
use ringen_chc::{ChcSystem, Clause};
use ringen_terms::{GroundTerm, VarId};

use crate::invariant::RegularInvariant;

/// Outcome of [`check_inductive`].
#[derive(Debug, Clone)]
pub enum InductiveCheck {
    /// Every clause is satisfied by the invariant.
    Inductive,
    /// Some clause is violated; the witness is a ground counterexample.
    Violated(Violation),
    /// The system is not constraint-free, so the state-level check does
    /// not apply (run preprocessing first).
    Unsupported(&'static str),
}

impl InductiveCheck {
    /// `true` iff the invariant was verified inductive.
    pub fn is_inductive(&self) -> bool {
        matches!(self, InductiveCheck::Inductive)
    }
}

/// A concrete clause violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the violated clause in [`ChcSystem::clauses`].
    pub clause: usize,
    /// A ground witness per clause variable.
    pub assignment: Vec<(VarId, GroundTerm)>,
}

/// Whether the state-level check applies at all — decided *before* any
/// fixpoint is run (or any table interned), so unsupported systems are
/// rejected for free.
fn unsupported(sys: &ChcSystem) -> Option<InductiveCheck> {
    sys.clauses
        .iter()
        .any(|c| !c.is_constraint_free())
        .then_some(InductiveCheck::Unsupported(
            "system has constraints; preprocess first",
        ))
}

/// Checks that `inv` satisfies every clause of `sys` (which must be
/// constraint-free). See the module docs for why this is exact.
pub fn check_inductive(sys: &ChcSystem, inv: &RegularInvariant) -> InductiveCheck {
    if let Some(u) = unsupported(sys) {
        return u;
    }
    let dfta = inv.dfta();
    check_with_fixpoints(sys, inv, &dfta.reachable(), &dfta.witnesses())
}

/// [`check_inductive`] through a hash-consed [`AutStore`]: the
/// invariant's shared transition table is interned (deduplicated
/// against previously checked candidates) and the reachability /
/// witness fixpoints come from the store's memo — re-verifying a
/// candidate whose table a previous solver iteration already analyzed
/// costs one hash probe instead of two worklist fixpoints. The verdict
/// is identical to [`check_inductive`]'s.
pub fn check_inductive_with(
    sys: &ChcSystem,
    inv: &RegularInvariant,
    store: &mut AutStore,
) -> InductiveCheck {
    if let Some(u) = unsupported(sys) {
        return u;
    }
    let id = store.intern_dfta(inv.dfta().clone());
    let reachable = store.reachable(id);
    let witnesses = store.witnesses(id);
    check_with_fixpoints(sys, inv, &reachable, &witnesses)
}

fn check_with_fixpoints(
    sys: &ChcSystem,
    inv: &RegularInvariant,
    reachable: &BTreeSet<StateId>,
    witnesses: &[Option<GroundTerm>],
) -> InductiveCheck {
    debug_assert!(unsupported(sys).is_none(), "callers check first");
    let dfta = inv.dfta();
    // Reachable states per sort, in a stable order.
    let mut per_sort: BTreeMap<ringen_terms::SortId, Vec<StateId>> = BTreeMap::new();
    for s in dfta.states() {
        if reachable.contains(&s) {
            per_sort.entry(dfta.sort_of(s)).or_default().push(s);
        }
    }

    for (ci, clause) in sys.clauses.iter().enumerate() {
        if let Some(v) = violated(sys, inv, clause, &per_sort, witnesses) {
            return InductiveCheck::Violated(Violation {
                clause: ci,
                assignment: v,
            });
        }
    }
    InductiveCheck::Inductive
}

fn violated(
    sys: &ChcSystem,
    inv: &RegularInvariant,
    clause: &Clause,
    per_sort: &BTreeMap<ringen_terms::SortId, Vec<StateId>>,
    witnesses: &[Option<GroundTerm>],
) -> Option<Vec<(VarId, GroundTerm)>> {
    let universals: Vec<VarId> = clause
        .vars
        .vars()
        .filter(|v| !clause.exist_vars.contains(v))
        .collect();
    let mut u_choices: Vec<&[StateId]> = Vec::with_capacity(universals.len());
    for &v in &universals {
        let sort = clause.vars.sort(v).expect("var in context");
        match per_sort.get(&sort) {
            // A sort with no reachable state has no ground terms in the
            // automaton's world; the clause is vacuously satisfied.
            None => return None,
            Some(states) => u_choices.push(states),
        }
    }
    let mut e_choices: Vec<&[StateId]> = Vec::with_capacity(clause.exist_vars.len());
    for &v in &clause.exist_vars {
        let sort = clause.vars.sort(v).expect("var in context");
        // A sort with no reachable state makes the ∃ unsatisfiable, which
        // is an empty choice list below.
        e_choices.push(per_sort.get(&sort).map(Vec::as_slice).unwrap_or(&[]));
    }

    let mut idx = vec![0usize; universals.len()];
    loop {
        let mut env: BTreeMap<VarId, StateId> = universals
            .iter()
            .zip(&idx)
            .zip(&u_choices)
            .map(|((&v, &i), states)| (v, states[i]))
            .collect();
        // ∀∃ semantics: the clause is violated at this universal
        // assignment iff NO existential assignment satisfies the matrix
        // (equivalently: every existential choice gives body ∧ ¬head).
        let violated_here = !exists_satisfying(
            sys,
            inv,
            clause,
            &clause.exist_vars,
            &e_choices,
            0,
            &mut env,
        );
        if violated_here {
            let assignment = universals
                .iter()
                .map(|&v| {
                    let s = env[&v];
                    let w = witnesses[s.index()]
                        .clone()
                        .expect("reachable state has a witness");
                    (v, w)
                })
                .collect();
            return Some(assignment);
        }
        // Advance the mixed-radix counter.
        let mut k = 0;
        loop {
            if k == universals.len() {
                return None;
            }
            idx[k] += 1;
            if idx[k] < u_choices[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

/// Whether some assignment of the existential variables makes the clause
/// matrix `B → H` true under `env`. With no existential variables this
/// degenerates to a single matrix evaluation.
fn exists_satisfying(
    sys: &ChcSystem,
    inv: &RegularInvariant,
    clause: &Clause,
    exist: &[VarId],
    e_choices: &[&[StateId]],
    k: usize,
    env: &mut BTreeMap<VarId, StateId>,
) -> bool {
    if k == exist.len() {
        return !body_holds(sys, inv, clause, env) || head_holds(inv, clause, env);
    }
    let v = exist[k];
    for &s in e_choices[k] {
        env.insert(v, s);
        let ok = exists_satisfying(sys, inv, clause, exist, e_choices, k + 1, env);
        env.remove(&v);
        if ok {
            return true;
        }
    }
    false
}

fn body_holds(
    sys: &ChcSystem,
    inv: &RegularInvariant,
    clause: &Clause,
    env: &BTreeMap<VarId, StateId>,
) -> bool {
    let _ = sys;
    clause.body.iter().all(|atom| {
        let tuple: Option<Vec<StateId>> =
            atom.args.iter().map(|t| inv.dfta().eval(t, env)).collect();
        match tuple {
            Some(tuple) => inv.finals(atom.pred).contains(&tuple),
            // An undefined transition means the term denotes nothing the
            // automaton can reach; treat the atom as false (the model
            // automaton is total, so this only happens for foreign
            // symbols).
            None => false,
        }
    })
}

fn head_holds(inv: &RegularInvariant, clause: &Clause, env: &BTreeMap<VarId, StateId>) -> bool {
    match &clause.head {
        None => false,
        Some(atom) => {
            let tuple: Option<Vec<StateId>> =
                atom.args.iter().map(|t| inv.dfta().eval(t, env)).collect();
            match tuple {
                Some(tuple) => inv.finals(atom.pred).contains(&tuple),
                None => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use ringen_chc::parse_str;
    use ringen_fmf::{find_model, FinderConfig};

    #[test]
    fn even_invariant_is_inductive() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap();
        let pre = preprocess(&sys);
        let (outcome, _) = find_model(&pre.system, &FinderConfig::default()).unwrap();
        let model = outcome.model().unwrap();
        let inv = RegularInvariant::from_model(&pre.system, &model);
        assert!(check_inductive(&pre.system, &inv).is_inductive());
    }

    #[test]
    fn corrupted_invariant_is_caught() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            "#,
        )
        .unwrap();
        let pre = preprocess(&sys);
        let (outcome, _) = find_model(&pre.system, &FinderConfig::default()).unwrap();
        let model = outcome.model().unwrap();
        let mut inv = RegularInvariant::from_model(&pre.system, &model);
        // Empty the finals of `even`: the fact clause `→ even(Z)` must now
        // be reported violated.
        let even = sys.rels.by_name("even").unwrap();
        inv.finals_mut(even).clear();
        match check_inductive(&pre.system, &inv) {
            InductiveCheck::Violated(v) => {
                // The violated clause derives even(Z) — no body needed.
                assert!(pre.system.clauses[v.clause].body.is_empty());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn store_backed_check_memoizes_the_fixpoints() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap();
        let pre = preprocess(&sys);
        let (outcome, _) = find_model(&pre.system, &FinderConfig::default()).unwrap();
        let inv = RegularInvariant::from_model(&pre.system, &outcome.model().unwrap());
        let mut store = AutStore::with_cache(true);
        assert!(check_inductive_with(&pre.system, &inv, &mut store).is_inductive());
        let after_cold = store.stats();
        assert_eq!(after_cold.memo_misses, 2, "reachable + witnesses computed");
        // Re-verifying the same candidate (the solver-loop shape) pays
        // two hash probes: the table dedups and both fixpoints hit.
        assert!(check_inductive_with(&pre.system, &inv, &mut store).is_inductive());
        let after_warm = store.stats();
        assert_eq!(after_warm.memo_misses, after_cold.memo_misses);
        assert_eq!(after_warm.memo_hits, after_cold.memo_hits + 2);
        assert!(after_warm.dedup_hits >= 1);
        // Verdicts agree with the store-less check.
        assert!(check_inductive(&pre.system, &inv).is_inductive());
    }

    #[test]
    fn constrained_systems_are_rejected() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat) Bool)
            (assert (forall ((x Nat)) (=> (= x Z) (p x))))
            "#,
        )
        .unwrap();
        let pre = preprocess(&sys);
        let (outcome, _) = find_model(&pre.system, &FinderConfig::default()).unwrap();
        let inv = RegularInvariant::from_model(&pre.system, &outcome.model().unwrap());
        assert!(matches!(
            check_inductive(&sys, &inv),
            InductiveCheck::Unsupported(_)
        ));
    }
}
