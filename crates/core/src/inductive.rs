//! Decidable inductiveness checking for regular invariants.
//!
//! For a *constraint-free* system (the output of
//! [`crate::preprocess::preprocess`]) and a [`RegularInvariant`], clause
//! validity is decidable: a deterministic complete automaton maps every
//! ground term to exactly one state, so a clause `R₁(t̄₁) ∧ … → H` is
//! violated iff some assignment of *reachable* states to its variables
//! makes every body tuple final and the head tuple non-final. Reachable
//! states all have ground witnesses, which turns any violating state
//! assignment into a concrete ground counterexample.
//!
//! This check independently validates every SAT answer the solver
//! produces — Theorem 5 is not trusted, it is re-verified.
//!
//! # The bulk evaluation side table
//!
//! The inner loop sweeps the full product of reachable-state
//! assignments and evaluates every atom argument term under each — a
//! term walk per (term, assignment) pair, although a term typically
//! mentions a strict subset of the clause's variables and therefore
//! takes only a handful of distinct values across the whole sweep.
//! Each clause's distinct argument terms are deduplicated into dense
//! **slots** (the clause-local analogue of pool `TermId`s), and
//! evaluations land in one dense 2-D side table indexed by
//! `(slot, packed assignment of the slot's own variables)` — a direct
//! array walk on the sweep's hot path, with no hashing and no repeated
//! term traversal. This closes the ROADMAP's "pool-wide bulk
//! operations" item for the inductiveness check.

use std::collections::{BTreeMap, BTreeSet};

use ringen_automata::{AutStore, Dfta, StateId};
use ringen_chc::{Atom, ChcSystem, Clause};
use ringen_parallel::{Guard, Poller};
use ringen_terms::{GroundTerm, Term, VarId};

use crate::invariant::RegularInvariant;

/// Outcome of [`check_inductive`].
#[derive(Debug, Clone)]
pub enum InductiveCheck {
    /// Every clause is satisfied by the invariant.
    Inductive,
    /// Some clause is violated; the witness is a ground counterexample.
    Violated(Violation),
    /// The system is not constraint-free, so the state-level check does
    /// not apply (run preprocessing first).
    Unsupported(&'static str),
    /// The [`Guard`] tripped before the check finished; no verdict. The
    /// store's memo tables contain only complete fixpoints, so a retry
    /// on the same store is sound.
    Interrupted,
}

impl InductiveCheck {
    /// `true` iff the invariant was verified inductive.
    pub fn is_inductive(&self) -> bool {
        matches!(self, InductiveCheck::Inductive)
    }
}

/// A concrete clause violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the violated clause in [`ChcSystem::clauses`].
    pub clause: usize,
    /// A ground witness per clause variable.
    pub assignment: Vec<(VarId, GroundTerm)>,
}

/// Whether the state-level check applies at all — decided *before* any
/// fixpoint is run (or any table interned), so unsupported systems are
/// rejected for free.
fn unsupported(sys: &ChcSystem) -> Option<InductiveCheck> {
    sys.clauses
        .iter()
        .any(|c| !c.is_constraint_free())
        .then_some(InductiveCheck::Unsupported(
            "system has constraints; preprocess first",
        ))
}

/// Checks that `inv` satisfies every clause of `sys` (which must be
/// constraint-free). See the module docs for why this is exact.
pub fn check_inductive(sys: &ChcSystem, inv: &RegularInvariant) -> InductiveCheck {
    if let Some(u) = unsupported(sys) {
        return u;
    }
    let dfta = inv.dfta();
    check_with_fixpoints(sys, inv, &dfta.reachable(), &dfta.witnesses(), None)
}

/// [`check_inductive`] through a hash-consed [`AutStore`]: the
/// invariant's shared transition table is interned (deduplicated
/// against previously checked candidates) and the reachability /
/// witness fixpoints come from the store's memo — re-verifying a
/// candidate whose table a previous solver iteration already analyzed
/// costs one hash probe instead of two worklist fixpoints. The verdict
/// is identical to [`check_inductive`]'s.
pub fn check_inductive_with(
    sys: &ChcSystem,
    inv: &RegularInvariant,
    store: &mut AutStore,
) -> InductiveCheck {
    if let Some(u) = unsupported(sys) {
        return u;
    }
    let id = store.intern_dfta(inv.dfta().clone());
    let reachable = store.reachable(id);
    let witnesses = store.witnesses(id);
    check_with_fixpoints(sys, inv, &reachable, &witnesses, None)
}

/// [`check_inductive_with`] under a cooperative [`Guard`]: the token is
/// polled inside the store's worklist fixpoints and between assignment
/// sweeps; once it trips the check returns
/// [`InductiveCheck::Interrupted`] without memoizing any partial
/// fixpoint. With a never-tripping guard the verdict is identical to
/// [`check_inductive_with`]'s.
pub fn check_inductive_guarded(
    sys: &ChcSystem,
    inv: &RegularInvariant,
    store: &mut AutStore,
    guard: &Guard,
) -> InductiveCheck {
    if let Some(u) = unsupported(sys) {
        return u;
    }
    let id = store.intern_dfta(inv.dfta().clone());
    let Some(reachable) = store.reachable_guarded(id, guard) else {
        return InductiveCheck::Interrupted;
    };
    let Some(witnesses) = store.witnesses_guarded(id, guard) else {
        return InductiveCheck::Interrupted;
    };
    check_with_fixpoints(sys, inv, &reachable, &witnesses, Some(guard))
}

fn check_with_fixpoints(
    sys: &ChcSystem,
    inv: &RegularInvariant,
    reachable: &BTreeSet<StateId>,
    witnesses: &[Option<GroundTerm>],
    guard: Option<&Guard>,
) -> InductiveCheck {
    debug_assert!(unsupported(sys).is_none(), "callers check first");
    let dfta = inv.dfta();
    // Reachable states per sort, in a stable order.
    let mut per_sort: BTreeMap<ringen_terms::SortId, Vec<StateId>> = BTreeMap::new();
    for s in dfta.states() {
        if reachable.contains(&s) {
            per_sort.entry(dfta.sort_of(s)).or_default().push(s);
        }
    }

    for (ci, clause) in sys.clauses.iter().enumerate() {
        match violated(inv, clause, &per_sort, witnesses, guard) {
            Sweep::Violated(v) => {
                return InductiveCheck::Violated(Violation {
                    clause: ci,
                    assignment: v,
                })
            }
            Sweep::Interrupted => return InductiveCheck::Interrupted,
            Sweep::Clean => {}
        }
    }
    InductiveCheck::Inductive
}

/// Outcome of one clause's assignment sweep.
enum Sweep {
    Clean,
    Violated(Vec<(VarId, GroundTerm)>),
    Interrupted,
}

/// Largest per-slot memo (packed assignments) the dense table will
/// hold; slots over more assignments than this fall back to direct
/// evaluation. The sweep itself is bounded by the same product, so in
/// practice the cap only guards degenerate many-variable clauses.
const MAX_SLOT_TABLE: usize = 1 << 16;

/// One distinct argument term of a clause, compiled for the sweep: the
/// variables it actually mentions, with the mixed-radix stride of each
/// in the slot's packed assignment index.
struct SlotInfo<'a> {
    term: &'a Term,
    /// `(variable, stride)` — packed index = Σ digit(v) · stride.
    vars: Vec<(VarId, usize)>,
}

/// The clause's evaluation engine: argument terms deduplicated into
/// dense slots, results memoized in one 2-D `tables[slot][packed]`
/// side table (`None` = not evaluated yet; the inner `Option` is the
/// automaton's own partiality). A term mentioning few of the clause's
/// variables takes few distinct values across the sweep, so the hot
/// path is an array load instead of a term walk.
struct ClauseEval<'a> {
    clause: &'a Clause,
    dfta: &'a Dfta,
    slots: Vec<SlotInfo<'a>>,
    /// Per body atom: the slot of each argument.
    body: Vec<Vec<usize>>,
    /// Head argument slots, if the clause has a head.
    head: Option<Vec<usize>>,
    tables: Vec<Vec<Option<Option<StateId>>>>,
}

impl<'a> ClauseEval<'a> {
    fn new(
        clause: &'a Clause,
        dfta: &'a Dfta,
        per_sort: &BTreeMap<ringen_terms::SortId, Vec<StateId>>,
    ) -> ClauseEval<'a> {
        let mut slots: Vec<SlotInfo<'a>> = Vec::new();
        let mut tables: Vec<Vec<Option<Option<StateId>>>> = Vec::new();
        let mut slot_of: BTreeMap<&'a Term, usize> = BTreeMap::new();
        let mut compile_atom = |atom: &'a Atom| -> Vec<usize> {
            atom.args
                .iter()
                .map(|t| {
                    *slot_of.entry(t).or_insert_with(|| {
                        let mut vars: Vec<VarId> = t.vars();
                        vars.sort_unstable();
                        vars.dedup();
                        // Digit range of a variable = its sort's
                        // reachable-state count; strides are the
                        // running product.
                        let mut strided = Vec::with_capacity(vars.len());
                        let mut size = 1usize;
                        for v in vars {
                            let sort = clause.vars.sort(v).expect("var in context");
                            let range = per_sort.get(&sort).map(Vec::len).unwrap_or(0);
                            strided.push((v, size));
                            size = size.saturating_mul(range);
                        }
                        slots.push(SlotInfo {
                            term: t,
                            vars: strided,
                        });
                        // `size == 0` (a variable with no reachable
                        // state) never reaches evaluation: the sweep
                        // over that variable is empty.
                        tables.push(if size > 0 && size <= MAX_SLOT_TABLE {
                            vec![None; size]
                        } else {
                            Vec::new()
                        });
                        slots.len() - 1
                    })
                })
                .collect()
        };
        let body = clause.body.iter().map(&mut compile_atom).collect();
        let head = clause.head.as_ref().map(&mut compile_atom);
        ClauseEval {
            clause,
            dfta,
            slots,
            body,
            head,
            tables,
        }
    }

    /// The state of one slot under the current assignment: a direct
    /// 2-D array probe, falling back to one compositional evaluation
    /// per *distinct* sub-assignment of the slot's variables.
    fn eval_slot(
        &mut self,
        slot: usize,
        pos: &BTreeMap<VarId, usize>,
        env: &BTreeMap<VarId, StateId>,
    ) -> Option<StateId> {
        let info = &self.slots[slot];
        let table = &mut self.tables[slot];
        if table.is_empty() {
            return self.dfta.eval(info.term, env);
        }
        let packed: usize = info.vars.iter().map(|&(v, stride)| pos[&v] * stride).sum();
        if let Some(hit) = table[packed] {
            return hit;
        }
        let r = self.dfta.eval(info.term, env);
        table[packed] = Some(r);
        r
    }

    /// The state tuple of body atom `ai`, or `None` if any argument
    /// has no run (a foreign symbol; the atom is then false). Slot ids
    /// are read back by index so the sweep's hot path allocates only
    /// the returned tuple.
    fn body_tuple(
        &mut self,
        ai: usize,
        pos: &BTreeMap<VarId, usize>,
        env: &BTreeMap<VarId, StateId>,
    ) -> Option<Vec<StateId>> {
        (0..self.body[ai].len())
            .map(|j| {
                let slot = self.body[ai][j];
                self.eval_slot(slot, pos, env)
            })
            .collect()
    }

    /// The state tuple of the head atom ([`ClauseEval::body_tuple`]'s
    /// head counterpart); the clause must have a head.
    fn head_tuple(
        &mut self,
        pos: &BTreeMap<VarId, usize>,
        env: &BTreeMap<VarId, StateId>,
    ) -> Option<Vec<StateId>> {
        (0..self.head.as_ref().expect("clause has a head").len())
            .map(|j| {
                let slot = self.head.as_ref().expect("clause has a head")[j];
                self.eval_slot(slot, pos, env)
            })
            .collect()
    }
}

fn violated(
    inv: &RegularInvariant,
    clause: &Clause,
    per_sort: &BTreeMap<ringen_terms::SortId, Vec<StateId>>,
    witnesses: &[Option<GroundTerm>],
    guard: Option<&Guard>,
) -> Sweep {
    let universals: Vec<VarId> = clause
        .vars
        .vars()
        .filter(|v| !clause.exist_vars.contains(v))
        .collect();
    let mut u_choices: Vec<&[StateId]> = Vec::with_capacity(universals.len());
    for &v in &universals {
        let sort = clause.vars.sort(v).expect("var in context");
        match per_sort.get(&sort) {
            // A sort with no reachable state has no ground terms in the
            // automaton's world; the clause is vacuously satisfied.
            None => return Sweep::Clean,
            Some(states) => u_choices.push(states),
        }
    }
    let mut e_choices: Vec<&[StateId]> = Vec::with_capacity(clause.exist_vars.len());
    for &v in &clause.exist_vars {
        let sort = clause.vars.sort(v).expect("var in context");
        // A sort with no reachable state makes the ∃ unsatisfiable, which
        // is an empty choice list below.
        e_choices.push(per_sort.get(&sort).map(Vec::as_slice).unwrap_or(&[]));
    }

    let mut eval = ClauseEval::new(clause, inv.dfta(), per_sort);
    let mut poller = guard.map(Poller::new);
    let mut idx = vec![0usize; universals.len()];
    loop {
        if let Some(p) = poller.as_mut() {
            if p.poll() {
                return Sweep::Interrupted;
            }
        }
        let mut env: BTreeMap<VarId, StateId> = universals
            .iter()
            .zip(&idx)
            .zip(&u_choices)
            .map(|((&v, &i), states)| (v, states[i]))
            .collect();
        let mut pos: BTreeMap<VarId, usize> =
            universals.iter().zip(&idx).map(|(&v, &i)| (v, i)).collect();
        // ∀∃ semantics: the clause is violated at this universal
        // assignment iff NO existential assignment satisfies the matrix
        // (equivalently: every existential choice gives body ∧ ¬head).
        let violated_here = !exists_satisfying(
            inv,
            &mut eval,
            &clause.exist_vars,
            &e_choices,
            0,
            &mut env,
            &mut pos,
        );
        if violated_here {
            let assignment = universals
                .iter()
                .map(|&v| {
                    let s = env[&v];
                    let w = witnesses[s.index()]
                        .clone()
                        .expect("reachable state has a witness");
                    (v, w)
                })
                .collect();
            return Sweep::Violated(assignment);
        }
        // Advance the mixed-radix counter.
        let mut k = 0;
        loop {
            if k == universals.len() {
                return Sweep::Clean;
            }
            idx[k] += 1;
            if idx[k] < u_choices[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

/// Whether some assignment of the existential variables makes the clause
/// matrix `B → H` true under `env`. With no existential variables this
/// degenerates to a single matrix evaluation.
#[allow(clippy::too_many_arguments)]
fn exists_satisfying(
    inv: &RegularInvariant,
    eval: &mut ClauseEval<'_>,
    exist: &[VarId],
    e_choices: &[&[StateId]],
    k: usize,
    env: &mut BTreeMap<VarId, StateId>,
    pos: &mut BTreeMap<VarId, usize>,
) -> bool {
    if k == exist.len() {
        return !body_holds(inv, eval, env, pos) || head_holds(inv, eval, env, pos);
    }
    let v = exist[k];
    for (i, &s) in e_choices[k].iter().enumerate() {
        env.insert(v, s);
        pos.insert(v, i);
        let ok = exists_satisfying(inv, eval, exist, e_choices, k + 1, env, pos);
        env.remove(&v);
        pos.remove(&v);
        if ok {
            return true;
        }
    }
    false
}

fn body_holds(
    inv: &RegularInvariant,
    eval: &mut ClauseEval<'_>,
    env: &BTreeMap<VarId, StateId>,
    pos: &BTreeMap<VarId, usize>,
) -> bool {
    (0..eval.body.len()).all(|ai| {
        let pred = eval.clause.body[ai].pred;
        match eval.body_tuple(ai, pos, env) {
            Some(tuple) => inv.finals(pred).contains(&tuple),
            // An undefined transition means the term denotes nothing the
            // automaton can reach; treat the atom as false (the model
            // automaton is total, so this only happens for foreign
            // symbols).
            None => false,
        }
    })
}

fn head_holds(
    inv: &RegularInvariant,
    eval: &mut ClauseEval<'_>,
    env: &BTreeMap<VarId, StateId>,
    pos: &BTreeMap<VarId, usize>,
) -> bool {
    let Some(atom) = &eval.clause.head else {
        return false;
    };
    let pred = atom.pred;
    match eval.head_tuple(pos, env) {
        Some(tuple) => inv.finals(pred).contains(&tuple),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use ringen_chc::parse_str;
    use ringen_fmf::{find_model, FinderConfig};

    #[test]
    fn even_invariant_is_inductive() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap();
        let pre = preprocess(&sys);
        let (outcome, _) = find_model(&pre.system, &FinderConfig::default()).unwrap();
        let model = outcome.model().unwrap();
        let inv = RegularInvariant::from_model(&pre.system, &model);
        assert!(check_inductive(&pre.system, &inv).is_inductive());
    }

    #[test]
    fn corrupted_invariant_is_caught() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            "#,
        )
        .unwrap();
        let pre = preprocess(&sys);
        let (outcome, _) = find_model(&pre.system, &FinderConfig::default()).unwrap();
        let model = outcome.model().unwrap();
        let mut inv = RegularInvariant::from_model(&pre.system, &model);
        // Empty the finals of `even`: the fact clause `→ even(Z)` must now
        // be reported violated.
        let even = sys.rels.by_name("even").unwrap();
        inv.finals_mut(even).clear();
        match check_inductive(&pre.system, &inv) {
            InductiveCheck::Violated(v) => {
                // The violated clause derives even(Z) — no body needed.
                assert!(pre.system.clauses[v.clause].body.is_empty());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn store_backed_check_memoizes_the_fixpoints() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun even (Nat) Bool)
            (assert (even Z))
            (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
            (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
            "#,
        )
        .unwrap();
        let pre = preprocess(&sys);
        let (outcome, _) = find_model(&pre.system, &FinderConfig::default()).unwrap();
        let inv = RegularInvariant::from_model(&pre.system, &outcome.model().unwrap());
        let mut store = AutStore::with_cache(true);
        assert!(check_inductive_with(&pre.system, &inv, &mut store).is_inductive());
        let after_cold = store.stats();
        assert_eq!(after_cold.memo_misses, 2, "reachable + witnesses computed");
        // Re-verifying the same candidate (the solver-loop shape) pays
        // two hash probes: the table dedups and both fixpoints hit.
        assert!(check_inductive_with(&pre.system, &inv, &mut store).is_inductive());
        let after_warm = store.stats();
        assert_eq!(after_warm.memo_misses, after_cold.memo_misses);
        assert_eq!(after_warm.memo_hits, after_cold.memo_hits + 2);
        assert!(after_warm.dedup_hits >= 1);
        // Verdicts agree with the store-less check.
        assert!(check_inductive(&pre.system, &inv).is_inductive());
    }

    #[test]
    fn slot_tables_agree_on_repeated_and_multivar_arguments() {
        // evenpair has 2-variable clauses whose argument terms repeat
        // (S(S(x)) twice) and mention different variable subsets — the
        // shapes the dense (slot, packed assignment) side table must
        // dedup and memoize without changing any verdict.
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun evenpair (Nat Nat) Bool)
            (assert (evenpair Z Z))
            (assert (forall ((x Nat) (y Nat))
              (=> (evenpair x y) (evenpair (S (S x)) (S (S y))))))
            (assert (forall ((x Nat) (y Nat))
              (=> (and (evenpair x y) (evenpair (S (S x)) y)) (evenpair x y))))
            (assert (forall ((x Nat) (y Nat))
              (=> (and (evenpair x y) (evenpair (S x) (S y))) false)))
            "#,
        )
        .unwrap();
        let pre = preprocess(&sys);
        let (outcome, _) = find_model(&pre.system, &FinderConfig::default()).unwrap();
        let model = outcome.model().expect("evenpair has a finite model");
        let inv = RegularInvariant::from_model(&pre.system, &model);
        assert!(check_inductive(&pre.system, &inv).is_inductive());
        // Corrupt the finals: the violation (and its witness) must
        // still be found through the memoized tables.
        let p = sys.rels.by_name("evenpair").unwrap();
        let mut bad = inv.clone();
        bad.finals_mut(p).clear();
        match check_inductive(&pre.system, &bad) {
            InductiveCheck::Violated(v) => {
                assert!(pre.system.clauses[v.clause].body.is_empty());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn constrained_systems_are_rejected() {
        let sys = parse_str(
            r#"
            (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
            (declare-fun p (Nat) Bool)
            (assert (forall ((x Nat)) (=> (= x Z) (p x))))
            "#,
        )
        .unwrap();
        let pre = preprocess(&sys);
        let (outcome, _) = find_model(&pre.system, &FinderConfig::default()).unwrap();
        let inv = RegularInvariant::from_model(&pre.system, &outcome.model().unwrap());
        assert!(matches!(
            check_inductive(&sys, &inv),
            InductiveCheck::Unsupported(_)
        ));
    }
}
