//! Differential property tests pinning the sharded parallel saturation
//! engine to its sequential (inline, `threads = 1`) semantics.
//!
//! The engine's contract (see the `saturation` module docs) is that the
//! outcome is a pure function of the system and the budgets — never of
//! the worker count or schedule. These tests draw small systems *and
//! small budgets* (mid-round step/fact cuts are where nondeterminism
//! would hide) and require, at 2, 4 and 8 workers:
//!
//! * the same [`SaturationOutcome`] variant;
//! * the same fact list, in the same derivation order, with the same
//!   reconstructed ground arguments;
//! * the same pool size (terms interned, not just facts kept);
//! * bit-for-bit equal refutation certificates, which also replay;
//! * identical [`SaturationStats`] (rounds, facts, steps, pooled
//!   terms).

use proptest::prelude::*;
use ringen_chc::{parse_str, ChcSystem, PredId};
use ringen_core::saturation::{
    check_refutation, saturate, Refutation, SaturationConfig, SaturationOutcome, SaturationStats,
};
use ringen_parallel::ParallelConfig;
use ringen_terms::GroundTerm;

/// Small systems covering the engine's paths: pooled fast path, diseq /
/// tester constraints, the eq-constraint legacy path, free-variable
/// enumeration, multi-clause joins, and both SAT and UNSAT shapes.
fn systems() -> Vec<ChcSystem> {
    let sources = [
        // 0: SAT — even numbers, non-firing query.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun even (Nat) Bool)
        (assert (even Z))
        (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
        (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
        "#,
        // 1: UNSAT — the query eventually fires.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun even (Nat) Bool)
        (assert (even Z))
        (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
        (assert (=> (even (S (S (S (S Z))))) false))
        "#,
        // 2: multi-clause join system — many clauses per round, facts
        // flowing between predicates (the sharded case).
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun p (Nat) Bool)
        (declare-fun q (Nat) Bool)
        (declare-fun r (Nat Nat) Bool)
        (assert (p Z))
        (assert (forall ((x Nat)) (=> (p x) (p (S x)))))
        (assert (forall ((x Nat)) (=> (p (S x)) (q x))))
        (assert (forall ((x Nat) (y Nat)) (=> (and (p x) (q y)) (r x y))))
        (assert (forall ((x Nat)) (=> (r (S x) x) (q (S x)))))
        "#,
        // 3: UNSAT through a join + disequality constraint.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun p (Nat) Bool)
        (assert (p Z))
        (assert (p (S Z)))
        (assert (forall ((x Nat)) (=> (and (p x) (distinct x Z)) false)))
        "#,
        // 4: equality constraint — the legacy substitution path.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun p (Nat) Bool)
        (declare-fun d (Nat) Bool)
        (assert (p Z))
        (assert (forall ((x Nat)) (=> (p x) (p (S x)))))
        (assert (forall ((x Nat) (y Nat)) (=> (and (p x) (= x (S y))) (d y))))
        "#,
        // 5: a head variable unbound by the body — the free-variable
        // enumeration path, feeding a second predicate.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun seed (Nat) Bool)
        (declare-fun top (Nat) Bool)
        (assert (seed Z))
        (assert (forall ((x Nat)) (=> (seed Z) (top (S x)))))
        (assert (forall ((x Nat)) (=> (top x) (top (S x)))))
        "#,
        // 6: trees — branching terms stress scratch-pool sharing.
        r#"
        (declare-datatypes ((Tree 0)) (((leaf) (node (l Tree) (r Tree)))))
        (declare-fun t (Tree) Bool)
        (declare-fun pair (Tree Tree) Bool)
        (assert (t leaf))
        (assert (forall ((a Tree) (b Tree)) (=> (and (t a) (t b)) (t (node a b)))))
        (assert (forall ((a Tree) (b Tree)) (=> (and (t a) (t b)) (pair a b))))
        "#,
    ];
    sources
        .iter()
        .map(|s| parse_str(s).expect("template parses"))
        .collect()
}

/// Everything observable about an outcome, in comparable form.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    variant: &'static str,
    facts: Vec<(PredId, Vec<GroundTerm>)>,
    pooled_terms: usize,
    refutation: Option<Refutation>,
}

fn fingerprint(outcome: &SaturationOutcome) -> Fingerprint {
    match outcome {
        SaturationOutcome::Refuted(r) => Fingerprint {
            variant: "refuted",
            facts: Vec::new(),
            pooled_terms: 0,
            refutation: Some(r.clone()),
        },
        SaturationOutcome::Saturated(base) => Fingerprint {
            variant: "saturated",
            facts: base.ground_facts().collect(),
            pooled_terms: base.pool().len(),
            refutation: None,
        },
        SaturationOutcome::Budget(base) => Fingerprint {
            variant: "budget",
            facts: base.ground_facts().collect(),
            pooled_terms: base.pool().len(),
            refutation: None,
        },
        // Unreachable: the unguarded `saturate` never trips.
        SaturationOutcome::Interrupted(base) => Fingerprint {
            variant: "interrupted",
            facts: base.ground_facts().collect(),
            pooled_terms: base.pool().len(),
            refutation: None,
        },
    }
}

fn run(sys: &ChcSystem, cfg: &SaturationConfig, threads: usize) -> (Fingerprint, SaturationStats) {
    let cfg = SaturationConfig {
        parallel: ParallelConfig::with_threads(threads),
        ..cfg.clone()
    };
    let (outcome, stats) = saturate(sys, &cfg);
    (fingerprint(&outcome), stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Parallel saturation is bit-for-bit the sequential engine, under
    /// budgets tight enough to cut rounds mid-merge.
    #[test]
    fn parallel_matches_sequential(
        which in 0usize..7,
        max_facts in 1usize..60,
        max_steps in 1u64..4_000,
        max_rounds in 1usize..12,
        max_term_height in 2usize..8,
        free_var_candidates in 1usize..4,
    ) {
        let sys = systems().swap_remove(which);
        let cfg = SaturationConfig {
            max_facts,
            max_rounds,
            max_term_height,
            free_var_candidates,
            max_steps,
            ..SaturationConfig::default()
        };
        let (expect, expect_stats) = run(&sys, &cfg, 1);
        if let Some(r) = &expect.refutation {
            prop_assert!(check_refutation(&sys, r).is_ok());
        }
        for threads in [2usize, 4, 8] {
            let (got, got_stats) = run(&sys, &cfg, threads);
            prop_assert_eq!(&got, &expect, "threads = {}", threads);
            prop_assert_eq!(got_stats, expect_stats, "threads = {}", threads);
        }
    }

    /// Refutations found in parallel replay against the original
    /// system, whatever the budgets were.
    #[test]
    fn parallel_refutations_replay(
        max_facts in 4usize..60,
        max_steps in 50u64..4_000,
        threads in 2usize..9,
    ) {
        let sys = systems().swap_remove(1);
        let cfg = SaturationConfig {
            max_facts,
            max_steps,
            parallel: ParallelConfig::with_threads(threads),
            ..SaturationConfig::default()
        };
        let (outcome, _) = saturate(&sys, &cfg);
        if let SaturationOutcome::Refuted(r) = outcome {
            prop_assert!(check_refutation(&sys, &r).is_ok());
        }
    }
}

/// The canonical UNSAT example, checked exactly: every thread count
/// produces the *same certificate*, and it replays.
#[test]
fn thread_counts_agree_on_the_even_refutation() {
    let sys = systems().swap_remove(1);
    let cfg = SaturationConfig::default();
    let (expect, expect_stats) = run(&sys, &cfg, 1);
    assert_eq!(expect.variant, "refuted");
    let r = expect.refutation.as_ref().expect("refuted");
    assert!(check_refutation(&sys, r).is_ok());
    for threads in [2usize, 3, 4, 8, 16] {
        let (got, got_stats) = run(&sys, &cfg, threads);
        assert_eq!(got, expect, "threads = {threads}");
        assert_eq!(got_stats, expect_stats, "threads = {threads}");
    }
}

/// A saturating run keeps its full fact base identical across thread
/// counts, including derivation order and pool size.
#[test]
fn thread_counts_agree_on_the_join_fixpoint() {
    let sys = systems().swap_remove(2);
    let cfg = SaturationConfig {
        max_facts: 120,
        max_term_height: 6,
        ..SaturationConfig::default()
    };
    let (expect, expect_stats) = run(&sys, &cfg, 1);
    assert!(!expect.facts.is_empty());
    for threads in [2usize, 4, 8] {
        let (got, got_stats) = run(&sys, &cfg, threads);
        assert_eq!(got, expect, "threads = {threads}");
        assert_eq!(got_stats, expect_stats, "threads = {threads}");
    }
}
