//! Differential property tests pinning the semi-naive, delta-driven
//! saturation engine to the naive reference matcher
//! (`RINGEN_SAT_SEMINAIVE=0` / [`SaturationConfig::semi_naive`] =
//! `false`), at every thread count.
//!
//! The engines' contract (see the `saturation` module docs) is that
//! outcome variant, fact list (content *and* derivation order),
//! reconstructed ground arguments, pool size, refutation certificate,
//! and the `rounds`/`facts`/`pooled_terms` statistics are identical.
//! `steps` and `candidates` are intentionally *not* compared across
//! engines: they measure the matching work actually done, and doing
//! less of it is the semi-naive engine's entire purpose. For the same
//! reason the property tests keep `max_steps` generous — a step budget
//! that cuts one engine mid-round cannot cut the other at the same
//! place — while `max_facts`, `max_rounds`, and the height cap are
//! drawn tight (mid-round fact-cap truncation is exactly where the
//! dirty-clause replay logic must reproduce the naive engine).

use proptest::prelude::*;
use ringen_chc::{parse_str, ChcSystem, PredId};
use ringen_core::saturation::{
    check_refutation, saturate, Refutation, SaturationConfig, SaturationOutcome,
};
use ringen_parallel::ParallelConfig;
use ringen_terms::GroundTerm;

/// Small systems covering the engine's paths: pooled fast path, diseq /
/// tester constraints, the eq-constraint legacy path, free-variable
/// enumeration, multi-clause joins (including clauses that derive the
/// same facts — the cross-clause dedup the dirty replay depends on),
/// and both SAT and UNSAT shapes.
fn systems() -> Vec<ChcSystem> {
    let sources = [
        // 0: SAT — even numbers, non-firing query.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun even (Nat) Bool)
        (assert (even Z))
        (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
        (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
        "#,
        // 1: UNSAT — the query eventually fires (multi-round delta).
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun even (Nat) Bool)
        (assert (even Z))
        (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
        (assert (=> (even (S (S (S (S Z))))) false))
        "#,
        // 2: multi-clause join system — several predicates feeding each
        // other, 1- and 2-atom bodies, a join whose variants overlap.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun p (Nat) Bool)
        (declare-fun q (Nat) Bool)
        (declare-fun r (Nat Nat) Bool)
        (assert (p Z))
        (assert (forall ((x Nat)) (=> (p x) (p (S x)))))
        (assert (forall ((x Nat)) (=> (p (S x)) (q x))))
        (assert (forall ((x Nat) (y Nat)) (=> (and (p x) (q y)) (r x y))))
        (assert (forall ((x Nat)) (=> (r (S x) x) (q (S x)))))
        "#,
        // 3: UNSAT through a join + disequality constraint.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun p (Nat) Bool)
        (assert (p Z))
        (assert (p (S Z)))
        (assert (forall ((x Nat)) (=> (and (p x) (distinct x Z)) false)))
        "#,
        // 4: equality constraint — the legacy substitution path.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun p (Nat) Bool)
        (declare-fun d (Nat) Bool)
        (assert (p Z))
        (assert (forall ((x Nat)) (=> (p x) (p (S x)))))
        (assert (forall ((x Nat) (y Nat)) (=> (and (p x) (= x (S y))) (d y))))
        "#,
        // 5: a head variable unbound by the body — the free-variable
        // enumeration path, feeding a second predicate.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun seed (Nat) Bool)
        (declare-fun top (Nat) Bool)
        (assert (seed Z))
        (assert (forall ((x Nat)) (=> (seed Z) (top (S x)))))
        (assert (forall ((x Nat)) (=> (top x) (top (S x)))))
        "#,
        // 6: trees — branching terms stress scratch-pool sharing and
        // the 2-atom variants' old × delta split.
        r#"
        (declare-datatypes ((Tree 0)) (((leaf) (node (l Tree) (r Tree)))))
        (declare-fun t (Tree) Bool)
        (declare-fun pair (Tree Tree) Bool)
        (assert (t leaf))
        (assert (forall ((a Tree) (b Tree)) (=> (and (t a) (t b)) (t (node a b)))))
        (assert (forall ((a Tree) (b Tree)) (=> (and (t a) (t b)) (pair a b))))
        "#,
        // 7: two clauses deriving overlapping facts into one predicate
        // — under a tight fact cap one clause's worker truncates while
        // the merge dedups below the cap, forcing the dirty replay.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun p (Nat) Bool)
        (declare-fun q (Nat) Bool)
        (assert (p Z))
        (assert (forall ((x Nat)) (=> (p x) (p (S x)))))
        (assert (forall ((x Nat)) (=> (p x) (q x))))
        (assert (forall ((x Nat)) (=> (p (S x)) (q x))))
        (assert (forall ((x Nat)) (=> (q x) (q (S x)))))
        "#,
    ];
    sources
        .iter()
        .map(|s| parse_str(s).expect("template parses"))
        .collect()
}

/// Everything the engines must agree on, in comparable form.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    variant: &'static str,
    facts: Vec<(PredId, Vec<GroundTerm>)>,
    pooled_terms: usize,
    refutation: Option<Refutation>,
    rounds: usize,
    fact_count: usize,
    stat_pooled_terms: usize,
}

fn run(sys: &ChcSystem, cfg: &SaturationConfig, semi: bool, threads: usize) -> Fingerprint {
    let cfg = SaturationConfig {
        semi_naive: semi,
        parallel: ParallelConfig::with_threads(threads),
        ..cfg.clone()
    };
    let (outcome, stats) = saturate(sys, &cfg);
    let (variant, facts, pooled_terms, refutation) = match outcome {
        SaturationOutcome::Refuted(r) => ("refuted", Vec::new(), 0, Some(r)),
        SaturationOutcome::Saturated(base) => (
            "saturated",
            base.ground_facts().collect(),
            base.pool().len(),
            None,
        ),
        SaturationOutcome::Budget(base) => (
            "budget",
            base.ground_facts().collect(),
            base.pool().len(),
            None,
        ),
        // Unreachable: the unguarded `saturate` never trips.
        SaturationOutcome::Interrupted(base) => (
            "interrupted",
            base.ground_facts().collect(),
            base.pool().len(),
            None,
        ),
    };
    Fingerprint {
        variant,
        facts,
        pooled_terms,
        refutation,
        rounds: stats.rounds,
        fact_count: stats.facts,
        stat_pooled_terms: stats.pooled_terms,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The semi-naive engine is the naive engine, observably — at
    /// every thread count, under budgets tight enough to truncate
    /// rounds mid-merge on the fact cap.
    #[test]
    fn semi_naive_matches_naive(
        which in 0usize..8,
        max_facts in 1usize..60,
        max_rounds in 1usize..12,
        max_term_height in 2usize..8,
        free_var_candidates in 1usize..4,
    ) {
        let sys = systems().swap_remove(which);
        let cfg = SaturationConfig {
            max_facts,
            max_rounds,
            max_term_height,
            free_var_candidates,
            max_steps: 1_000_000,
            ..SaturationConfig::default()
        };
        let expect = run(&sys, &cfg, false, 1);
        if let Some(r) = &expect.refutation {
            prop_assert!(check_refutation(&sys, r).is_ok());
        }
        for threads in [1usize, 2, 4, 8] {
            let naive = run(&sys, &cfg, false, threads);
            prop_assert_eq!(&naive, &expect, "naive, threads = {}", threads);
            let semi = run(&sys, &cfg, true, threads);
            prop_assert_eq!(&semi, &expect, "semi-naive, threads = {}", threads);
        }
    }

    /// Semi-naive refutations replay against the original system,
    /// whatever the budgets were.
    #[test]
    fn semi_naive_refutations_replay(
        max_facts in 4usize..60,
        max_steps in 50u64..4_000,
        threads in 1usize..9,
    ) {
        let sys = systems().swap_remove(1);
        let cfg = SaturationConfig {
            max_facts,
            max_steps,
            semi_naive: true,
            parallel: ParallelConfig::with_threads(threads),
            ..SaturationConfig::default()
        };
        let (outcome, _) = saturate(&sys, &cfg);
        if let SaturationOutcome::Refuted(r) = outcome {
            prop_assert!(check_refutation(&sys, &r).is_ok());
        }
    }
}

/// A 2-atom recursive clause (`p(x) ∧ e(x, y) → p(y)` over an edge
/// chain) derives each fact **exactly once** under the semi-naive
/// engine: the merged candidate count equals the fact count — no
/// derivation is ever re-attempted — while the naive engine re-derives
/// the whole closure every round.
#[test]
fn two_atom_recursion_derives_each_fact_exactly_once() {
    let sys = parse_str(
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun e (Nat Nat) Bool)
        (declare-fun p (Nat) Bool)
        (assert (e Z (S Z)))
        (assert (e (S Z) (S (S Z))))
        (assert (e (S (S Z)) (S (S (S Z)))))
        (assert (e (S (S (S Z))) (S (S (S (S Z))))))
        (assert (p Z))
        (assert (forall ((x Nat) (y Nat)) (=> (and (p x) (e x y)) (p y))))
        "#,
    )
    .unwrap();
    let cfg = |semi: bool| SaturationConfig {
        semi_naive: semi,
        parallel: ParallelConfig::with_threads(1),
        ..SaturationConfig::default()
    };
    let (semi_outcome, semi_stats) = saturate(&sys, &cfg(true));
    let (naive_outcome, naive_stats) = saturate(&sys, &cfg(false));
    let (semi_base, naive_base) = match (semi_outcome, naive_outcome) {
        (SaturationOutcome::Saturated(a), SaturationOutcome::Saturated(b)) => (a, b),
        other => panic!("chain system must saturate, got {other:?}"),
    };
    assert_eq!(
        semi_base.ground_facts().collect::<Vec<_>>(),
        naive_base.ground_facts().collect::<Vec<_>>(),
    );
    // 4 edges + 5 p-facts, every one derived by a unique clause
    // instance: the semi-naive engine attempts each exactly once — no
    // duplicate delta attempts.
    assert_eq!(semi_stats.facts as u64, semi_stats.candidates);
    // The naive engine's per-round full rescans show up as matching
    // work: it rematches every old tuple each round, the semi-naive
    // engine never does.
    assert!(
        naive_stats.steps > semi_stats.steps,
        "semi-naive must do less matching work: naive {} vs semi {}",
        naive_stats.steps,
        semi_stats.steps,
    );
    assert_eq!(semi_stats.rounds, naive_stats.rounds);
    assert_eq!(semi_stats.facts, naive_stats.facts);
}

/// The canonical UNSAT example, checked exactly: both engines at every
/// thread count produce the *same certificate*, and it replays.
#[test]
fn engines_and_thread_counts_agree_on_the_even_refutation() {
    let sys = systems().swap_remove(1);
    let cfg = SaturationConfig::default();
    let expect = run(&sys, &cfg, false, 1);
    assert_eq!(expect.variant, "refuted");
    let r = expect.refutation.as_ref().expect("refuted");
    assert!(check_refutation(&sys, r).is_ok());
    for semi in [false, true] {
        for threads in [1usize, 2, 4, 8] {
            let got = run(&sys, &cfg, semi, threads);
            assert_eq!(got, expect, "semi = {semi}, threads = {threads}");
        }
    }
}

/// A tight fact cap that truncates a clause whose facts another clause
/// also derives: the dirty full-rescan replay must reproduce the naive
/// engine's recovery exactly (this is the hazard case for the
/// "all-old tuples derive nothing new" invariant).
#[test]
fn fact_cap_truncation_with_cross_clause_dedup_matches_naive() {
    let sys = systems().swap_remove(7);
    for max_facts in 1..40 {
        let cfg = SaturationConfig {
            max_facts,
            max_rounds: 10,
            max_term_height: 6,
            max_steps: 1_000_000,
            ..SaturationConfig::default()
        };
        let expect = run(&sys, &cfg, false, 1);
        for threads in [1usize, 4] {
            let got = run(&sys, &cfg, true, threads);
            assert_eq!(got, expect, "max_facts = {max_facts}, threads = {threads}");
        }
    }
}
