//! Cancellation leaves no residue.
//!
//! Property tests for the cooperative-cancellation contract: a solve
//! cut off by its [`Guard`] at an *arbitrary* point (random
//! deterministic fuel) must (a) come home as `Interrupted` rather than
//! panicking or corrupting anything, and (b) leave every piece of
//! shared state — the [`AutStore`] a solve verifies against, the term
//! pool inside the saturation fact base — in a state where re-running
//! the same system *uncancelled* is bit-identical to a fresh solve on
//! fresh state.

use proptest::prelude::*;
use ringen_automata::AutStore;
use ringen_chc::{parse_str, ChcSystem};
use ringen_core::saturation::{saturate, saturate_guarded, SaturationConfig, SaturationOutcome};
use ringen_core::{solve_guarded, Guard, RingenConfig};
use ringen_parallel::ParallelConfig;

/// Small systems exercising both SAT and UNSAT paths of the pipeline.
fn systems() -> Vec<ChcSystem> {
    let sources = [
        // SAT — even numbers, regular invariant.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun even (Nat) Bool)
        (assert (even Z))
        (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
        (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
        "#,
        // UNSAT — the query fires after a few rounds.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun even (Nat) Bool)
        (assert (even Z))
        (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
        (assert (=> (even (S (S (S (S Z))))) false))
        "#,
        // SAT — multi-predicate joins keep the refuter busy for several
        // rounds before the finder takes over.
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun p (Nat) Bool)
        (declare-fun q (Nat) Bool)
        (declare-fun r (Nat Nat) Bool)
        (assert (p Z))
        (assert (forall ((x Nat)) (=> (p x) (p (S x)))))
        (assert (forall ((x Nat)) (=> (p (S x)) (q x))))
        (assert (forall ((x Nat) (y Nat)) (=> (and (p x) (q y)) (r x y))))
        "#,
    ];
    sources
        .iter()
        .map(|s| parse_str(s).expect("template parses"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cancel a full solve at a random fuel level against a shared
    /// `AutStore`, then re-run uncancelled **on the same store**: the
    /// answer and statistics must be bit-identical (via their `Debug`
    /// forms, which expose every field) to a fresh solve on a fresh
    /// store. A cancelled run may warm the store's memo tables, but it
    /// must never change what a later run computes.
    #[test]
    fn cancelled_solve_leaves_the_store_without_residue(
        which in 0usize..3,
        fuel in 0u64..300,
        threads_idx in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_idx];
        let sys = systems().swap_remove(which);
        let mut cfg = RingenConfig::quick();
        cfg.saturation.parallel = ParallelConfig::with_threads(threads);
        cfg.finder.parallel = ParallelConfig::with_threads(threads);

        // Fresh solve on a fresh store: the reference result.
        let mut fresh_store = AutStore::new();
        let (expect_answer, expect_stats) =
            solve_guarded(&sys, &cfg, &mut fresh_store, &Guard::new());
        let expect = format!("{expect_answer:?} / {expect_stats:?}");

        // Cancelled solve at an arbitrary point, on the shared store.
        let mut store = AutStore::new();
        let g = Guard::with_fuel(fuel);
        let (cancelled_answer, _) = solve_guarded(&sys, &cfg, &mut store, &g);
        if g.is_cancelled() {
            prop_assert!(
                cancelled_answer.is_interrupted(),
                "tripped guard must yield Interrupted, got {:?}",
                cancelled_answer
            );
        } else {
            // Enough fuel: the run completed and must already match.
            let got = format!("{cancelled_answer:?}");
            let want = format!("{expect_answer:?}");
            prop_assert_eq!(got, want);
        }

        // Uncancelled re-run on the *same* store.
        let (answer, stats) = solve_guarded(&sys, &cfg, &mut store, &Guard::new());
        prop_assert_eq!(format!("{answer:?} / {stats:?}"), expect);
    }

    /// Cancel saturation alone at a random fuel level: the partial fact
    /// base is a *prefix* of the uncancelled run's fact list (whole
    /// in-flight rounds are discarded, never half-merged), and an
    /// uncancelled re-run reproduces the fresh result exactly.
    #[test]
    fn cancelled_saturation_facts_are_a_prefix_of_the_full_run(
        which in 0usize..3,
        fuel in 0u64..200,
        threads_idx in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_idx];
        let sys = systems().swap_remove(which);
        let cfg = SaturationConfig {
            parallel: ParallelConfig::with_threads(threads),
            ..SaturationConfig::default()
        };
        let (full, full_stats) = saturate(&sys, &cfg);
        let full_facts = match &full {
            SaturationOutcome::Refuted(_) => None,
            SaturationOutcome::Saturated(base)
            | SaturationOutcome::Budget(base)
            | SaturationOutcome::Interrupted(base) => {
                Some(base.ground_facts().collect::<Vec<_>>())
            }
        };

        let g = Guard::with_fuel(fuel);
        let (cancelled, cancelled_stats) = saturate_guarded(&sys, &cfg, &g);
        match cancelled {
            SaturationOutcome::Interrupted(base) => {
                prop_assert!(g.is_cancelled());
                // Partial stats are consistent with the partial base.
                prop_assert_eq!(cancelled_stats.facts, base.len());
                if let Some(full_facts) = &full_facts {
                    let partial: Vec<_> = base.ground_facts().collect();
                    prop_assert!(partial.len() <= full_facts.len());
                    prop_assert_eq!(&partial[..], &full_facts[..partial.len()]);
                }
            }
            _ => {
                // Not cancelled in time: the outcome must equal the
                // fresh run's, bit for bit.
                prop_assert_eq!(
                    format!("{cancelled:?} / {cancelled_stats:?}"),
                    format!("{full:?} / {full_stats:?}")
                );
            }
        }

        // And a fresh, unguarded run afterwards is still identical —
        // cancellation touched nothing global.
        let (again, again_stats) = saturate(&sys, &cfg);
        prop_assert_eq!(
            format!("{again:?} / {again_stats:?}"),
            format!("{full:?} / {full_stats:?}")
        );
    }
}
