//! `ringen` — command-line regular-invariant inference for CHCs over
//! ADTs, in the spirit of the original tool: reads an SMT-LIB2-subset
//! file, prints `sat` with the inferred tree-automaton invariant,
//! `unsat` with a ground refutation, or `unknown`.
//!
//! ```text
//! ringen [--quick] [--quiet] FILE.smt2
//! ringen --solver elem|sizeelem|regelem|induction|verimap|portfolio FILE.smt2
//! ```
//!
//! The `regelem` solver is the hybrid chain: regular invariants by
//! finite-model finding, then elementary templates, then the combined
//! template-plus-membership search of `ringen-regelem`. The
//! `portfolio` solver *races* the four representation-class engines
//! concurrently instead, with cooperative cancellation; bound it with
//! `RINGEN_DEADLINE_MS` (a deadlined race exits cleanly with
//! `unknown`).

use std::process::ExitCode;

use ringen_automata::AutStore;
use ringen_chc::parse_str;
use ringen_core::{solve_guarded, Answer, Guard, RingenConfig};

fn main() -> ExitCode {
    let mut quick = false;
    let mut quiet = false;
    let mut solver = String::from("ringen");
    let mut file = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--quiet" => quiet = true,
            "--solver" => match args.next() {
                Some(s) => solver = s,
                None => return usage("missing value for --solver"),
            },
            "-h" | "--help" => {
                eprintln!("usage: ringen [--quick] [--quiet] [--solver NAME] FILE.smt2");
                eprintln!(
                    "solvers: ringen (default), elem, sizeelem, regelem, induction, verimap, \
                     portfolio"
                );
                return ExitCode::SUCCESS;
            }
            _ if file.is_none() => file = Some(a),
            _ => return usage("unexpected argument"),
        }
    }
    let Some(file) = file else {
        return usage("no input file");
    };
    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ringen: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sys = match parse_str(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ringen: parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = sys.well_sorted() {
        eprintln!("ringen: ill-sorted input: {e}");
        return ExitCode::FAILURE;
    }

    match solver.as_str() {
        "ringen" => {
            let cfg = if quick {
                RingenConfig::quick()
            } else {
                RingenConfig::default()
            };
            // The CLI owns one automaton store for the whole solve, so
            // every verification pass shares the memoized Boolean
            // algebra (RINGEN_AUT_CACHE=0 forces pass-through).
            let mut store = AutStore::new();
            let (answer, stats) = solve_guarded(&sys, &cfg, &mut store, &Guard::from_env());
            match answer {
                Answer::Sat(sat) => {
                    println!("sat");
                    if !quiet {
                        println!("; finite model size {:?}", stats.model_size);
                        let st = store.stats();
                        println!(
                            "; automaton store: {} tables, {} memo hits / {} misses",
                            st.interned_dftas, st.memo_hits, st.memo_misses
                        );
                        print!("{}", sat.invariant.display(&sat.preprocessed.system));
                    }
                }
                Answer::Unsat(r) => {
                    println!("unsat");
                    if !quiet {
                        println!("; ground refutation with {} steps", r.len());
                    }
                }
                Answer::Unknown(d) => {
                    println!("unknown");
                    if !quiet {
                        println!("; {d:?}");
                    }
                }
                Answer::Interrupted => {
                    println!("unknown");
                    if !quiet {
                        println!("; interrupted (RINGEN_DEADLINE_MS)");
                    }
                }
            }
        }
        "elem" => {
            let cfg = if quick {
                ringen_elem::ElemConfig::quick()
            } else {
                Default::default()
            };
            let (answer, _) = ringen_elem::solve_elem_guarded(&sys, &cfg, &Guard::from_env());
            report(answer.is_sat(), answer.is_unsat());
        }
        "sizeelem" => {
            let cfg = if quick {
                ringen_sizeelem::SizeElemConfig::quick()
            } else {
                Default::default()
            };
            let (answer, _) =
                ringen_sizeelem::solve_size_elem_guarded(&sys, &cfg, &Guard::from_env());
            report(answer.is_sat(), answer.is_unsat());
        }
        "regelem" => {
            let cfg = if quick {
                ringen_regelem::RegElemConfig::quick()
            } else {
                Default::default()
            };
            let (answer, _) = ringen_regelem::solve_regelem_guarded(&sys, &cfg, &Guard::from_env());
            match answer {
                ringen_regelem::RegElemAnswer::Sat(inv, provenance) => {
                    println!("sat");
                    if !quiet {
                        println!("; deciding phase: {provenance:?}");
                        for (p, f) in &inv.formulas {
                            println!("; {}(#…) ≡ {}", sys.rels.decl(*p).name, f.display(&sys.sig));
                        }
                    }
                }
                ringen_regelem::RegElemAnswer::Unsat(r) => {
                    println!("unsat");
                    if !quiet {
                        println!("; ground refutation with {} steps", r.len());
                    }
                }
                ringen_regelem::RegElemAnswer::Unknown
                | ringen_regelem::RegElemAnswer::Interrupted => println!("unknown"),
            }
        }
        "induction" => {
            let cfg = if quick {
                ringen_induction::InductionConfig::quick()
            } else {
                Default::default()
            };
            // Well-sortedness was checked right after parsing.
            let (answer, _) =
                ringen_induction::solve_induction(&sys, &cfg).expect("checked well-sorted");
            report(answer.is_sat(), answer.is_unsat());
        }
        "portfolio" => {
            use ringen::portfolio::{solve_portfolio, PortfolioAnswer, PortfolioConfig};
            let (answer, stats) = solve_portfolio(&sys, &PortfolioConfig::from_env());
            match answer {
                PortfolioAnswer::Sat(_) => println!("sat"),
                PortfolioAnswer::Unsat(_) => println!("unsat"),
                PortfolioAnswer::Unknown | PortfolioAnswer::Interrupted => println!("unknown"),
            }
            if !quiet {
                for report in &stats.engines {
                    println!(
                        "; {:<10} {:?} after {}ms",
                        report.name,
                        report.status,
                        report.elapsed.as_millis()
                    );
                }
            }
        }
        "verimap" => {
            let cfg = if quick {
                ringen_verimap::VerimapConfig::quick()
            } else {
                Default::default()
            };
            let (answer, _) = ringen_verimap::solve_verimap_guarded(&sys, &cfg, &Guard::from_env())
                .expect("checked well-sorted");
            report(answer.is_sat(), answer.is_unsat());
        }
        other => return usage(&format!("unknown solver {other}")),
    }
    ExitCode::SUCCESS
}

fn report(sat: bool, unsat: bool) {
    if sat {
        println!("sat");
    } else if unsat {
        println!("unsat");
    } else {
        println!("unknown");
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ringen: {msg}; try --help");
    ExitCode::FAILURE
}
