//! `ringen` — command-line regular-invariant inference for CHCs over
//! ADTs, in the spirit of the original tool: reads an SMT-LIB2-subset
//! file, prints `sat` with the inferred tree-automaton invariant,
//! `unsat` with a ground refutation, or `unknown`.
//!
//! ```text
//! ringen [--quick] [--quiet] [--report-json PATH] FILE.smt2
//! ringen --solver elem|sizeelem|regelem|induction|verimap|portfolio FILE.smt2
//! ringen --serve [--health-json PATH] FILE.smt2 [FILE.smt2 ...]
//! ```
//!
//! The `regelem` solver is the hybrid chain: regular invariants by
//! finite-model finding, then elementary templates, then the combined
//! template-plus-membership search of `ringen-regelem`. The
//! `portfolio` solver *races* the four representation-class engines
//! concurrently instead, with cooperative cancellation; bound it with
//! `RINGEN_DEADLINE_MS` (a deadlined race exits cleanly with
//! `unknown`).
//!
//! `--report-json PATH` writes a `ringen-solve-report-v1` document —
//! the recorder's span tree plus the engines' statistics — after the
//! solve. Without the flag, `RINGEN_TRACE=PATH` does the same (and
//! `RINGEN_TRACE_FORMAT=chrome` switches the serialization to Chrome
//! `trace_event` JSON for Perfetto). See `ENVIRONMENT.md`.
//!
//! `--serve` runs every positional file as one batch through the
//! fault-tolerant solve service (`ringen-server`): bounded admission,
//! per-query deadlines and retries, panic quarantine, and a shared
//! verdict memo. One status line per file goes to stdout, and the
//! service's health snapshot (`ringen-server-health-v1`) goes to
//! `--health-json PATH` (validated by `trace_check --health`) or, by
//! default, to stdout. The `RINGEN_SERVER_*`, `RINGEN_DEADLINE_MS`,
//! and `RINGEN_FAULTS` knobs configure the service.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use ringen::obs::report::Section;
use ringen::report::{self, SolveReport, TraceFormat};
use ringen_automata::AutStore;
use ringen_chc::parse_str;
use ringen_core::{solve_guarded, Answer, Guard, Recorder, RecorderLimits, RingenConfig};

fn main() -> ExitCode {
    let mut quick = false;
    let mut quiet = false;
    let mut serve = false;
    let mut solver = String::from("ringen");
    let mut report_json: Option<PathBuf> = None;
    let mut health_json: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--quiet" => quiet = true,
            "--serve" => serve = true,
            "--solver" => match args.next() {
                Some(s) => solver = s,
                None => return usage("missing value for --solver"),
            },
            "--report-json" => match args.next() {
                Some(p) => report_json = Some(PathBuf::from(p)),
                None => return usage("missing value for --report-json"),
            },
            "--health-json" => match args.next() {
                Some(p) => health_json = Some(PathBuf::from(p)),
                None => return usage("missing value for --health-json"),
            },
            "-h" | "--help" => {
                eprintln!(
                    "usage: ringen [--quick] [--quiet] [--solver NAME] [--report-json PATH] \
                     FILE.smt2"
                );
                eprintln!("       ringen --serve [--health-json PATH] FILE.smt2 [FILE.smt2 ...]");
                eprintln!(
                    "solvers: ringen (default), elem, sizeelem, regelem, induction, verimap, \
                     portfolio"
                );
                return ExitCode::SUCCESS;
            }
            _ if !a.starts_with('-') => files.push(a),
            _ => return usage("unexpected argument"),
        }
    }
    if serve {
        if files.is_empty() {
            return usage("no input files");
        }
        return serve_batch(&files, health_json, quiet);
    }
    if files.len() > 1 {
        return usage("multiple input files need --serve");
    }
    let Some(file) = files.pop() else {
        return usage("no input file");
    };
    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ringen: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sys = match parse_str(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ringen: parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = sys.well_sorted() {
        eprintln!("ringen: ill-sorted input: {e}");
        return ExitCode::FAILURE;
    }

    // The flag wins over the environment; `RINGEN_TRACE_FORMAT` only
    // applies to the env path (`--report-json` always writes the
    // report document its name promises).
    let trace = report_json
        .map(|p| (p, TraceFormat::Report))
        .or_else(report::trace_from_env);
    let recorder = if trace.is_some() {
        // Bounded sinks apply to CLI traces too: a capped ring or
        // sampled recorder still reports exact dropped counts.
        Recorder::with_limits(RecorderLimits::from_env())
    } else {
        Recorder::disabled()
    };
    let guard = Guard::from_env().with_recorder(recorder.clone());
    let start = Instant::now();
    let root = recorder.span("solve");

    let mut sections: Vec<Section> = Vec::new();
    let verdict: &'static str = match solver.as_str() {
        "ringen" => {
            let cfg = if quick {
                RingenConfig::quick()
            } else {
                RingenConfig::default()
            };
            // The CLI owns one automaton store for the whole solve, so
            // every verification pass shares the memoized Boolean
            // algebra (RINGEN_AUT_CACHE=0 forces pass-through).
            let mut store = AutStore::new();
            let (answer, stats) = solve_guarded(&sys, &cfg, &mut store, &guard);
            sections = report::solve_sections(&stats);
            sections.push(report::store_section(&store.stats()));
            match answer {
                Answer::Sat(sat) => {
                    println!("sat");
                    if !quiet {
                        println!("; finite model size {:?}", stats.model_size);
                        if let Some(f) = &stats.finder {
                            println!(
                                "; fmf sweep: {} vectors ({} solver reuses), {} delta clauses, \
                                 {} atoms minimized away",
                                f.vectors_tried,
                                f.solver_reuses,
                                f.delta_clauses,
                                f.minimized_atoms
                            );
                        }
                        let st = store.stats();
                        println!(
                            "; automaton store: {} tables, {} memo hits / {} misses",
                            st.interned_dftas, st.memo_hits, st.memo_misses
                        );
                        print!("{}", sat.invariant.display(&sat.preprocessed.system));
                    }
                    "sat"
                }
                Answer::Unsat(r) => {
                    println!("unsat");
                    if !quiet {
                        println!("; ground refutation with {} steps", r.len());
                    }
                    "unsat"
                }
                Answer::Unknown(d) => {
                    println!("unknown");
                    if !quiet {
                        println!("; {d:?}");
                    }
                    "unknown"
                }
                Answer::Interrupted => {
                    println!("unknown");
                    if !quiet {
                        println!("; interrupted (RINGEN_DEADLINE_MS)");
                    }
                    "interrupted"
                }
            }
        }
        "elem" => {
            let cfg = if quick {
                ringen_elem::ElemConfig::quick()
            } else {
                Default::default()
            };
            let (answer, stats) = ringen_elem::solve_elem_guarded(&sys, &cfg, &guard);
            sections.push(report::elem_section(&stats));
            print_plain(answer.is_sat(), answer.is_unsat());
            verdict_str(answer.is_sat(), answer.is_unsat(), answer.is_interrupted())
        }
        "sizeelem" => {
            let cfg = if quick {
                ringen_sizeelem::SizeElemConfig::quick()
            } else {
                Default::default()
            };
            let (answer, stats) = ringen_sizeelem::solve_size_elem_guarded(&sys, &cfg, &guard);
            sections.push(report::sizeelem_section(&stats));
            print_plain(answer.is_sat(), answer.is_unsat());
            verdict_str(answer.is_sat(), answer.is_unsat(), answer.is_interrupted())
        }
        "regelem" => {
            let cfg = if quick {
                ringen_regelem::RegElemConfig::quick()
            } else {
                Default::default()
            };
            let (answer, stats) = ringen_regelem::solve_regelem_guarded(&sys, &cfg, &guard);
            sections = report::regelem_sections(&stats);
            match answer {
                ringen_regelem::RegElemAnswer::Sat(inv, provenance) => {
                    println!("sat");
                    if !quiet {
                        println!("; deciding phase: {provenance:?}");
                        for (p, f) in &inv.formulas {
                            println!("; {}(#…) ≡ {}", sys.rels.decl(*p).name, f.display(&sys.sig));
                        }
                    }
                    "sat"
                }
                ringen_regelem::RegElemAnswer::Unsat(r) => {
                    println!("unsat");
                    if !quiet {
                        println!("; ground refutation with {} steps", r.len());
                    }
                    "unsat"
                }
                ringen_regelem::RegElemAnswer::Unknown => {
                    println!("unknown");
                    "unknown"
                }
                ringen_regelem::RegElemAnswer::Interrupted => {
                    println!("unknown");
                    "interrupted"
                }
            }
        }
        "induction" => {
            let cfg = if quick {
                ringen_induction::InductionConfig::quick()
            } else {
                Default::default()
            };
            // Well-sortedness was checked right after parsing.
            let (answer, _) =
                ringen_induction::solve_induction(&sys, &cfg).expect("checked well-sorted");
            print_plain(answer.is_sat(), answer.is_unsat());
            verdict_str(answer.is_sat(), answer.is_unsat(), false)
        }
        "portfolio" => {
            use ringen::portfolio::{solve_portfolio_guarded, PortfolioAnswer, PortfolioConfig};
            let (answer, stats) =
                solve_portfolio_guarded(&sys, &PortfolioConfig::from_env(), &guard);
            sections = report::portfolio_sections(&stats);
            let v = match answer {
                PortfolioAnswer::Sat(_) => "sat",
                PortfolioAnswer::Unsat(_) => "unsat",
                PortfolioAnswer::Unknown => "unknown",
                PortfolioAnswer::Interrupted => "interrupted",
            };
            println!("{}", if v == "interrupted" { "unknown" } else { v });
            if !quiet {
                for report in &stats.engines {
                    println!(
                        "; {:<10} {:?} after {}ms",
                        report.name,
                        report.status,
                        report.elapsed.as_millis()
                    );
                }
            }
            v
        }
        "verimap" => {
            let cfg = if quick {
                ringen_verimap::VerimapConfig::quick()
            } else {
                Default::default()
            };
            let (answer, _) = ringen_verimap::solve_verimap_guarded(&sys, &cfg, &guard)
                .expect("checked well-sorted");
            print_plain(answer.is_sat(), answer.is_unsat());
            verdict_str(answer.is_sat(), answer.is_unsat(), answer.is_interrupted())
        }
        other => return usage(&format!("unknown solver {other}")),
    };

    drop(root);
    if let Some((path, format)) = trace {
        let doc = SolveReport {
            program: file.clone(),
            solver: solver.clone(),
            verdict: verdict.to_string(),
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            trace: recorder.snapshot(),
            sections,
        };
        if let Err(e) = std::fs::write(&path, report::render(&doc, format)) {
            eprintln!("ringen: cannot write trace {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `--serve`: every file is one query in a single batch against the
/// resident solve service; the health snapshot is the batch's
/// machine-readable summary.
fn serve_batch(files: &[String], health_json: Option<PathBuf>, quiet: bool) -> ExitCode {
    use ringen::server::{Query, QueryOutcome, ServerConfig, SolveServer};

    let mut queries = Vec::with_capacity(files.len());
    for file in files {
        match std::fs::read_to_string(file) {
            Ok(text) => queries.push(Query::new(file.clone(), text)),
            Err(e) => {
                eprintln!("ringen: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let server = SolveServer::new(ServerConfig::from_env());
    let outcomes = server.submit_batch(&queries);
    let mut failed = false;
    for outcome in &outcomes {
        println!("{}", outcome.describe());
        if matches!(outcome, QueryOutcome::Invalid { .. }) {
            failed = true;
        }
    }
    let health = server.health();
    if !quiet {
        eprintln!(
            "; served {} queries: {} completed, {} shed, {} retries, {} quarantined, \
             {} cache hits",
            outcomes.len(),
            health.completed,
            health.sheds,
            health.retries,
            health.quarantined,
            health.cache_hits
        );
    }
    match health_json {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, health.to_json_string()) {
                eprintln!(
                    "ringen: cannot write health snapshot {}: {e}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        }
        None => println!("{}", health.to_json_string()),
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_plain(sat: bool, unsat: bool) {
    if sat {
        println!("sat");
    } else if unsat {
        println!("unsat");
    } else {
        println!("unknown");
    }
}

fn verdict_str(sat: bool, unsat: bool, interrupted: bool) -> &'static str {
    if sat {
        "sat"
    } else if unsat {
        "unsat"
    } else if interrupted {
        "interrupted"
    } else {
        "unknown"
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ringen: {msg}; try --help");
    ExitCode::FAILURE
}
