//! Deterministic fault injection for chaos testing the solver stack.
//!
//! Every engine opens [`Recorder`] spans through the guard it was
//! handed, so span-open probe points already thread the whole stack —
//! saturation rounds, FMF sweeps, cube queries, the portfolio race.
//! This module turns those probe points into fault sites: a
//! [`FaultPlan`] names which spans to sabotage and how (panic, delay,
//! or cooperative cancel), and [`Faults::arm`] installs the plan on a
//! guard as an `ringen-obs` [`ProbeHook`](ringen_obs::ProbeHook).
//! Children derived from an armed guard inherit the hook with the
//! recorder, so one `arm` covers every fixpoint a query runs.
//!
//! The plan grammar (also accepted from `RINGEN_FAULTS`, see
//! `ENVIRONMENT.md`) is a comma-separated list of entries:
//!
//! ```text
//! panic@NAME[#K]        panic at the K-th (default: every) open of NAME
//! cancel@NAME[#K]       cancel the armed guard at that open
//! delay@NAME[#K][:MS]   sleep MS milliseconds (default 1) at that open
//! SEED:RATE             random mode: at every span open, with
//!                       probability RATE, inject a panic/delay/cancel
//!                       chosen by a SEED-keyed deterministic generator
//! ```
//!
//! `NAME` is a span name as it appears in traces (`fmf`, `saturation`,
//! `race`, ...) or `*` for every span. Occurrence counts are per
//! [`Faults`] handle and global across threads, so targeted schedules
//! are fully deterministic under `RINGEN_THREADS=1`; random mode is
//! deterministic in the *sequence* of draws but thread interleaving
//! decides which span sees which draw.
//!
//! Faults fire *before* the span opens (the probe runs ahead of any
//! recorder bookkeeping), so an injected panic never leaves a span
//! stack half-open — the invariant the chaos proptests lean on when
//! they assert that a faulted query leaves shared state bit-identical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ringen_obs::ProbeHook;

use crate::Guard;

/// What an injected fault does at its span-open site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `panic!` with a recognizable message — exercises panic
    /// isolation/quarantine paths.
    Panic,
    /// Sleep for the given duration — exercises deadlines and races.
    Delay(Duration),
    /// Cancel the armed guard — exercises cooperative-interrupt paths.
    Cancel,
}

/// One targeted entry of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    pub kind: FaultKind,
    /// Span name to match, or `*` for every span.
    pub span: String,
    /// Fire only on the K-th matching open (1-based); `None` fires on
    /// every match.
    pub nth: Option<u64>,
}

impl FaultSpec {
    fn matches(&self, name: &str) -> bool {
        self.span == "*" || self.span == name
    }
}

/// A parsed fault schedule: targeted specs plus an optional random
/// mode. The empty plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub specs: Vec<FaultSpec>,
    /// `(seed, rate)`: at every span open, with probability `rate`,
    /// inject a fault drawn from a `seed`-keyed generator.
    pub random: Option<(u64, f64)>,
}

impl FaultPlan {
    /// Parses the `RINGEN_FAULTS` grammar (see the module docs).
    /// Errors name the offending entry and what was expected.
    pub fn parse(src: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for raw in src.split(',') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some((kind, target)) = entry.split_once('@') {
                plan.specs.push(parse_targeted(entry, kind, target)?);
            } else {
                let (seed, rate) = entry
                    .split_once(':')
                    .ok_or_else(|| format!("`{entry}`: expected `KIND@SPAN` or `SEED:RATE`"))?;
                let seed = seed
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("`{entry}`: expected an integer seed"))?;
                let rate = rate
                    .trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| format!("`{entry}`: expected a rate in [0, 1]"))?;
                if plan.random.replace((seed, rate)).is_some() {
                    return Err(format!("`{entry}`: second SEED:RATE entry"));
                }
            }
        }
        Ok(plan)
    }

    /// The plan named by `RINGEN_FAULTS`. Unset or empty means no
    /// plan; a malformed value is reported to stderr and ignored
    /// rather than silently arming the wrong schedule.
    pub fn from_env() -> Option<FaultPlan> {
        let raw = std::env::var("RINGEN_FAULTS").ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&raw) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("ringen: ignoring RINGEN_FAULTS: {e}");
                None
            }
        }
    }

    /// Whether the plan can ever fire.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty() && self.random.is_none()
    }
}

fn parse_targeted(entry: &str, kind: &str, target: &str) -> Result<FaultSpec, String> {
    let (kind, target) = match kind.trim() {
        "panic" => (FaultKind::Panic, target.to_string()),
        "cancel" => (FaultKind::Cancel, target.to_string()),
        "delay" => {
            // `delay@NAME[#K][:MS]` — the millisecond suffix comes off
            // before the occurrence marker.
            let (rest, ms) = match target.rsplit_once(':') {
                Some((rest, ms)) => {
                    let ms = ms
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("`{entry}`: expected integer milliseconds"))?;
                    (rest.to_string(), ms)
                }
                None => (target.to_string(), 1),
            };
            (FaultKind::Delay(Duration::from_millis(ms)), rest)
        }
        other => {
            return Err(format!(
                "`{entry}`: unknown fault kind `{other}` (expected panic, delay, or cancel)"
            ))
        }
    };
    let (span, nth) = match target.split_once('#') {
        Some((span, k)) => {
            let k = k
                .trim()
                .parse::<u64>()
                .ok()
                .filter(|&k| k > 0)
                .ok_or_else(|| format!("`{entry}`: expected a positive occurrence index"))?;
            (span.trim().to_string(), Some(k))
        }
        None => (target.trim().to_string(), None),
    };
    if span.is_empty() {
        return Err(format!("`{entry}`: expected a span name or `*`"));
    }
    Ok(FaultSpec { kind, span, nth })
}

/// Counts of faults actually injected by a [`Faults`] handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub panics: u64,
    pub delays: u64,
    pub cancels: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.panics + self.delays + self.cancels
    }
}

#[derive(Debug)]
struct FaultsInner {
    plan: FaultPlan,
    /// Per-spec count of matching span opens (for `#K` scheduling).
    seen: Vec<AtomicU64>,
    /// Random-mode generator state (splitmix64 over a shared counter).
    rng: AtomicU64,
    panics: AtomicU64,
    delays: AtomicU64,
    cancels: AtomicU64,
}

/// A clonable fault injector: one plan plus the occurrence counters
/// and injection stats shared by every guard it arms.
#[derive(Debug, Clone)]
pub struct Faults {
    inner: Arc<FaultsInner>,
}

impl Faults {
    /// An injector for `plan` with fresh counters.
    pub fn new(plan: FaultPlan) -> Faults {
        let seen = plan.specs.iter().map(|_| AtomicU64::new(0)).collect();
        let rng = AtomicU64::new(plan.random.map_or(0, |(seed, _)| seed));
        Faults {
            inner: Arc::new(FaultsInner {
                plan,
                seen,
                rng,
                panics: AtomicU64::new(0),
                delays: AtomicU64::new(0),
                cancels: AtomicU64::new(0),
            }),
        }
    }

    /// What has been injected so far, across all armed guards.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            panics: self.inner.panics.load(Ordering::Relaxed),
            delays: self.inner.delays.load(Ordering::Relaxed),
            cancels: self.inner.cancels.load(Ordering::Relaxed),
        }
    }

    /// `guard` with this plan installed at its span-open probe points.
    ///
    /// The returned guard shares `guard`'s cancellation flag and
    /// recorder state; injected `Cancel` faults trip that shared flag
    /// (so the armed guard and all its children see it), never any
    /// ancestor. Children derived from the armed guard inherit the
    /// hook, so the whole engine stack under it is fault-visible.
    pub fn arm(&self, guard: &Guard) -> Guard {
        if self.inner.plan.is_empty() {
            return guard.clone();
        }
        // The capture is a pre-arm clone: its recorder has no probe,
        // so there is no reference cycle through the hook.
        let target = guard.clone();
        let inner = self.inner.clone();
        let hook = ProbeHook::new(move |name| inner.on_span(name, &target));
        let recorder = guard.recorder().clone().with_probe(hook);
        guard.clone().with_recorder(recorder)
    }
}

impl FaultsInner {
    fn on_span(&self, name: &str, target: &Guard) {
        for (spec, seen) in self.plan.specs.iter().zip(&self.seen) {
            if !spec.matches(name) {
                continue;
            }
            let n = seen.fetch_add(1, Ordering::Relaxed) + 1;
            if spec.nth.is_none_or(|k| k == n) {
                self.fire(spec.kind, name, target);
            }
        }
        if let Some((_, rate)) = self.plan.random {
            // Draw once for the gate, once for the kind, so the kind
            // sequence is independent of the hit rate.
            if ((self.next_u64() >> 11) as f64) < rate * (1u64 << 53) as f64 {
                let kind = match self.next_u64() % 3 {
                    0 => FaultKind::Panic,
                    1 => FaultKind::Delay(Duration::from_millis(1)),
                    _ => FaultKind::Cancel,
                };
                self.fire(kind, name, target);
            }
        }
    }

    fn fire(&self, kind: FaultKind, name: &str, target: &Guard) {
        match kind {
            FaultKind::Panic => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                panic!("ringen-faults: injected panic at span `{name}`");
            }
            FaultKind::Delay(d) => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
            }
            FaultKind::Cancel => {
                self.cancels.fetch_add(1, Ordering::Relaxed);
                target.cancel();
            }
        }
    }

    /// splitmix64 over an atomic counter: wait-free, and deterministic
    /// in the sequence of values drawn.
    fn next_u64(&self) -> u64 {
        let x = self
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let z = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let plan = FaultPlan::parse("panic@fmf, delay@race#2:5, cancel@*, 42:0.25").unwrap();
        assert_eq!(plan.random, Some((42, 0.25)));
        assert_eq!(
            plan.specs,
            vec![
                FaultSpec {
                    kind: FaultKind::Panic,
                    span: "fmf".into(),
                    nth: None
                },
                FaultSpec {
                    kind: FaultKind::Delay(Duration::from_millis(5)),
                    span: "race".into(),
                    nth: Some(2)
                },
                FaultSpec {
                    kind: FaultKind::Cancel,
                    span: "*".into(),
                    nth: None
                },
            ]
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(
            FaultPlan::parse("delay@solve").unwrap().specs[0].kind
                == FaultKind::Delay(Duration::from_millis(1))
        );
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "oops@fmf",
            "panic@",
            "panic@fmf#0",
            "panic@fmf#x",
            "delay@fmf:abc",
            "justaname",
            "1:2.0",
            "x:0.5",
            "1:0.5,2:0.5",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn targeted_panic_fires_on_the_scheduled_occurrence() {
        let faults = Faults::new(FaultPlan::parse("panic@step#2").unwrap());
        let guard = faults.arm(&Guard::new());
        drop(guard.recorder().span("step"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            drop(guard.recorder().span("step"));
        }));
        assert!(err.is_err());
        // Third and later opens are quiet again.
        drop(guard.recorder().span("step"));
        assert_eq!(faults.stats().panics, 1);
    }

    #[test]
    fn cancel_fault_trips_the_armed_guard_only() {
        let root = Guard::new();
        let faults = Faults::new(FaultPlan::parse("cancel@fixpoint").unwrap());
        let armed = faults.arm(&root.child());
        drop(armed.recorder().span("elsewhere"));
        assert!(!armed.is_cancelled());
        drop(armed.recorder().span("fixpoint"));
        assert!(armed.is_cancelled());
        assert!(!root.is_cancelled());
        assert_eq!(faults.stats().cancels, 1);
    }

    #[test]
    fn children_of_an_armed_guard_inherit_the_faults() {
        let faults = Faults::new(FaultPlan::parse("cancel@deep").unwrap());
        let armed = faults.arm(&Guard::new());
        let grandchild = armed.child().child();
        drop(grandchild.recorder().span("deep"));
        // The cancel lands on the armed ancestor, so the whole subtree
        // (including the grandchild that tripped it) sees it.
        assert!(grandchild.is_cancelled());
        assert!(armed.is_cancelled());
    }

    #[test]
    fn random_mode_is_deterministic_and_rate_bounded() {
        let run = |seed| {
            let faults = Faults::new(FaultPlan {
                specs: Vec::new(),
                random: Some((seed, 0.5)),
            });
            let guard = faults.arm(&Guard::new());
            for _ in 0..200 {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    drop(guard.recorder().span("work"));
                }));
            }
            faults.stats()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same injections");
        assert!(a.injected() > 0, "rate 0.5 over 200 spans fired nothing");
        assert!(a.injected() < 200);
        assert_ne!(a, run(8), "different seed, different schedule");
    }

    #[test]
    fn rate_zero_and_empty_plan_never_fire() {
        let faults = Faults::new(FaultPlan {
            specs: Vec::new(),
            random: Some((1, 0.0)),
        });
        let guard = faults.arm(&Guard::new());
        for _ in 0..100 {
            drop(guard.recorder().span("work"));
        }
        assert_eq!(faults.stats(), FaultStats::default());
        assert_eq!(Faults::new(FaultPlan::default()).stats().injected(), 0);
    }
}
