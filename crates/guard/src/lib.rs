//! Cooperative cancellation tokens for the `ringen` solver stack.
//!
//! Every engine in the workspace can diverge on an adversarial input, so
//! every long-running fixpoint accepts a [`Guard`]: a cheap,
//! `Arc<AtomicBool>`-backed cancellation token with optional wall-clock
//! deadline, deterministic fuel (for tests), and child derivation (a
//! portfolio racer hands each engine a child and cancels the losers).
//!
//! Polling discipline: `Guard::is_cancelled` is a relaxed atomic load plus,
//! when armed, an `Instant::now()` deadline comparison. Hot inner loops
//! should not even pay that — they wrap the guard in a [`Poller`], which
//! consults the token only every `period` iterations.
//!
//! The deadline knob used by binaries is the `RINGEN_DEADLINE_MS`
//! environment variable (see `ENVIRONMENT.md` at the workspace root);
//! [`Guard::from_env`] constructs the matching token.
//!
//! A guard also carries the solve's [`Recorder`] (`ringen-obs`): the
//! engines all take a `&Guard` already, so riding the token is how
//! observability reaches every fixpoint without another threaded
//! parameter. Children inherit the parent's recorder; the default is
//! the disabled recorder — or a live one when `RINGEN_TRACE` is set,
//! so the whole test suite can run instrumented.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod faults;

pub use faults::{FaultKind, FaultPlan, FaultSpec, FaultStats, Faults};
pub use ringen_obs::{ProbeHook, Recorder, RecorderLimits, SharedRecorder, Span, SpanHandle};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Deterministic cancellation for tests: when >= 0, each
    /// `is_cancelled` call burns one unit and the guard trips once the
    /// tank is empty. Negative means "no fuel limit".
    fuel: AtomicI64,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if self.fuel.load(Ordering::Relaxed) >= 0 && self.fuel.fetch_sub(1, Ordering::Relaxed) <= 0
        {
            self.cancelled.store(true, Ordering::Relaxed);
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(parent) = &self.parent {
            if parent.is_cancelled() {
                self.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }
}

/// A clonable cooperative cancellation token.
///
/// Clones share the same underlying flag; [`Guard::child`] derives a new
/// token that trips when either it or any ancestor is cancelled.
#[derive(Debug, Clone)]
pub struct Guard {
    inner: Arc<Inner>,
    recorder: Recorder,
}

impl Default for Guard {
    fn default() -> Self {
        Guard::new()
    }
}

impl Guard {
    fn from_parts(deadline: Option<Instant>, fuel: i64, parent: Option<Arc<Inner>>) -> Self {
        Guard {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
                fuel: AtomicI64::new(fuel),
                parent,
            }),
            recorder: Recorder::from_env(),
        }
    }

    /// A token that only trips on an explicit [`Guard::cancel`].
    pub fn new() -> Self {
        Guard::from_parts(None, -1, None)
    }

    /// A token that trips `timeout` from now (or on explicit cancel).
    pub fn with_deadline(timeout: Duration) -> Self {
        Guard::deadline_at(Instant::now() + timeout)
    }

    /// A token that trips at `deadline` (or on explicit cancel).
    pub fn deadline_at(deadline: Instant) -> Self {
        Guard::from_parts(Some(deadline), -1, None)
    }

    /// A deterministic token for tests: trips after `polls` calls to
    /// [`Guard::is_cancelled`], independent of wall clock.
    pub fn with_fuel(polls: u64) -> Self {
        Guard::from_parts(None, i64::try_from(polls).unwrap_or(i64::MAX), None)
    }

    /// Reads `RINGEN_DEADLINE_MS`: a parseable positive value yields a
    /// deadline token, anything else a plain one.
    pub fn from_env() -> Self {
        match deadline_ms_from_env() {
            Some(ms) => Guard::with_deadline(Duration::from_millis(ms)),
            None => Guard::new(),
        }
    }

    /// Derives a child token: cancelled when this token is, but
    /// cancelling the child leaves the parent (and siblings) running.
    /// The child records into the parent's recorder.
    pub fn child(&self) -> Self {
        Guard::from_parts(None, -1, Some(self.inner.clone())).with_recorder(self.recorder.clone())
    }

    /// A child token with its own, tighter deadline.
    pub fn child_with_deadline(&self, timeout: Duration) -> Self {
        Guard::from_parts(Some(Instant::now() + timeout), -1, Some(self.inner.clone()))
            .with_recorder(self.recorder.clone())
    }

    /// This token recording into `recorder` instead: same cancellation
    /// state (the flag is shared through the `Arc`), new observer.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// This token with `faults` armed at its span-open probe points —
    /// shorthand for [`Faults::arm`].
    pub fn with_faults(self, faults: &Faults) -> Self {
        faults.arm(&self)
    }

    /// The recorder every engine under this guard reports into. The
    /// default (unless `RINGEN_TRACE` is set) is the disabled
    /// recorder, whose whole cost is one relaxed load per probe.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Trips the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has tripped (explicit cancel, deadline passed,
    /// fuel exhausted, or any ancestor cancelled). Cheap, but hot loops
    /// should amortize through a [`Poller`].
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// The wall-clock deadline, if one was armed on this token.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

/// Parses `RINGEN_DEADLINE_MS`; `0`, unset, or garbage mean "no deadline".
pub fn deadline_ms_from_env() -> Option<u64> {
    std::env::var("RINGEN_DEADLINE_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
}

/// Default amortization period for [`Poller`]: hot loops touch the
/// shared atomic (and the clock) once per this many iterations.
pub const DEFAULT_POLL_PERIOD: u32 = 128;

/// Amortized polling helper: `poll()` returns `true` (cancelled) at most
/// once per `period` calls, so inner loops pay one local increment per
/// iteration instead of an atomic load plus `Instant::now()`.
#[derive(Debug)]
pub struct Poller<'a> {
    guard: &'a Guard,
    period: u32,
    countdown: u32,
    tripped: bool,
}

impl<'a> Poller<'a> {
    /// A poller with the [`DEFAULT_POLL_PERIOD`].
    pub fn new(guard: &'a Guard) -> Self {
        Poller::with_period(guard, DEFAULT_POLL_PERIOD)
    }

    /// A poller consulting the guard every `period` calls (min 1).
    pub fn with_period(guard: &'a Guard, period: u32) -> Self {
        let period = period.max(1);
        Poller {
            guard,
            period,
            // Check on the first call so an already-cancelled guard is
            // noticed before any work happens.
            countdown: 1,
            tripped: false,
        }
    }

    /// `true` once the guard has tripped; sticky after the first hit.
    pub fn poll(&mut self) -> bool {
        if self.tripped {
            return true;
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.period;
            if self.guard.is_cancelled() {
                self.tripped = true;
            }
        }
        self.tripped
    }

    /// Forces a guard check on the next [`Poller::poll`].
    pub fn arm(&mut self) {
        self.countdown = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_guard_only_trips_on_cancel() {
        let g = Guard::new();
        for _ in 0..1_000 {
            assert!(!g.is_cancelled());
        }
        g.cancel();
        assert!(g.is_cancelled());
        g.cancel(); // idempotent
        assert!(g.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let g = Guard::new();
        let h = g.clone();
        h.cancel();
        assert!(g.is_cancelled());
    }

    #[test]
    fn deadline_trips_and_stays_tripped() {
        let g = Guard::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(g.is_cancelled());
        assert!(g.is_cancelled());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let g = Guard::with_deadline(Duration::ZERO);
        assert!(g.is_cancelled());
    }

    #[test]
    fn fuel_is_deterministic() {
        let g = Guard::with_fuel(3);
        assert!(!g.is_cancelled());
        assert!(!g.is_cancelled());
        assert!(!g.is_cancelled());
        assert!(g.is_cancelled());
        assert!(g.is_cancelled());
    }

    #[test]
    fn child_sees_parent_cancel_but_not_vice_versa() {
        let parent = Guard::new();
        let a = parent.child();
        let b = parent.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
        assert!(!parent.is_cancelled());
        parent.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn grandchild_chains_to_the_root() {
        let root = Guard::new();
        let mid = root.child();
        let leaf = mid.child();
        root.cancel();
        assert!(leaf.is_cancelled());
    }

    #[test]
    fn child_with_deadline_has_its_own_clock() {
        let parent = Guard::new();
        let child = parent.child_with_deadline(Duration::ZERO);
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn poller_amortizes_checks() {
        let g = Guard::with_fuel(0); // cancelled on the very first check
        let mut p = Poller::with_period(&g, 64);
        // First call checks (and trips); afterwards it is sticky.
        assert!(p.poll());
        assert!(p.poll());
    }

    #[test]
    fn poller_checks_every_period() {
        let g = Guard::new();
        let mut p = Poller::with_period(&g, 4);
        for _ in 0..7 {
            assert!(!p.poll());
        }
        g.cancel();
        // Next boundary is call #8 (1 + 4 + 4 pattern): at most `period`
        // further calls before the trip is observed.
        let mut seen = false;
        for _ in 0..4 {
            if p.poll() {
                seen = true;
                break;
            }
        }
        assert!(seen);
    }

    #[test]
    fn children_inherit_the_recorder() {
        let rec = Recorder::new();
        let parent = Guard::new().with_recorder(rec.clone());
        let child = parent.child().child_with_deadline(Duration::from_secs(60));
        {
            let _s = child.recorder().span("from-grandchild");
        }
        assert_eq!(rec.snapshot().spans.len(), 1);
    }

    #[test]
    fn env_parse_rules() {
        // Not using set_var: just exercise the parser on the raw strings.
        assert_eq!(
            "250".trim().parse::<u64>().ok().filter(|&m| m > 0),
            Some(250)
        );
        assert_eq!("0".trim().parse::<u64>().ok().filter(|&m| m > 0), None);
        assert_eq!("abc".trim().parse::<u64>().ok().filter(|&m| m > 0), None);
    }
}
