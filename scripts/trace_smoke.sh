#!/usr/bin/env bash
# End-to-end smoke test for the observability layer (`ringen-obs`).
#
# Exercises every way a trace can leave the process and validates each
# artifact with `trace_check` (which re-parses the JSON with the same
# parser that wrote it):
#
#   1. `--report-json` on the default solver — span tree, counters,
#      histograms, automaton-store stats;
#   2. `--report-json` on the portfolio — all four entrants must appear
#      as children of the `race` span, each with a verdict;
#   3. `RINGEN_TRACE` (env, no flag) — same document, env-driven;
#   4. `RINGEN_TRACE_FORMAT=chrome` — Chrome trace_event JSON for
#      Perfetto, validated structurally (`trace_check --chrome`): one
#      complete event per span, monotone timestamps, parent
#      containment, exactly one event per portfolio entrant;
#   5. `RINGEN_TRACE_FORMAT=flame` — collapsed stacks for
#      inferno/speedscope: `name;name;... <self-ns>` lines rooted at
#      `solve`;
#   6. bounded sinks — `RINGEN_TRACE_RING` (ring-buffer span store) and
#      `RINGEN_TRACE_SAMPLE` (head sampling) runs must still produce
#      valid reports, with drops surfaced under `dropped_spans`;
#   7. `trace_diff` — a report compared against itself passes, and a
#      doctored copy with an inflated phase latency fails the gate;
#   8. a recorder-off run must NOT create the trace file.
#
# Usage: scripts/trace_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q
RINGEN=target/release/ringen
CHECK=target/release/trace_check
DIFF=target/release/trace_diff

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Example 1 of the paper (SAT for every engine; fast everywhere).
cat > "$tmp/even.smt2" <<'EOF'
(declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
(declare-fun even (Nat) Bool)
(assert (even Z))
(assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
(assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
EOF

fail() {
    echo "trace_smoke: FAIL: $*" >&2
    exit 1
}

run() { # run DESC TIMEOUT_S CMD...
    local desc=$1 limit=$2
    shift 2
    echo "== $desc"
    timeout "${limit}s" "$@" || fail "$desc (status $?)"
}

# 1. Default solver, explicit flag.
run "ringen --report-json" 60 \
    "$RINGEN" --quiet --report-json "$tmp/solve.json" "$tmp/even.smt2"
run "validate solve report" 10 "$CHECK" "$tmp/solve.json"

# 2. Portfolio race: the report must show every entrant.
run "portfolio --report-json" 60 \
    "$RINGEN" --quiet --solver portfolio --report-json "$tmp/race.json" \
    "$tmp/even.smt2"
run "validate race report" 10 "$CHECK" --portfolio "$tmp/race.json"

# 3. Env-driven trace, no flag.
run "RINGEN_TRACE" 60 \
    env RINGEN_TRACE="$tmp/env.json" \
    "$RINGEN" --quiet "$tmp/even.smt2"
run "validate env report" 10 "$CHECK" "$tmp/env.json"

# 4. Chrome trace_event export — `--portfolio` demands exactly one
#    complete event per race entrant.
run "RINGEN_TRACE_FORMAT=chrome" 60 \
    env RINGEN_TRACE="$tmp/chrome.json" RINGEN_TRACE_FORMAT=chrome \
    "$RINGEN" --quiet --solver portfolio "$tmp/even.smt2"
run "validate chrome trace" 10 "$CHECK" --chrome --portfolio "$tmp/chrome.json"

# 5. Collapsed-stack (flamegraph) export: every line is a
#    `;`-separated path with an integer self-time weight, and the
#    solve root must appear.
run "RINGEN_TRACE_FORMAT=flame" 60 \
    env RINGEN_TRACE="$tmp/flame.txt" RINGEN_TRACE_FORMAT=flame \
    "$RINGEN" --quiet "$tmp/even.smt2"
[ -s "$tmp/flame.txt" ] || fail "flame export is empty"
grep -Eq '^solve[; ]' "$tmp/flame.txt" || fail "flame export has no solve root"
if grep -Evq ' [0-9]+$' "$tmp/flame.txt"; then
    fail "flame export has a line without an integer weight"
fi

# 6a. Ring-buffer sink: a tiny cap must still yield a valid report
#     (root retained, histograms fed before eviction) and surface the
#     evictions under dropped_spans.ring.
run "RINGEN_TRACE_RING=4" 60 \
    env RINGEN_TRACE="$tmp/ring.json" RINGEN_TRACE_RING=4 \
    "$RINGEN" --quiet "$tmp/even.smt2"
run "validate ring-capped report" 10 "$CHECK" "$tmp/ring.json"
grep -Eq '"ring": [1-9]' "$tmp/ring.json" || fail "ring cap reported no drops"

# 6b. Head sampling: a single-root trace is always kept (first root
#     wins), so the report stays complete and the knob must not break
#     anything.
run "RINGEN_TRACE_SAMPLE=1/2" 60 \
    env RINGEN_TRACE="$tmp/sample.json" RINGEN_TRACE_SAMPLE=1/2 \
    "$RINGEN" --quiet "$tmp/even.smt2"
run "validate sampled report" 10 "$CHECK" "$tmp/sample.json"

# 7. trace_diff gate: identical inputs carry no regression; a doctored
#    copy with one phase latency inflated to ~99 s must fail.
run "trace_diff self-compare" 10 "$DIFF" "$tmp/solve.json" "$tmp/solve.json"
sed -E 's/"p50_us": [0-9.]+/"p50_us": 99000000/' "$tmp/solve.json" \
    > "$tmp/doctored.json"
echo "== trace_diff detects a doctored slowdown"
if timeout 10s "$DIFF" "$tmp/solve.json" "$tmp/doctored.json" >/dev/null; then
    fail "trace_diff accepted a 99 s phase regression"
fi

# 8. Empty RINGEN_TRACE means "off": solve must still succeed and no
#    stray artifact may appear in the scratch dir.
before=$(ls "$tmp" | wc -l)
run "recorder disabled (RINGEN_TRACE=)" 60 \
    env RINGEN_TRACE= "$RINGEN" --quiet "$tmp/even.smt2"
after=$(ls "$tmp" | wc -l)
[ "$before" = "$after" ] || fail "trace file written with recorder off"

echo "trace_smoke: OK"
