#!/usr/bin/env bash
# End-to-end smoke test for the observability layer (`ringen-obs`).
#
# Exercises every way a trace can leave the process and validates each
# artifact with `trace_check` (which re-parses the JSON with the same
# parser that wrote it):
#
#   1. `--report-json` on the default solver — span tree, counters,
#      automaton-store stats;
#   2. `--report-json` on the portfolio — all four entrants must appear
#      as children of the `race` span, each with a verdict;
#   3. `RINGEN_TRACE` (env, no flag) — same document, env-driven;
#   4. `RINGEN_TRACE_FORMAT=chrome` — Chrome trace_event JSON for
#      Perfetto: sanity-checked for the `traceEvents` array and at
#      least one complete ("X") event;
#   5. a recorder-off run must NOT create the trace file.
#
# Usage: scripts/trace_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q
RINGEN=target/release/ringen
CHECK=target/release/trace_check

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Example 1 of the paper (SAT for every engine; fast everywhere).
cat > "$tmp/even.smt2" <<'EOF'
(declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
(declare-fun even (Nat) Bool)
(assert (even Z))
(assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
(assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
EOF

fail() {
    echo "trace_smoke: FAIL: $*" >&2
    exit 1
}

run() { # run DESC TIMEOUT_S CMD...
    local desc=$1 limit=$2
    shift 2
    echo "== $desc"
    timeout "${limit}s" "$@" || fail "$desc (status $?)"
}

# 1. Default solver, explicit flag.
run "ringen --report-json" 60 \
    "$RINGEN" --quiet --report-json "$tmp/solve.json" "$tmp/even.smt2"
run "validate solve report" 10 "$CHECK" "$tmp/solve.json"

# 2. Portfolio race: the report must show every entrant.
run "portfolio --report-json" 60 \
    "$RINGEN" --quiet --solver portfolio --report-json "$tmp/race.json" \
    "$tmp/even.smt2"
run "validate race report" 10 "$CHECK" --portfolio "$tmp/race.json"

# 3. Env-driven trace, no flag.
run "RINGEN_TRACE" 60 \
    env RINGEN_TRACE="$tmp/env.json" \
    "$RINGEN" --quiet "$tmp/even.smt2"
run "validate env report" 10 "$CHECK" "$tmp/env.json"

# 4. Chrome trace_event export.
run "RINGEN_TRACE_FORMAT=chrome" 60 \
    env RINGEN_TRACE="$tmp/chrome.json" RINGEN_TRACE_FORMAT=chrome \
    "$RINGEN" --quiet --solver portfolio "$tmp/even.smt2"
grep -q '"traceEvents"' "$tmp/chrome.json" || fail "chrome trace lacks traceEvents"
grep -q '"ph": *"X"' "$tmp/chrome.json" || fail "chrome trace has no complete events"

# 5. Empty RINGEN_TRACE means "off": solve must still succeed and no
#    stray artifact may appear in the scratch dir.
before=$(ls "$tmp" | wc -l)
run "recorder disabled (RINGEN_TRACE=)" 60 \
    env RINGEN_TRACE= "$RINGEN" --quiet "$tmp/even.smt2"
after=$(ls "$tmp" | wc -l)
[ "$before" = "$after" ] || fail "trace file written with recorder off"

echo "trace_smoke: OK"
