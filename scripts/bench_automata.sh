#!/usr/bin/env bash
# Runs the automata-kernel + term-pool + parallel-saturation +
# semi-naive-saturation + memoized-Boolean-algebra micro-bench suite
# and records the results — including the interned-vs-reference
# speedups (for the parallel_saturation group: 4-worker vs inline
# sequential saturation on a multi-clause join system; for the
# semi_naive_saturation group: the delta-driven engine vs the naive
# full-rescan matcher on a deep recursive chain, gated by bench_diff
# on an absolute >=2x floor; for the fmf_incremental group: the
# one-live-solver incremental size sweep vs the one-shot
# solver-per-vector reference on an exhausting two-sorted dual phase
# ring, gated on the same absolute >=2x floor; for the
# boolean_ops_memoized group: warm
# AutStore memo probes vs cold kernel reconstruction, gated on an
# absolute >=10x floor) and the Dfta::step zero-allocation check — in
# BENCH_automata.json at the repo root. Speedup ratios are measured
# in-process and machine-portable, with one caveat: the
# parallel_saturation ratio reflects the measuring host's core count
# (~1.0 on a single-core container, where it gates scheduling overhead
# instead of speedup); the semi_naive_saturation ratio is algorithmic
# and holds on any host.
#
# Usage:
#   scripts/bench_automata.sh           # full measurement, refreshes the
#                                       # committed BENCH_automata.json
#   QUICK=1 scripts/bench_automata.sh   # fast smoke run (CI): measures
#                                       # into a scratch file and diffs it
#                                       # against the committed baseline,
#                                       # failing on >20% speedup
#                                       # regressions (bench_diff).
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "${QUICK:-}" = "1" ]; then
  export CRITERION_QUICK=1
  out="$(mktemp /tmp/BENCH_automata.XXXXXX.json)"
  trap 'rm -f "$out"' EXIT
  export BENCH_AUTOMATA_JSON="$out"
  cargo bench -p ringen-bench --bench automata
  echo
  echo "=== bench_diff vs committed BENCH_automata.json ==="
  cargo run --release -q -p ringen-bench --bin bench_diff -- \
    BENCH_automata.json "$out"
else
  export BENCH_AUTOMATA_JSON="$PWD/BENCH_automata.json"
  cargo bench -p ringen-bench --bench automata
  echo
  echo "=== BENCH_automata.json ==="
  cat "$BENCH_AUTOMATA_JSON"
fi
