#!/usr/bin/env bash
# Runs the automata-kernel micro-bench suite and records the results —
# including the interned-vs-reference speedups and the Dfta::step
# zero-allocation check — in BENCH_automata.json at the repo root.
#
# Usage:
#   scripts/bench_automata.sh           # full measurement
#   QUICK=1 scripts/bench_automata.sh   # fast smoke run (CI)
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "${QUICK:-}" = "1" ]; then
  export CRITERION_QUICK=1
fi
export BENCH_AUTOMATA_JSON="$PWD/BENCH_automata.json"

cargo bench -p ringen-bench --bench automata

echo
echo "=== BENCH_automata.json ==="
cat "$BENCH_AUTOMATA_JSON"
