#!/usr/bin/env bash
# Deadline smoke: runs the CLI and the portfolio example on a
# known-divergent system under a tiny RINGEN_DEADLINE_MS and asserts a
# clean cooperative exit — code 0, expected verdict, no hang. Every run
# is wrapped in a shell `timeout` as the *outer* guard, so a broken
# cancellation path fails the smoke instead of wedging CI.
#
# The divergent system is benchgen's Diag (the eq/diseq diagonal):
# Prop. 11 of the paper shows the diagonal is not regular, so the
# regular-invariant engine's model sweep never succeeds — only
# cooperative cancellation (or budget exhaustion) brings it home, and
# either way the verdict printed is `unknown` on any host speed.
#
# Usage: scripts/deadline_smoke.sh   (builds --release if needed)
set -euo pipefail

cd "$(dirname "$0")/.."

DEADLINE_MS=50
OUTER=120 # seconds; generous — every run below finishes in well under 1s

cargo build --release -q --bin ringen --example hybrid_portfolio

tmp="$(mktemp -d /tmp/ringen_deadline_smoke.XXXXXX)"
trap 'rm -rf "$tmp"' EXIT

# Diag, as printed by `ringen_chc::to_smtlib(&programs::diag())`.
cat > "$tmp/diag.smt2" <<'EOF'
(set-logic HORN)
(declare-datatypes ((Nat 0)) (((Z) (S (S_0 Nat)))))
(declare-fun eq (Nat Nat) Bool)
(declare-fun diseq (Nat Nat) Bool)
(assert (forall ((x Nat)) (eq x x)))
(assert (forall ((x Nat)) (diseq (S x) Z)))
(assert (forall ((y Nat)) (diseq Z (S y))))
(assert (forall ((x Nat) (y Nat)) (=> (diseq x y) (diseq (S x) (S y)))))
(assert (forall ((x Nat) (y Nat)) (=> (and (eq x y) (diseq x y)) false)))
(check-sat)
EOF

fail() {
  echo "deadline smoke FAILED: $*" >&2
  exit 1
}

# Run a command under the outer timeout, capture stdout, assert exit 0.
# $1 = label, rest = command.
run() {
  local label="$1"
  shift
  local out
  if ! out="$(timeout "$OUTER" "$@")"; then
    fail "$label: non-zero exit (or outer timeout)"
  fi
  printf '%s\n' "$out"
}

echo "== default solver, divergent Diag, RINGEN_DEADLINE_MS=$DEADLINE_MS =="
out="$(run "cli-default" env RINGEN_DEADLINE_MS=$DEADLINE_MS \
  ./target/release/ringen --quiet "$tmp/diag.smt2")"
[ "$out" = "unknown" ] || fail "cli-default: expected 'unknown', got '$out'"

echo "== same, RINGEN_THREADS=1 =="
out="$(run "cli-default-t1" env RINGEN_DEADLINE_MS=$DEADLINE_MS RINGEN_THREADS=1 \
  ./target/release/ringen --quiet "$tmp/diag.smt2")"
[ "$out" = "unknown" ] || fail "cli-default-t1: expected 'unknown', got '$out'"

echo "== portfolio race, sequential (RINGEN_THREADS=1) =="
# At one worker the race degenerates to the sequential chain: fmf's
# divergent sweep runs first and eats the whole deadline, so the field
# times out and the verdict is deterministically 'unknown'.
out="$(run "portfolio-t1" env RINGEN_DEADLINE_MS=$DEADLINE_MS RINGEN_THREADS=1 \
  ./target/release/ringen --quiet --solver portfolio "$tmp/diag.smt2")"
[ "$out" = "unknown" ] || fail "portfolio-t1: expected 'unknown', got '$out'"

echo "== portfolio race, parallel =="
# With a worker per entrant, elem may still win Diag inside the
# deadline (host-dependent), so assert only the clean-exit contract:
# exit 0 and a single definitive verdict line.
out="$(run "portfolio" env RINGEN_DEADLINE_MS=$DEADLINE_MS \
  ./target/release/ringen --quiet --solver portfolio "$tmp/diag.smt2")"
case "$out" in
  sat | unsat | unknown) ;;
  *) fail "portfolio: unexpected output '$out'" ;;
esac

echo "== hybrid_portfolio example under the deadline =="
run "example" env RINGEN_DEADLINE_MS=$DEADLINE_MS \
  ./target/release/examples/hybrid_portfolio > /dev/null

echo "deadline smoke OK (deadline ${DEADLINE_MS}ms, outer timeout ${OUTER}s)"
