#!/usr/bin/env bash
# Chaos smoke: drives the solve service (`ringen --serve`) through a
# batch that mixes fast-terminating systems, a system only one engine
# can solve (EvenLeftDiag ∈ RegElem only) with that engine under
# injected cancels, a duplicate (memo traffic), and a malformed file,
# all under injected faults (RINGEN_FAULTS) and a per-attempt deadline
# (RINGEN_DEADLINE_MS).
# Asserts the service's graceful-degradation contract end to end:
#
#   * every query terminates with a typed outcome (no hang, no abort):
#     the batch exits within the outer `timeout`;
#   * an injected entrant panic is quarantined and retried, not fatal;
#   * with the one engine that can solve EvenLeftDiag knocked out by an
#     injected cancel, the system comes home `unknown`, not wedged;
#   * the malformed file is a typed `invalid` line (and the only
#     reason the exit code is non-zero);
#   * the health snapshot is a valid `ringen-server-health-v1`
#     document — `trace_check --health` re-validates the accounting
#     identities (drained queue, admissions balanced, faults counted).
#
# Usage: scripts/chaos_smoke.sh   (builds --release if needed)
set -euo pipefail

cd "$(dirname "$0")/.."

DEADLINE_MS=3000
OUTER=300 # seconds; the batch itself finishes in a few seconds

cargo build --release -q --bin ringen --bin trace_check

tmp="$(mktemp -d /tmp/ringen_chaos_smoke.XXXXXX)"
trap 'rm -rf "$tmp"' EXIT

fail() {
  echo "chaos smoke FAILED: $*" >&2
  exit 1
}

# Even: fast SAT for three of the four engines.
cat > "$tmp/even.smt2" <<'EOF'
(set-logic HORN)
(declare-datatypes ((Nat 0)) (((Z) (S (S_0 Nat)))))
(declare-fun even (Nat) Bool)
(assert (even Z))
(assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
(assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
(check-sat)
EOF

# IncDec: fast SAT for every engine.
cat > "$tmp/incdec.smt2" <<'EOF'
(set-logic HORN)
(declare-datatypes ((Nat 0)) (((Z) (S (S_0 Nat)))))
(declare-fun p (Nat Nat) Bool)
(assert (forall ((x Nat)) (p x (S x))))
(assert (forall ((x Nat) (y Nat)) (=> (p (S x) (S y)) (p x y))))
(assert (forall ((x Nat)) (=> (p (S x) x) false)))
(check-sat)
EOF

# EvenLeftDiag: its invariant lies outside Elem, SizeElem, and Reg —
# only the regelem engine can solve it. The fault plan below cancels
# every attempt that opens the `regelem` entrant, the retry ladder
# sheds regelem, and the surviving engines ride the deadline (or their
# budgets) home as `unknown`.
cat > "$tmp/eld.smt2" <<'EOF'
(set-logic HORN)
(declare-datatypes ((Tree 0)) (((leaf) (node (node_0 Tree) (node_1 Tree)))))
(declare-fun evenleftpair (Tree Tree) Bool)
(assert (evenleftpair leaf leaf))
(assert (forall ((x Tree) (y Tree) (u Tree) (v Tree)) (=> (evenleftpair x y) (evenleftpair (node (node x u) v) (node (node y u) v)))))
(assert (forall ((x Tree) (y Tree)) (=> (and (not (= x y)) (evenleftpair x y)) false)))
(assert (forall ((x Tree) (y Tree) (u Tree) (w Tree)) (=> (and (evenleftpair x y) (evenleftpair (node x u) w)) false)))
(check-sat)
EOF

# Malformed on purpose: the service must shed it as `invalid`, typed.
printf '(assert (incomplete' > "$tmp/broken.smt2"

echo "== serve batch under injected faults + deadline =="
# panic@fmf#1: the first opening of the racer's `fmf` entrant span
# panics — unwinding that attempt into the panic quarantine; the next
# occurrence runs clean. cancel@regelem: every opening of the `regelem`
# entrant trips the attempt guard, so the ladder retries without
# regelem — fatal only to EvenLeftDiag, which no other engine solves.
# delay@saturation adds latency at every saturation round without
# changing any verdict.
out_file="$tmp/serve.out"
rc=0
timeout "$OUTER" env \
  RINGEN_FAULTS="panic@fmf#1, cancel@regelem, delay@saturation:1" \
  RINGEN_DEADLINE_MS="$DEADLINE_MS" \
  RINGEN_SERVER_RETRIES=2 \
  RINGEN_SERVER_BACKOFF_MS=1 \
  ./target/release/ringen --serve --health-json "$tmp/health.json" \
  "$tmp/even.smt2" "$tmp/incdec.smt2" "$tmp/even.smt2" \
  "$tmp/eld.smt2" "$tmp/broken.smt2" \
  > "$out_file" 2> "$tmp/serve.err" || rc=$?
cat "$out_file"

# The malformed file makes the batch exit non-zero (and nothing else
# should): 124 would be the outer timeout, i.e. a hang.
[ "$rc" -eq 124 ] && fail "service hung: outer ${OUTER}s timeout fired"
[ "$rc" -eq 1 ] || fail "expected exit 1 (one invalid query), got $rc"

# One typed line per query, in submission order.
[ "$(wc -l < "$out_file")" -eq 5 ] || fail "expected 5 outcome lines"
grep -q "even.smt2: sat" "$out_file" || fail "even did not come home sat"
grep -q "incdec.smt2: sat" "$out_file" || fail "incdec did not come home sat"
grep -q "eld.smt2: unknown" "$out_file" || fail "regelem-starved EvenLeftDiag did not degrade to unknown"
grep -q "invalid:" "$out_file" || fail "malformed file was not a typed invalid outcome"

echo "== health snapshot validates =="
./target/release/trace_check --health "$tmp/health.json" \
  || fail "health snapshot failed validation"

# The injected entrant panic must actually have fired and been
# quarantined — otherwise the chaos leg silently tested nothing.
grep -q '"panics": 0' "$tmp/health.json" && fail "no injected panic was recorded"
grep -q '"quarantined": 0' "$tmp/health.json" && fail "no attempt was quarantined"

echo "== fault-free rerun is clean =="
rc=0
timeout "$OUTER" env \
  RINGEN_DEADLINE_MS="$DEADLINE_MS" \
  ./target/release/ringen --serve --quiet --health-json "$tmp/health2.json" \
  "$tmp/even.smt2" "$tmp/incdec.smt2" > "$tmp/rerun.out" 2>/dev/null || rc=$?
[ "$rc" -eq 0 ] || fail "fault-free rerun: expected exit 0, got $rc"
grep -q "even.smt2: sat" "$tmp/rerun.out" || fail "rerun: even did not come home sat"
./target/release/trace_check --health "$tmp/health2.json" \
  || fail "rerun health snapshot failed validation"

echo "chaos smoke OK (deadline ${DEADLINE_MS}ms, outer timeout ${OUTER}s)"
