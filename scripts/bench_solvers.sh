#!/usr/bin/env bash
# Records the portfolio racer's end-to-end latencies — per program, the
# race verdict, the winning engine, each entrant's median wall-clock,
# and per-phase latency quantiles (p50/p90/p99 across reps) — into
# BENCH_solvers.json at the repo root. These are the numbers a user of
# `--solver portfolio` would feel, the complement to
# BENCH_automata.json's kernel ratios.
#
# CI gating: the QUICK smoke compares its scratch measurement against
# the committed BENCH_solvers.json with `trace_diff`, which fails only
# on order-of-magnitude phase blowups (wide tolerance + absolute
# floors), so host-to-host noise passes while a real regression in one
# phase trips the gate.
#
# Usage:
#   scripts/bench_solvers.sh           # full measurement (5 reps),
#                                      # refreshes BENCH_solvers.json
#   QUICK=1 scripts/bench_solvers.sh   # 1-rep smoke into a scratch file
#                                      # gated against the committed
#                                      # baseline (nothing is touched)
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "${QUICK:-}" = "1" ]; then
  out="$(mktemp /tmp/BENCH_solvers.XXXXXX.json)"
  trap 'rm -f "$out"' EXIT
  export BENCH_SOLVERS_JSON="$out"
  export BENCH_SOLVERS_REPS=1
  cargo run --release -q --bin bench_solvers
  echo
  echo "=== scratch BENCH_solvers.json (not committed) ==="
  cat "$out"
  echo
  # Gate the trajectory: CI hosts are slower and noisier than the
  # machine that recorded the baseline, so the tolerance is wide — a
  # 20x blowup on a phase that grew by >50ms is a real regression, not
  # scheduling jitter.
  TRACE_DIFF_TOLERANCE="${TRACE_DIFF_TOLERANCE:-20}" \
  TRACE_DIFF_FLOOR_US="${TRACE_DIFF_FLOOR_US:-50000}" \
    cargo run --release -q --bin trace_diff -- BENCH_solvers.json "$out"
else
  export BENCH_SOLVERS_JSON="$PWD/BENCH_solvers.json"
  cargo run --release -q --bin bench_solvers
  echo
  echo "=== BENCH_solvers.json ==="
  cat "$BENCH_SOLVERS_JSON"
fi
