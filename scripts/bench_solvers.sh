#!/usr/bin/env bash
# Records the portfolio racer's end-to-end latencies — per program, the
# race verdict, the winning engine, and each entrant's median wall-clock
# over several repetitions — into BENCH_solvers.json at the repo root.
# These are the numbers a user of `--solver portfolio` would feel, the
# complement to BENCH_automata.json's kernel ratios. Seed version: the
# file is recorded for trajectory tracking, not yet gated by CI
# (medians are host-dependent; a future PR gates on per-engine win
# rates instead).
#
# Usage:
#   scripts/bench_solvers.sh           # full measurement (5 reps),
#                                      # refreshes BENCH_solvers.json
#   QUICK=1 scripts/bench_solvers.sh   # 1-rep smoke into a scratch file
#                                      # (nothing committed is touched)
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "${QUICK:-}" = "1" ]; then
  out="$(mktemp /tmp/BENCH_solvers.XXXXXX.json)"
  trap 'rm -f "$out"' EXIT
  export BENCH_SOLVERS_JSON="$out"
  export BENCH_SOLVERS_REPS=1
  cargo run --release -q --bin bench_solvers
  echo
  echo "=== scratch BENCH_solvers.json (not committed) ==="
  cat "$out"
else
  export BENCH_SOLVERS_JSON="$PWD/BENCH_solvers.json"
  cargo run --release -q --bin bench_solvers
  echo
  echo "=== BENCH_solvers.json ==="
  cat "$BENCH_SOLVERS_JSON"
fi
