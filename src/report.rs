//! Assembling [`SolveReport`]s from the engines' `*Stats` structs.
//!
//! `ringen-obs` sits below every engine crate, so it cannot name
//! `SolveStats`, `PortfolioStats`, or the store counters; this module
//! is where those structs are flattened into [`Section`]s. Both the
//! CLI (`--report-json` / `RINGEN_TRACE`) and `bench_solvers` build
//! their documents through these helpers, so the two outputs stay
//! field-for-field compatible.

use std::path::PathBuf;

use ringen_automata::StoreStats;
use ringen_core::portfolio::PortfolioStats;
use ringen_core::SolveStats;
use ringen_elem::ElemStats;
use ringen_obs::report::Section;
use ringen_regelem::RegElemStats;
use ringen_sizeelem::SizeElemStats;

pub use ringen_obs::report::{SolveReport, SCHEMA};

/// Serialization selected by `RINGEN_TRACE_FORMAT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// The `ringen-solve-report-v1` JSON document (default).
    #[default]
    Report,
    /// Chrome `trace_event` JSON, loadable in Perfetto.
    Chrome,
    /// Collapsed-stack lines (inferno / `flamegraph.pl` / speedscope
    /// input), weighted by self-time in nanoseconds.
    Flame,
}

/// The trace destination requested by the environment: `RINGEN_TRACE`
/// names the output path, `RINGEN_TRACE_FORMAT` (`report` | `chrome` |
/// `flame`) picks the serialization. Unknown format values fall back
/// to [`TraceFormat::Report`].
pub fn trace_from_env() -> Option<(PathBuf, TraceFormat)> {
    let path = std::env::var_os("RINGEN_TRACE")?;
    if path.is_empty() {
        return None;
    }
    let format = match std::env::var("RINGEN_TRACE_FORMAT") {
        Ok(v) if v.eq_ignore_ascii_case("chrome") => TraceFormat::Chrome,
        Ok(v) if v.eq_ignore_ascii_case("flame") => TraceFormat::Flame,
        _ => TraceFormat::Report,
    };
    Some((PathBuf::from(path), format))
}

/// Serializes `report` in `format`.
pub fn render(report: &SolveReport, format: TraceFormat) -> String {
    match format {
        TraceFormat::Report => report.to_json_string(),
        TraceFormat::Chrome => report.to_chrome_trace(),
        TraceFormat::Flame => report.to_collapsed_stacks(),
    }
}

/// Flattens the regular pipeline's [`SolveStats`]: one section per
/// phase that actually ran.
pub fn solve_sections(stats: &SolveStats) -> Vec<Section> {
    let mut out = Vec::new();
    if let Some(s) = &stats.saturation {
        out.push(
            Section::new("saturation")
                .entry("rounds", s.rounds as i64)
                .entry("facts", s.facts as i64)
                .entry("steps", s.steps as i64)
                .entry("candidates", s.candidates as i64)
                .entry("pooled_terms", s.pooled_terms as i64),
        );
    }
    if let Some(p) = &stats.preprocess {
        out.push(
            Section::new("preprocess")
                .entry("clauses_in", p.clauses_in as i64)
                .entry("clauses_out", p.clauses_out as i64)
                .entry("tester_preds", p.tester_preds as i64)
                .entry("diseq_preds", p.diseq_preds as i64),
        );
    }
    if let Some(f) = &stats.finder {
        out.push(
            Section::new("finder")
                .entry("vectors_tried", f.vectors_tried as i64)
                .entry("decisions", f.decisions as i64)
                .entry("conflicts", f.conflicts as i64)
                .entry("propagations", f.propagations as i64)
                .entry("restarts", f.restarts as i64)
                .entry("skipped_too_large", f.skipped_too_large as i64)
                .entry("budget_exhausted", f.budget_exhausted as i64)
                .entry("solver_reuses", f.solver_reuses as i64)
                .entry("delta_clauses", f.delta_clauses as i64)
                .entry("minimized_atoms", f.minimized_atoms as i64),
        );
    }
    if let Some(size) = stats.model_size {
        out.push(Section::new("model").entry("size", size as i64));
    }
    out
}

/// Flattens the automaton-store counters.
pub fn store_section(st: &StoreStats) -> Section {
    Section::new("aut_store")
        .entry("interned_auts", st.interned_auts as i64)
        .entry("interned_dftas", st.interned_dftas as i64)
        .entry("dedup_hits", st.dedup_hits as i64)
        .entry("memo_hits", st.memo_hits as i64)
        .entry("memo_misses", st.memo_misses as i64)
        .entry("seeded_products", st.seeded_products as i64)
}

/// Flattens the elementary solver's counters.
pub fn elem_section(stats: &ElemStats) -> Section {
    Section::new("elem")
        .entry("assignments", stats.assignments as i64)
        .entry("clause_checks", stats.clause_checks as i64)
        .entry("cube_queries", stats.cube_queries as i64)
}

/// Flattens the size-elementary solver's counters.
pub fn sizeelem_section(stats: &SizeElemStats) -> Section {
    Section::new("sizeelem")
        .entry("assignments", stats.assignments as i64)
        .entry("cube_queries", stats.cube_queries as i64)
}

/// Flattens the hybrid solver's counters (plus its store traffic).
pub fn regelem_sections(stats: &RegElemStats) -> Vec<Section> {
    vec![
        Section::new("regelem")
            .entry("assignments", stats.assignments as i64)
            .entry("pool_total", stats.pool_total as i64)
            .entry("langs", stats.langs as i64),
        store_section(&stats.store),
    ]
}

/// Flattens a race: one `race` section plus one `engine.<name>` section
/// per entrant. Per-entrant verdicts and phase timings live in the span
/// tree (the `race` span's children); the sections carry the numeric
/// summary. The builder itself lives on [`PortfolioStats::sections`] so
/// the server's per-query reports share it.
pub fn portfolio_sections(stats: &PortfolioStats) -> Vec<Section> {
    stats.sections()
}
