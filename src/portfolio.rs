//! The concrete portfolio race: FMF-backed regular invariants, `Elem`,
//! `SizeElem`, and `RegElem` run concurrently on one system; the first
//! definitive SAT/UNSAT cancels the rest.
//!
//! This is §8's hybrid conjecture run as a *race* instead of the
//! chained phases of `ringen_regelem::solve_regelem`: each
//! representation class gets its own engine with effectively unbounded
//! sweep budgets, so a loser keeps searching until the winner's cancel
//! (or the per-race deadline) trips its [`Guard`]. The generic harness
//! lives in [`ringen_core::portfolio`]; this module only supplies the
//! four entrants and maps their answer enums onto the racer's
//! verdicts.
//!
//! ```no_run
//! use ringen::portfolio::{solve_portfolio, PortfolioConfig};
//!
//! let sys = ringen::benchgen::programs::even_diag();
//! let (answer, stats) = solve_portfolio(&sys, &PortfolioConfig::default());
//! assert!(answer.is_sat()); // RegElem wins; the other three are cancelled
//! for report in &stats.engines {
//!     println!("{:<10} {:?} after {:?}", report.name, report.status, report.elapsed);
//! }
//! ```

use std::time::Duration;

use ringen_automata::AutStore;
use ringen_chc::ChcSystem;
use ringen_core::portfolio::{race, Engine, EngineVerdict, RaceConfig, RaceOutcome};
use ringen_core::{solve_guarded, Answer, Guard, RingenConfig};
use ringen_elem::{solve_elem_guarded, ElemAnswer, ElemConfig};
use ringen_parallel::ParallelConfig;
use ringen_regelem::{solve_regelem_guarded, RegElemAnswer, RegElemConfig};
use ringen_sizeelem::{solve_size_elem_guarded, SizeElemAnswer, SizeElemConfig};

pub use ringen_core::portfolio::{EngineReport, EngineStatus, PortfolioStats};

/// The winning entrant's full answer, tagged by engine.
#[derive(Debug)]
pub enum EngineAnswer {
    /// The paper's tool: regular invariants by finite-model finding.
    Fmf(Answer),
    /// Elementary templates (the Spacer role).
    Elem(ElemAnswer),
    /// Size-extended elementary templates (the Eldarica role).
    SizeElem(SizeElemAnswer),
    /// The combined template-plus-membership search.
    RegElem(RegElemAnswer),
}

/// The race's overall verdict.
#[derive(Debug)]
pub enum PortfolioAnswer {
    /// Some engine certified the system safe; its answer is attached.
    Sat(EngineAnswer),
    /// Some engine refuted the system; its answer is attached.
    Unsat(EngineAnswer),
    /// Every engine exhausted its own budgets.
    Unknown,
    /// The deadline (or an outer cancel) cut the race short. The
    /// [`PortfolioStats`] still carry every engine's partial outcome.
    Interrupted,
}

impl PortfolioAnswer {
    /// `true` for [`PortfolioAnswer::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, PortfolioAnswer::Sat(_))
    }

    /// `true` for [`PortfolioAnswer::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, PortfolioAnswer::Unsat(_))
    }

    /// `true` for [`PortfolioAnswer::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, PortfolioAnswer::Unknown)
    }

    /// `true` for [`PortfolioAnswer::Interrupted`].
    pub fn is_interrupted(&self) -> bool {
        matches!(self, PortfolioAnswer::Interrupted)
    }
}

/// Number of entrants in the race.
const ENGINES: usize = 4;

/// Budgets and knobs for [`solve_portfolio`].
///
/// The engine configurations default to *racing* budgets: sweep limits
/// high enough that an entrant effectively runs until cancelled. A
/// race with one worker thread and no deadline therefore degenerates to
/// the sequential chain *and* inherits its divergence — bound it with
/// [`PortfolioConfig::deadline`] (or `RINGEN_DEADLINE_MS` via
/// [`PortfolioConfig::from_env`]).
///
/// The racer pool defaults to one worker per entrant — race
/// concurrency is structural, not hardware-bound, and a loser can only
/// be *cancelled* while a sibling makes progress — unless
/// `RINGEN_THREADS` is set, which pins it like everywhere else.
#[derive(Debug, Clone)]
pub struct PortfolioConfig {
    /// Wall-clock budget for the whole race; `None` races unbounded.
    pub deadline: Option<Duration>,
    /// Worker pool for the entrants (the engines' inner sweeps read
    /// their own `parallel` knobs independently).
    pub parallel: ParallelConfig,
    /// Budgets for the regular-invariant entrant.
    pub fmf: RingenConfig,
    /// Budgets for the elementary entrant.
    pub elem: ElemConfig,
    /// Budgets for the size-elementary entrant.
    pub sizeelem: SizeElemConfig,
    /// Budgets for the combined entrant.
    pub regelem: RegElemConfig,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        let mut fmf = RingenConfig::default();
        // The model-size sweep grows exponentially; 64 total domain
        // elements is "until cancelled" in practice.
        fmf.finder.max_total_size = 64;
        let parallel = if std::env::var_os("RINGEN_THREADS").is_some() {
            ParallelConfig::from_env()
        } else {
            ParallelConfig::with_threads(ENGINES)
        };
        PortfolioConfig {
            deadline: None,
            parallel,
            fmf,
            elem: ElemConfig {
                max_assignments: u64::MAX,
                ..ElemConfig::default()
            },
            sizeelem: SizeElemConfig {
                max_assignments: u64::MAX,
                ..SizeElemConfig::default()
            },
            regelem: RegElemConfig {
                max_assignments: u64::MAX,
                ..RegElemConfig::default()
            },
        }
    }
}

impl PortfolioConfig {
    /// Default racing budgets plus the `RINGEN_DEADLINE_MS` and
    /// `RINGEN_THREADS` environment knobs (see `ENVIRONMENT.md`).
    pub fn from_env() -> Self {
        PortfolioConfig {
            deadline: ringen_core::deadline_ms_from_env().map(Duration::from_millis),
            ..PortfolioConfig::default()
        }
    }
}

fn fmf_verdict(a: &Answer) -> EngineVerdict {
    match a {
        Answer::Sat(_) => EngineVerdict::Sat,
        Answer::Unsat(_) => EngineVerdict::Unsat,
        Answer::Unknown(_) => EngineVerdict::Unknown,
        Answer::Interrupted => EngineVerdict::Interrupted,
    }
}

fn elem_verdict(a: &ElemAnswer) -> EngineVerdict {
    match a {
        ElemAnswer::Sat(_) => EngineVerdict::Sat,
        ElemAnswer::Unsat(_) => EngineVerdict::Unsat,
        ElemAnswer::Unknown => EngineVerdict::Unknown,
        ElemAnswer::Interrupted => EngineVerdict::Interrupted,
    }
}

fn sizeelem_verdict(a: &SizeElemAnswer) -> EngineVerdict {
    match a {
        SizeElemAnswer::Sat(_) => EngineVerdict::Sat,
        SizeElemAnswer::Unsat(_) => EngineVerdict::Unsat,
        SizeElemAnswer::Unknown => EngineVerdict::Unknown,
        SizeElemAnswer::Interrupted => EngineVerdict::Interrupted,
    }
}

fn regelem_verdict(a: &RegElemAnswer) -> EngineVerdict {
    match a {
        RegElemAnswer::Sat(..) => EngineVerdict::Sat,
        RegElemAnswer::Unsat(_) => EngineVerdict::Unsat,
        RegElemAnswer::Unknown => EngineVerdict::Unknown,
        RegElemAnswer::Interrupted => EngineVerdict::Interrupted,
    }
}

/// Races the four engines on `sys`; see the module docs.
pub fn solve_portfolio(
    sys: &ChcSystem,
    cfg: &PortfolioConfig,
) -> (PortfolioAnswer, PortfolioStats) {
    solve_portfolio_guarded(sys, cfg, &Guard::new())
}

/// [`solve_portfolio`] under an outer [`Guard`]: cancelling it cancels
/// every entrant.
pub fn solve_portfolio_guarded(
    sys: &ChcSystem,
    cfg: &PortfolioConfig,
    guard: &Guard,
) -> (PortfolioAnswer, PortfolioStats) {
    let engines: Vec<Engine<'_, EngineAnswer>> = vec![
        Engine::new("fmf", |g: &Guard| {
            // Each entrant owns its store: a cancelled engine must not
            // leave a shared store mid-solve.
            let mut store = AutStore::new();
            let (answer, _) = solve_guarded(sys, &cfg.fmf, &mut store, g);
            (fmf_verdict(&answer), EngineAnswer::Fmf(answer))
        }),
        Engine::new("elem", |g: &Guard| {
            let (answer, _) = solve_elem_guarded(sys, &cfg.elem, g);
            (elem_verdict(&answer), EngineAnswer::Elem(answer))
        }),
        Engine::new("sizeelem", |g: &Guard| {
            let (answer, _) = solve_size_elem_guarded(sys, &cfg.sizeelem, g);
            (sizeelem_verdict(&answer), EngineAnswer::SizeElem(answer))
        }),
        Engine::new("regelem", |g: &Guard| {
            let (answer, _) = solve_regelem_guarded(sys, &cfg.regelem, g);
            (regelem_verdict(&answer), EngineAnswer::RegElem(answer))
        }),
    ];
    let race_cfg = RaceConfig {
        deadline: cfg.deadline,
        parallel: cfg.parallel.clone(),
    };
    let (outcome, stats) = race(engines, &race_cfg, guard);
    let answer = match outcome {
        RaceOutcome::Decided { verdict, value, .. } => match verdict {
            EngineVerdict::Sat => PortfolioAnswer::Sat(value),
            EngineVerdict::Unsat => PortfolioAnswer::Unsat(value),
            _ => unreachable!("a race is only decided by a definitive verdict"),
        },
        RaceOutcome::Undecided => PortfolioAnswer::Unknown,
        RaceOutcome::Interrupted => PortfolioAnswer::Interrupted,
    };
    (answer, stats)
}
