//! `ringen` — regular invariants for constrained Horn clauses over
//! algebraic data types.
//!
//! A from-scratch Rust reproduction of *"Beyond the Elementary
//! Representations of Program Invariants over Algebraic Data Types"*
//! (Kostyukov, Mordvinov, Fedyukovich; PLDI 2021). This facade crate
//! re-exports the whole workspace:
//!
//! * [`terms`] — many-sorted first-order terms, ADT signatures, the
//!   Herbrand universe, paths and pumping substitutions (§3, §6);
//! * [`chc`] — constrained Horn clauses, SMT-LIB parser/printer (§3);
//! * [`automata`] — deterministic finite tree (tuple) automata, the
//!   `Reg` representation class (Definitions 2–3);
//! * [`sat`] — a CDCL SAT solver (substrate);
//! * [`fmf`] — a MACE-style finite-model finder over EUF (§4.1–4.2);
//! * [`core`] — the RInGen pipeline: preprocessing (§4.4–4.5),
//!   model → automaton (Theorem 1), certified SAT/UNSAT answers, and
//!   the executable pumping lemmas (§6);
//! * [`elem`], [`sizeelem`] — the `Elem` and `SizeElem` representation
//!   classes with their own solvers (the Spacer/Eldarica roles, §8);
//! * [`regelem`] — the §7-future-work class of first-order formulas
//!   with regular membership predicates, subsuming `Reg ∪ Elem`, with
//!   a three-phase hybrid solver (§8's concluding conjecture);
//! * [`induction`], [`verimap`] — the remaining evaluation baselines;
//! * [`benchgen`] — generators for every workload of §8;
//! * [`parallel`] — the dependency-free scoped threadpool behind the
//!   sharded saturation rounds and automata batch evaluation
//!   (`RINGEN_THREADS` selects the worker count; results are
//!   bit-for-bit identical at any value);
//! * [`portfolio`] — the four representation-class engines raced
//!   concurrently with cooperative cancellation, wall-clock deadlines
//!   (`RINGEN_DEADLINE_MS`), and per-engine panic isolation;
//! * [`server`] — a long-lived concurrent solve service over the
//!   racer: bounded admission with typed shedding, per-query
//!   deadlines, a retry ladder with panic quarantine, a shared
//!   verdict memo, deterministic fault injection (`RINGEN_FAULTS`),
//!   and a machine-readable health snapshot;
//! * [`obs`] — dependency-free structured spans and a counter/gauge
//!   registry, threaded through every engine via its [`core::Guard`];
//! * [`report`] — assembles the recorder's trace and the engines'
//!   statistics into the machine-readable `SolveReport` behind the
//!   CLI's `--report-json` flag and the `RINGEN_TRACE` knob.
//!
//! # Quickstart
//!
//! ```
//! use ringen::core::{solve, Answer, RingenConfig};
//!
//! // Example 1 of the paper: no two consecutive Peano numbers are even.
//! let sys = ringen::chc::parse_str(r#"
//!   (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
//!   (declare-fun even (Nat) Bool)
//!   (assert (even Z))
//!   (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
//!   (assert (forall ((x Nat)) (=> (and (even x) (even (S x))) false)))
//! "#)?;
//! let (answer, _) = solve(&sys, &RingenConfig::default());
//! match answer {
//!     Answer::Sat(sat) => assert_eq!(sat.invariant.state_count(), 2),
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! # Ok::<(), ringen::chc::ParseError>(())
//! ```

pub mod portfolio;
pub mod report;

pub use ringen_automata as automata;
pub use ringen_benchgen as benchgen;
pub use ringen_chc as chc;
pub use ringen_core as core;
pub use ringen_elem as elem;
pub use ringen_fmf as fmf;
pub use ringen_induction as induction;
pub use ringen_obs as obs;
pub use ringen_parallel as parallel;
pub use ringen_regelem as regelem;
pub use ringen_sat as sat;
pub use ringen_server as server;
pub use ringen_sizeelem as sizeelem;
pub use ringen_terms as terms;
pub use ringen_verimap as verimap;
