//! CI validator for `ringen-solve-report-v1` documents
//! (`scripts/trace_smoke.sh`).
//!
//! Reads a report written by `ringen --report-json` (or
//! `RINGEN_TRACE`), re-parses it with `ringen-obs`'s own JSON parser,
//! and asserts the structural contract the observability layer
//! promises: schema tag, a definitive verdict string, a non-empty span
//! forest rooted at `solve`, and a populated counter registry. With
//! `--portfolio` it additionally requires the `race` span to carry all
//! four entrants as children, each annotated with its verdict — the
//! "race renders as a timeline" acceptance shape.
//!
//! ```text
//! trace_check [--portfolio] REPORT.json
//! ```
//!
//! Exits 0 when every check passes, 1 with a diagnostic otherwise.

use std::process::ExitCode;

use ringen::obs::json::{parse, Json};
use ringen::report::SCHEMA;

const ENTRANTS: [&str; 4] = ["fmf", "elem", "sizeelem", "regelem"];

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: {msg}");
    ExitCode::FAILURE
}

fn span_count(span: &Json) -> usize {
    1 + span
        .get("children")
        .and_then(Json::as_arr)
        .map_or(0, |kids| kids.iter().map(span_count).sum())
}

fn main() -> ExitCode {
    let mut portfolio = false;
    let mut path = None;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--portfolio" => portfolio = true,
            _ if path.is_none() => path = Some(a),
            other => return fail(&format!("unexpected argument {other}")),
        }
    }
    let Some(path) = path else {
        return fail("usage: trace_check [--portfolio] REPORT.json");
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match parse(&src) {
        Ok(d) => d,
        Err(e) => return fail(&format!("{path} is not valid JSON: {e:?}")),
    };

    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return fail(&format!("schema key missing or not {SCHEMA:?}"));
    }
    match doc.get("verdict").and_then(Json::as_str) {
        Some("sat" | "unsat" | "unknown" | "interrupted") => {}
        other => return fail(&format!("bad verdict {other:?}")),
    }
    if doc.get("wall_ms").is_none() {
        return fail("wall_ms missing");
    }
    for key in ["program", "solver", "stats", "counters", "gauges"] {
        if doc.get(key).is_none() {
            return fail(&format!("{key} missing"));
        }
    }

    let Some(spans) = doc.get("spans").and_then(Json::as_arr) else {
        return fail("spans missing or not an array");
    };
    if spans.is_empty() {
        return fail("span forest is empty — was the recorder enabled?");
    }
    let root = &spans[0];
    if root.get("name").and_then(Json::as_str) != Some("solve") {
        return fail("first root span is not `solve`");
    }
    let total: usize = spans.iter().map(span_count).sum();
    if total < 2 {
        return fail("span tree has no phase spans under the root");
    }
    let counters = doc.get("counters").and_then(Json::as_obj);
    if counters.is_none_or(|c| c.is_empty()) {
        return fail("counter registry is empty");
    }

    if portfolio {
        let Some(race) = root
            .get("children")
            .and_then(Json::as_arr)
            .and_then(|kids| {
                kids.iter()
                    .find(|k| k.get("name").and_then(Json::as_str) == Some("race"))
            })
        else {
            return fail("--portfolio: no `race` span under the root");
        };
        let entrants = race.get("children").and_then(Json::as_arr);
        for name in ENTRANTS {
            let Some(entrant) = entrants.and_then(|kids| {
                kids.iter()
                    .find(|k| k.get("name").and_then(Json::as_str) == Some(name))
            }) else {
                return fail(&format!("--portfolio: entrant `{name}` missing from race"));
            };
            if entrant
                .get("args")
                .and_then(|a| a.get("verdict"))
                .and_then(Json::as_str)
                .is_none()
            {
                return fail(&format!("--portfolio: entrant `{name}` has no verdict"));
            }
        }
        for section in ENTRANTS.map(|n| format!("engine.{n}")) {
            if doc.get("stats").and_then(|s| s.get(&section)).is_none() {
                return fail(&format!("--portfolio: stats section `{section}` missing"));
            }
        }
    }

    println!(
        "trace_check OK: {path} ({total} spans, {} counters)",
        counters.map_or(0, <[_]>::len)
    );
    ExitCode::SUCCESS
}
