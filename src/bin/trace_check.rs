//! CI validator for solve-trace exports (`scripts/trace_smoke.sh`).
//!
//! Reads a report written by `ringen --report-json` (or
//! `RINGEN_TRACE`), re-parses it with `ringen-obs`'s own JSON parser,
//! and asserts the structural contract the observability layer
//! promises: schema tag, a definitive verdict string, a non-empty span
//! forest rooted at `solve`, a populated counter registry, and the
//! histogram/dropped-span analytics keys. With `--portfolio` it
//! additionally requires the `race` span to carry all four entrants as
//! children, each annotated with its verdict — the "race renders as a
//! timeline" acceptance shape.
//!
//! With `--chrome` the input is instead validated as a Chrome
//! `trace_event` document (`RINGEN_TRACE_FORMAT=chrome`): a metadata
//! event first, then one complete (`"X"`) event per span on `pid` 1
//! with monotone non-negative timestamps, unique span ids, and every
//! child's interval inside its parent's. `--chrome --portfolio`
//! requires exactly one complete event per entrant, each on a
//! timeline row.
//!
//! ```text
//! trace_check [--portfolio] [--chrome] TRACE.json
//! ```
//!
//! Exits 0 when every check passes, 1 with a diagnostic otherwise.

use std::process::ExitCode;

use ringen::obs::json::{parse, Json};
use ringen::report::SCHEMA;

const ENTRANTS: [&str; 4] = ["fmf", "elem", "sizeelem", "regelem"];

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: {msg}");
    ExitCode::FAILURE
}

fn span_count(span: &Json) -> usize {
    1 + span
        .get("children")
        .and_then(Json::as_arr)
        .map_or(0, |kids| kids.iter().map(span_count).sum())
}

/// The `--chrome` leg: validates a `trace_event` export.
fn check_chrome(doc: &Json, path: &str, portfolio: bool) -> ExitCode {
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        return fail("traceEvents missing or not an array");
    };
    let [meta, spans @ ..] = events else {
        return fail("traceEvents is empty");
    };
    if meta.get("ph").and_then(Json::as_str) != Some("M") {
        return fail("first event is not the process metadata record");
    }
    if spans.is_empty() {
        return fail("no span events — was the recorder enabled?");
    }

    // Timestamps are µs floats; containment tolerates sub-nanosecond
    // float slop, nothing more.
    const EPS: f64 = 1e-3;
    let mut intervals: Vec<(i64, f64, f64)> = Vec::with_capacity(spans.len());
    let mut last_ts = f64::MIN;
    for (i, e) in spans.iter().enumerate() {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            return fail(&format!("event {i}: ph is not \"X\""));
        }
        if e.get("pid").and_then(Json::as_i64) != Some(1) {
            return fail(&format!("event {i}: pid is not 1"));
        }
        let (Some(ts), Some(dur)) = (
            e.get("ts").and_then(Json::as_f64),
            e.get("dur").and_then(Json::as_f64),
        ) else {
            return fail(&format!("event {i}: ts/dur missing"));
        };
        if ts < 0.0 || dur < 0.0 {
            return fail(&format!("event {i}: negative ts or dur"));
        }
        if ts < last_ts {
            return fail(&format!("event {i}: ts not monotone non-decreasing"));
        }
        last_ts = ts;
        let Some(id) = e
            .get("args")
            .and_then(|a| a.get("id"))
            .and_then(Json::as_i64)
        else {
            return fail(&format!("event {i}: args.id missing"));
        };
        if intervals.iter().any(|&(other, _, _)| other == id) {
            return fail(&format!("event {i}: duplicate span id {id}"));
        }
        intervals.push((id, ts, dur));
    }
    for (i, e) in spans.iter().enumerate() {
        let Some(parent) = e
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(Json::as_i64)
        else {
            continue;
        };
        // Parents can be absent from a bounded (ring/sampled) export;
        // containment applies when both ends are present.
        let Some(&(_, pts, pdur)) = intervals.iter().find(|&&(id, _, _)| id == parent) else {
            continue;
        };
        let (_, ts, dur) = intervals[i];
        if ts + EPS < pts || ts + dur > pts + pdur + EPS {
            return fail(&format!(
                "event {i}: interval [{ts}, {}] escapes parent {parent}'s [{pts}, {}]",
                ts + dur,
                pts + pdur
            ));
        }
    }

    if portfolio {
        // Each entrant must be exactly one complete event with a
        // timeline row. Distinct tids are NOT required: the race pool
        // hands entrants to whichever worker is free, so a fast
        // entrant's worker can legitimately pick up a second one.
        for name in ENTRANTS {
            let rows: Vec<&Json> = spans
                .iter()
                .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .collect();
            let [row] = rows.as_slice() else {
                return fail(&format!(
                    "--portfolio: expected exactly one `{name}` event, found {}",
                    rows.len()
                ));
            };
            if row.get("tid").and_then(Json::as_i64).is_none() {
                return fail(&format!("--portfolio: entrant `{name}` has no tid"));
            }
        }
    }

    println!(
        "trace_check OK: {path} (chrome, {} span events)",
        spans.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut portfolio = false;
    let mut chrome = false;
    let mut path = None;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--portfolio" => portfolio = true,
            "--chrome" => chrome = true,
            _ if path.is_none() => path = Some(a),
            other => return fail(&format!("unexpected argument {other}")),
        }
    }
    let Some(path) = path else {
        return fail("usage: trace_check [--portfolio] [--chrome] TRACE.json");
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match parse(&src) {
        Ok(d) => d,
        Err(e) => return fail(&format!("{path} is not valid JSON: {e:?}")),
    };

    if chrome {
        return check_chrome(&doc, &path, portfolio);
    }

    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return fail(&format!("schema key missing or not {SCHEMA:?}"));
    }
    match doc.get("verdict").and_then(Json::as_str) {
        Some("sat" | "unsat" | "unknown" | "interrupted") => {}
        other => return fail(&format!("bad verdict {other:?}")),
    }
    if doc.get("wall_ms").is_none() {
        return fail("wall_ms missing");
    }
    for key in [
        "program",
        "solver",
        "stats",
        "counters",
        "gauges",
        "histograms",
        "dropped_spans",
    ] {
        if doc.get(key).is_none() {
            return fail(&format!("{key} missing"));
        }
    }

    let Some(spans) = doc.get("spans").and_then(Json::as_arr) else {
        return fail("spans missing or not an array");
    };
    if spans.is_empty() {
        return fail("span forest is empty — was the recorder enabled?");
    }
    let root = &spans[0];
    if root.get("name").and_then(Json::as_str) != Some("solve") {
        return fail("first root span is not `solve`");
    }
    let total: usize = spans.iter().map(span_count).sum();
    if total < 2 {
        return fail("span tree has no phase spans under the root");
    }
    let counters = doc.get("counters").and_then(Json::as_obj);
    if counters.is_none_or(|c| c.is_empty()) {
        return fail("counter registry is empty");
    }
    // Every span name must have fed the histogram registry; `solve`
    // always ran.
    if doc
        .get("histograms")
        .and_then(|h| h.get("solve"))
        .and_then(|s| s.get("count"))
        .and_then(Json::as_i64)
        .is_none_or(|c| c < 1)
    {
        return fail("histograms carry no `solve` entry");
    }

    if portfolio {
        let Some(race) = root
            .get("children")
            .and_then(Json::as_arr)
            .and_then(|kids| {
                kids.iter()
                    .find(|k| k.get("name").and_then(Json::as_str) == Some("race"))
            })
        else {
            return fail("--portfolio: no `race` span under the root");
        };
        let entrants = race.get("children").and_then(Json::as_arr);
        for name in ENTRANTS {
            let Some(entrant) = entrants.and_then(|kids| {
                kids.iter()
                    .find(|k| k.get("name").and_then(Json::as_str) == Some(name))
            }) else {
                return fail(&format!("--portfolio: entrant `{name}` missing from race"));
            };
            if entrant
                .get("args")
                .and_then(|a| a.get("verdict"))
                .and_then(Json::as_str)
                .is_none()
            {
                return fail(&format!("--portfolio: entrant `{name}` has no verdict"));
            }
        }
        for section in ENTRANTS.map(|n| format!("engine.{n}")) {
            if doc.get("stats").and_then(|s| s.get(&section)).is_none() {
                return fail(&format!("--portfolio: stats section `{section}` missing"));
            }
        }
    }

    println!(
        "trace_check OK: {path} ({total} spans, {} counters)",
        counters.map_or(0, <[_]>::len)
    );
    ExitCode::SUCCESS
}
