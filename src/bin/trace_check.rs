//! CI validator for solve-trace exports (`scripts/trace_smoke.sh`).
//!
//! Reads a report written by `ringen --report-json` (or
//! `RINGEN_TRACE`), re-parses it with `ringen-obs`'s own JSON parser,
//! and asserts the structural contract the observability layer
//! promises: schema tag, a definitive verdict string, a non-empty span
//! forest rooted at `solve`, a populated counter registry, and the
//! histogram/dropped-span analytics keys. With `--portfolio` it
//! additionally requires the `race` span to carry all four entrants as
//! children, each annotated with its verdict — the "race renders as a
//! timeline" acceptance shape.
//!
//! With `--chrome` the input is instead validated as a Chrome
//! `trace_event` document (`RINGEN_TRACE_FORMAT=chrome`): a metadata
//! event first, then one complete (`"X"`) event per span on `pid` 1
//! with monotone non-negative timestamps, unique span ids, and every
//! child's interval inside its parent's. `--chrome --portfolio`
//! requires exactly one complete event per entrant, each on a
//! timeline row.
//!
//! With `--health` the input is a `ringen-server-health-v1` snapshot
//! (written by `ringen --serve --health-json`): schema tag, the
//! queue/cache/fault sub-objects, non-negative counters, and the
//! service-level accounting identities — a drained queue, everything
//! admitted accounted for, and cache hits only out of cached entries.
//!
//! ```text
//! trace_check [--portfolio] [--chrome] [--health] TRACE.json
//! ```
//!
//! Exits 0 when every check passes, 1 with a diagnostic otherwise.

use std::process::ExitCode;

use ringen::obs::json::{parse, Json};
use ringen::report::SCHEMA;

const ENTRANTS: [&str; 4] = ["fmf", "elem", "sizeelem", "regelem"];

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: {msg}");
    ExitCode::FAILURE
}

fn span_count(span: &Json) -> usize {
    1 + span
        .get("children")
        .and_then(Json::as_arr)
        .map_or(0, |kids| kids.iter().map(span_count).sum())
}

/// The `--chrome` leg: validates a `trace_event` export.
fn check_chrome(doc: &Json, path: &str, portfolio: bool) -> ExitCode {
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        return fail("traceEvents missing or not an array");
    };
    let [meta, spans @ ..] = events else {
        return fail("traceEvents is empty");
    };
    if meta.get("ph").and_then(Json::as_str) != Some("M") {
        return fail("first event is not the process metadata record");
    }
    if spans.is_empty() {
        return fail("no span events — was the recorder enabled?");
    }

    // Timestamps are µs floats; containment tolerates sub-nanosecond
    // float slop, nothing more.
    const EPS: f64 = 1e-3;
    let mut intervals: Vec<(i64, f64, f64)> = Vec::with_capacity(spans.len());
    let mut last_ts = f64::MIN;
    for (i, e) in spans.iter().enumerate() {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            return fail(&format!("event {i}: ph is not \"X\""));
        }
        if e.get("pid").and_then(Json::as_i64) != Some(1) {
            return fail(&format!("event {i}: pid is not 1"));
        }
        let (Some(ts), Some(dur)) = (
            e.get("ts").and_then(Json::as_f64),
            e.get("dur").and_then(Json::as_f64),
        ) else {
            return fail(&format!("event {i}: ts/dur missing"));
        };
        if ts < 0.0 || dur < 0.0 {
            return fail(&format!("event {i}: negative ts or dur"));
        }
        if ts < last_ts {
            return fail(&format!("event {i}: ts not monotone non-decreasing"));
        }
        last_ts = ts;
        let Some(id) = e
            .get("args")
            .and_then(|a| a.get("id"))
            .and_then(Json::as_i64)
        else {
            return fail(&format!("event {i}: args.id missing"));
        };
        if intervals.iter().any(|&(other, _, _)| other == id) {
            return fail(&format!("event {i}: duplicate span id {id}"));
        }
        intervals.push((id, ts, dur));
    }
    for (i, e) in spans.iter().enumerate() {
        let Some(parent) = e
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(Json::as_i64)
        else {
            continue;
        };
        // Parents can be absent from a bounded (ring/sampled) export;
        // containment applies when both ends are present.
        let Some(&(_, pts, pdur)) = intervals.iter().find(|&&(id, _, _)| id == parent) else {
            continue;
        };
        let (_, ts, dur) = intervals[i];
        if ts + EPS < pts || ts + dur > pts + pdur + EPS {
            return fail(&format!(
                "event {i}: interval [{ts}, {}] escapes parent {parent}'s [{pts}, {}]",
                ts + dur,
                pts + pdur
            ));
        }
    }

    if portfolio {
        // Each entrant must be exactly one complete event with a
        // timeline row. Distinct tids are NOT required: the race pool
        // hands entrants to whichever worker is free, so a fast
        // entrant's worker can legitimately pick up a second one.
        for name in ENTRANTS {
            let rows: Vec<&Json> = spans
                .iter()
                .filter(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .collect();
            let [row] = rows.as_slice() else {
                return fail(&format!(
                    "--portfolio: expected exactly one `{name}` event, found {}",
                    rows.len()
                ));
            };
            if row.get("tid").and_then(Json::as_i64).is_none() {
                return fail(&format!("--portfolio: entrant `{name}` has no tid"));
            }
        }
    }

    println!(
        "trace_check OK: {path} (chrome, {} span events)",
        spans.len()
    );
    ExitCode::SUCCESS
}

/// The `--health` leg: validates a `ringen-server-health-v1` snapshot.
fn check_health(doc: &Json, path: &str) -> ExitCode {
    if doc.get("schema").and_then(Json::as_str) != Some(ringen::server::HEALTH_SCHEMA) {
        return fail(&format!(
            "schema key missing or not {:?}",
            ringen::server::HEALTH_SCHEMA
        ));
    }
    let field = |obj: &Json, key: &str| -> Result<i64, String> {
        match obj.get(key).and_then(Json::as_i64) {
            Some(v) if v >= 0 => Ok(v),
            Some(v) => Err(format!("{key} is negative: {v}")),
            None => Err(format!("{key} missing or not an integer")),
        }
    };
    let (Some(queue), Some(cache), Some(faults)) =
        (doc.get("queue"), doc.get("cache"), doc.get("faults"))
    else {
        return fail("queue/cache/faults sub-objects missing");
    };
    let get = |obj: &Json, key: &str| -> i64 {
        match field(obj, key) {
            Ok(v) => v,
            Err(msg) => {
                eprintln!("trace_check: {msg}");
                std::process::exit(1);
            }
        }
    };
    let capacity = get(queue, "capacity");
    let depth = get(queue, "depth");
    let in_flight = get(queue, "in_flight");
    let sheds = get(queue, "sheds");
    let admitted = get(doc, "admitted");
    let completed = get(doc, "completed");
    let retries = get(doc, "retries");
    let quarantined = get(doc, "quarantined");
    let hits = get(cache, "hits");
    let entries = get(cache, "entries");
    let invalid = get(doc, "invalid");
    for key in ["panics", "delays", "cancels"] {
        get(faults, key);
    }
    get(doc, "uptime_ms");
    if capacity < 1 {
        return fail("queue capacity is zero");
    }
    if depth > capacity {
        return fail(&format!("queue depth {depth} exceeds capacity {capacity}"));
    }
    if in_flight > depth {
        return fail(&format!(
            "in_flight {in_flight} exceeds queue depth {depth}"
        ));
    }
    // Accounting identities: admitted work is either done or still
    // holding a slot, invalid queries are a subset of completions, and
    // a hit needs a cached entry (or at least one eviction-free write).
    if completed + depth < admitted {
        return fail(&format!(
            "admitted {admitted} exceeds completed {completed} + queued {depth}"
        ));
    }
    if invalid > completed {
        return fail(&format!("invalid {invalid} exceeds completed {completed}"));
    }
    if hits > 0 && entries == 0 {
        return fail("cache hits reported with an empty memo");
    }
    if quarantined > 0 && retries + 1 < quarantined {
        // Each quarantined rung past a query's last is preceded by a
        // retry; wildly more quarantines than retries means the
        // counters drifted.
        return fail(&format!(
            "quarantined {quarantined} not explained by retries {retries}"
        ));
    }
    println!(
        "trace_check OK: {path} (health: {admitted} admitted, {completed} completed, \
         {sheds} shed, {retries} retries, {quarantined} quarantined)"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut portfolio = false;
    let mut chrome = false;
    let mut health = false;
    let mut path = None;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--portfolio" => portfolio = true,
            "--chrome" => chrome = true,
            "--health" => health = true,
            _ if path.is_none() => path = Some(a),
            other => return fail(&format!("unexpected argument {other}")),
        }
    }
    let Some(path) = path else {
        return fail("usage: trace_check [--portfolio] [--chrome] [--health] TRACE.json");
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match parse(&src) {
        Ok(d) => d,
        Err(e) => return fail(&format!("{path} is not valid JSON: {e:?}")),
    };

    if health {
        return check_health(&doc, &path);
    }
    if chrome {
        return check_chrome(&doc, &path, portfolio);
    }

    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return fail(&format!("schema key missing or not {SCHEMA:?}"));
    }
    match doc.get("verdict").and_then(Json::as_str) {
        Some("sat" | "unsat" | "unknown" | "interrupted") => {}
        other => return fail(&format!("bad verdict {other:?}")),
    }
    if doc.get("wall_ms").is_none() {
        return fail("wall_ms missing");
    }
    for key in [
        "program",
        "solver",
        "stats",
        "counters",
        "gauges",
        "histograms",
        "dropped_spans",
    ] {
        if doc.get(key).is_none() {
            return fail(&format!("{key} missing"));
        }
    }

    let Some(spans) = doc.get("spans").and_then(Json::as_arr) else {
        return fail("spans missing or not an array");
    };
    if spans.is_empty() {
        return fail("span forest is empty — was the recorder enabled?");
    }
    let root = &spans[0];
    if root.get("name").and_then(Json::as_str) != Some("solve") {
        return fail("first root span is not `solve`");
    }
    let total: usize = spans.iter().map(span_count).sum();
    if total < 2 {
        return fail("span tree has no phase spans under the root");
    }
    let counters = doc.get("counters").and_then(Json::as_obj);
    if counters.is_none_or(|c| c.is_empty()) {
        return fail("counter registry is empty");
    }
    // Every span name must have fed the histogram registry; `solve`
    // always ran.
    if doc
        .get("histograms")
        .and_then(|h| h.get("solve"))
        .and_then(|s| s.get("count"))
        .and_then(Json::as_i64)
        .is_none_or(|c| c < 1)
    {
        return fail("histograms carry no `solve` entry");
    }

    if portfolio {
        let Some(race) = root
            .get("children")
            .and_then(Json::as_arr)
            .and_then(|kids| {
                kids.iter()
                    .find(|k| k.get("name").and_then(Json::as_str) == Some("race"))
            })
        else {
            return fail("--portfolio: no `race` span under the root");
        };
        let entrants = race.get("children").and_then(Json::as_arr);
        for name in ENTRANTS {
            let Some(entrant) = entrants.and_then(|kids| {
                kids.iter()
                    .find(|k| k.get("name").and_then(Json::as_str) == Some(name))
            }) else {
                return fail(&format!("--portfolio: entrant `{name}` missing from race"));
            };
            if entrant
                .get("args")
                .and_then(|a| a.get("verdict"))
                .and_then(Json::as_str)
                .is_none()
            {
                return fail(&format!("--portfolio: entrant `{name}` has no verdict"));
            }
        }
        for section in ENTRANTS.map(|n| format!("engine.{n}")) {
            if doc.get("stats").and_then(|s| s.get(&section)).is_none() {
                return fail(&format!("--portfolio: stats section `{section}` missing"));
            }
        }
    }

    println!(
        "trace_check OK: {path} ({total} spans, {} counters)",
        counters.map_or(0, <[_]>::len)
    );
    ExitCode::SUCCESS
}
