//! End-to-end portfolio-race latency recorder (`scripts/bench_solvers.sh`).
//!
//! Races the four representation-class engines on each showcase program
//! several times and records, per program, the race verdict, the
//! winning engine, and every entrant's per-run latencies (median over
//! repetitions) plus its final status — the end-to-end numbers a user
//! of the portfolio would feel, as opposed to the kernel ratios of
//! `BENCH_automata.json`.
//!
//! Every rep runs under an enabled [`Recorder`], and each entrant's
//! per-phase time (direct child spans of the entrant span, summed by
//! name within a rep) is folded into a per-(engine, phase)
//! [`Histogram`] across all reps. The JSON therefore shows not one
//! anecdotal breakdown but the cross-rep `p50/p90/p99/max` of where
//! the time went — the numbers `trace_diff` gates in CI. Recording
//! overhead rides inside the measured latencies; it is kept honest by
//! the `obs_overhead` bench group that `bench_diff` gates.
//!
//! Output goes to `$BENCH_SOLVERS_JSON` (the script points it at
//! `BENCH_solvers.json` in the repo root). `$BENCH_SOLVERS_REPS`
//! overrides the repetition count (default 5).

use std::collections::BTreeMap;
use std::time::Duration;

use ringen::benchgen::programs;
use ringen::core::{Guard, Recorder};
use ringen::obs::json::Json;
use ringen::obs::{Histogram, SpanRec};
use ringen::parallel::ParallelConfig;
use ringen::portfolio::{solve_portfolio_guarded, PortfolioAnswer, PortfolioConfig};

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn us(ns: u64) -> Json {
    Json::Num(ns as f64 / 1e3)
}

/// Direct child spans of the entrant span named `engine` (under the
/// `race` span), nanoseconds summed by span name — one rep's phase
/// breakdown.
fn phase_breakdown(spans: &[SpanRec], engine: &str) -> Vec<(String, u64)> {
    let race = spans.iter().find(|s| s.name == "race");
    let entrant = spans
        .iter()
        .find(|s| s.name == engine && s.parent == race.map(|r| r.id));
    let Some(entrant) = entrant else {
        return Vec::new();
    };
    let mut out: Vec<(String, u64)> = Vec::new();
    for s in spans.iter().filter(|s| s.parent == Some(entrant.id)) {
        let ns = s.end_ns.saturating_sub(s.start_ns);
        match out.iter_mut().find(|(n, _)| n == s.name) {
            Some((_, total)) => *total += ns,
            None => out.push((s.name.to_string(), ns)),
        }
    }
    out
}

fn main() {
    let reps: usize = std::env::var("BENCH_SOLVERS_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5);
    let cases = [
        ("Even", programs::even()),
        ("IncDec", programs::inc_dec()),
        ("Diag", programs::diag()),
        ("EvenDiag", programs::even_diag()),
    ];
    let engine_names = ["fmf", "elem", "sizeelem", "regelem"];

    let mut program_objs: Vec<(String, Json)> = Vec::new();
    for (name, sys) in &cases {
        // One worker per entrant, regardless of the measuring host:
        // these are race latencies, not hardware benchmarks.
        let cfg = PortfolioConfig {
            parallel: ParallelConfig::with_threads(4),
            ..PortfolioConfig::default()
        };
        let mut race_ms: Vec<f64> = Vec::with_capacity(reps);
        let mut engine_ms: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); engine_names.len()];
        // Per-engine, per-phase latency distribution across reps: one
        // sample per rep (that rep's total time in the phase).
        let mut phase_hists: Vec<BTreeMap<String, Histogram>> =
            vec![BTreeMap::new(); engine_names.len()];
        let mut verdict = "unknown";
        let mut winner = String::from("none");
        let mut statuses: Vec<String> = vec![String::new(); engine_names.len()];
        for _ in 0..reps {
            let recorder = Recorder::new();
            let guard = Guard::new().with_recorder(recorder.clone());
            let (answer, stats) = solve_portfolio_guarded(sys, &cfg, &guard);
            verdict = match answer {
                PortfolioAnswer::Sat(_) => "sat",
                PortfolioAnswer::Unsat(_) => "unsat",
                PortfolioAnswer::Unknown => "unknown",
                PortfolioAnswer::Interrupted => "interrupted",
            };
            race_ms.push(ms(stats.elapsed));
            if let Some(report) = stats.winner_report() {
                winner = report.name.to_string();
            }
            for (ei, report) in stats.engines.iter().enumerate() {
                engine_ms[ei].push(ms(report.elapsed));
                statuses[ei] = format!("{:?}", report.status);
            }
            let trace = recorder.snapshot();
            for (ei, engine) in engine_names.iter().enumerate() {
                for (phase, ns) in phase_breakdown(&trace.spans, engine) {
                    phase_hists[ei].entry(phase).or_default().record(ns);
                }
            }
        }

        eprintln!(
            "{name:<10} {verdict:>8}  winner={winner:<8}  race {:.2}ms",
            median_ms(&mut race_ms)
        );
        let engines = Json::obj(engine_names.iter().enumerate().map(|(ei, engine)| {
            let mut fields = vec![
                ("status".to_string(), Json::Str(statuses[ei].clone())),
                (
                    "median_ms".to_string(),
                    Json::Num(median_ms(&mut engine_ms[ei])),
                ),
            ];
            if !phase_hists[ei].is_empty() {
                fields.push((
                    "phases".to_string(),
                    Json::Obj(
                        phase_hists[ei]
                            .iter()
                            .map(|(phase, h)| {
                                let s = h.summary();
                                (
                                    phase.clone(),
                                    Json::obj([
                                        ("reps", Json::Int(s.count as i64)),
                                        ("p50_us", us(s.p50)),
                                        ("p90_us", us(s.p90)),
                                        ("p99_us", us(s.p99)),
                                        ("max_us", us(s.max)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ));
            }
            (*engine, Json::Obj(fields))
        }));
        program_objs.push((
            (*name).to_string(),
            Json::obj([
                ("verdict", Json::Str(verdict.to_string())),
                ("winner", Json::Str(winner.clone())),
                ("race_median_ms", Json::Num(median_ms(&mut race_ms))),
                ("engines", engines),
            ]),
        ));
    }
    let doc = Json::obj([
        ("reps", Json::Int(reps as i64)),
        ("programs", Json::Obj(program_objs)),
    ]);
    let mut json = doc.to_pretty();
    json.push('\n');

    match std::env::var("BENCH_SOLVERS_JSON") {
        Ok(path) => {
            std::fs::write(&path, &json).expect("write BENCH_SOLVERS_JSON");
            eprintln!("wrote {path}");
        }
        Err(_) => print!("{json}"),
    }
}
