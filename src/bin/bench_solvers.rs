//! End-to-end portfolio-race latency recorder (`scripts/bench_solvers.sh`).
//!
//! Races the four representation-class engines on each showcase program
//! several times and records, per program, the race verdict, the
//! winning engine, and every entrant's per-run latencies (median over
//! repetitions) plus its final status — the end-to-end numbers a user
//! of the portfolio would feel, as opposed to the kernel ratios of
//! `BENCH_automata.json`.
//!
//! Output goes to `$BENCH_SOLVERS_JSON` (the script points it at
//! `BENCH_solvers.json` in the repo root). `$BENCH_SOLVERS_REPS`
//! overrides the repetition count (default 5). Seed version: recorded,
//! not gated.

use std::fmt::Write as _;
use std::time::Duration;

use ringen::benchgen::programs;
use ringen::parallel::ParallelConfig;
use ringen::portfolio::{solve_portfolio, PortfolioAnswer, PortfolioConfig};

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let reps: usize = std::env::var("BENCH_SOLVERS_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5);
    let cases = [
        ("Even", programs::even()),
        ("IncDec", programs::inc_dec()),
        ("Diag", programs::diag()),
        ("EvenDiag", programs::even_diag()),
    ];
    let engine_names = ["fmf", "elem", "sizeelem", "regelem"];

    let mut json = String::from("{\n  \"reps\": ");
    let _ = write!(json, "{reps},\n  \"programs\": {{\n");
    for (ci, (name, sys)) in cases.iter().enumerate() {
        // One worker per entrant, regardless of the measuring host:
        // these are race latencies, not hardware benchmarks.
        let cfg = PortfolioConfig {
            parallel: ParallelConfig::with_threads(4),
            ..PortfolioConfig::default()
        };
        let mut race_ms: Vec<f64> = Vec::with_capacity(reps);
        let mut engine_ms: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); engine_names.len()];
        let mut verdict = "unknown";
        let mut winner = String::from("none");
        let mut statuses: Vec<String> = vec![String::new(); engine_names.len()];
        for _ in 0..reps {
            let (answer, stats) = solve_portfolio(sys, &cfg);
            verdict = match answer {
                PortfolioAnswer::Sat(_) => "sat",
                PortfolioAnswer::Unsat(_) => "unsat",
                PortfolioAnswer::Unknown => "unknown",
                PortfolioAnswer::Interrupted => "interrupted",
            };
            race_ms.push(ms(stats.elapsed));
            if let Some(report) = stats.winner_report() {
                winner = report.name.to_string();
            }
            for (ei, report) in stats.engines.iter().enumerate() {
                engine_ms[ei].push(ms(report.elapsed));
                statuses[ei] = format!("{:?}", report.status);
            }
        }
        eprintln!(
            "{name:<10} {verdict:>8}  winner={winner:<8}  race {:.2}ms",
            median_ms(&mut race_ms)
        );
        let _ = write!(
            json,
            "    \"{name}\": {{\n      \"verdict\": \"{verdict}\",\n      \
             \"winner\": \"{winner}\",\n      \"race_median_ms\": {:.3},\n      \
             \"engines\": {{\n",
            median_ms(&mut race_ms)
        );
        for (ei, engine) in engine_names.iter().enumerate() {
            let _ = writeln!(
                json,
                "        \"{engine}\": {{\"status\": \"{}\", \"median_ms\": {:.3}}}{}",
                statuses[ei],
                median_ms(&mut engine_ms[ei]),
                if ei + 1 < engine_names.len() { "," } else { "" }
            );
        }
        let _ = write!(
            json,
            "      }}\n    }}{}\n",
            if ci + 1 < cases.len() { "," } else { "" }
        );
    }
    json.push_str("  }\n}\n");

    match std::env::var("BENCH_SOLVERS_JSON") {
        Ok(path) => {
            std::fs::write(&path, &json).expect("write BENCH_SOLVERS_JSON");
            eprintln!("wrote {path}");
        }
        Err(_) => print!("{json}"),
    }
}
