//! End-to-end portfolio-race latency recorder (`scripts/bench_solvers.sh`).
//!
//! Races the four representation-class engines on each showcase program
//! several times and records, per program, the race verdict, the
//! winning engine, and every entrant's per-run latencies (median over
//! repetitions) plus its final status — the end-to-end numbers a user
//! of the portfolio would feel, as opposed to the kernel ratios of
//! `BENCH_automata.json`.
//!
//! After the timed repetitions, one extra *instrumented* run per
//! program races under an enabled [`Recorder`]; its span tree is
//! folded into a per-engine `"phases"` object (direct child spans of
//! each entrant, microseconds summed by name), so the JSON shows not
//! just how long each entrant ran but where the time went. The
//! document is built with `ringen-obs`'s JSON writer — the same
//! serializer behind `--report-json`.
//!
//! Output goes to `$BENCH_SOLVERS_JSON` (the script points it at
//! `BENCH_solvers.json` in the repo root). `$BENCH_SOLVERS_REPS`
//! overrides the repetition count (default 5). Seed version: recorded,
//! not gated.

use std::time::Duration;

use ringen::benchgen::programs;
use ringen::core::{Guard, Recorder};
use ringen::obs::json::Json;
use ringen::obs::SpanRec;
use ringen::parallel::ParallelConfig;
use ringen::portfolio::{
    solve_portfolio, solve_portfolio_guarded, PortfolioAnswer, PortfolioConfig,
};

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Direct child spans of the entrant span named `engine` (under the
/// `race` span), microseconds summed by span name, in first-appearance
/// order.
fn phase_breakdown(spans: &[SpanRec], engine: &str) -> Vec<(String, f64)> {
    let race = spans.iter().find(|s| s.name == "race");
    let entrant = spans
        .iter()
        .find(|s| s.name == engine && s.parent == race.map(|r| r.id));
    let Some(entrant) = entrant else {
        return Vec::new();
    };
    let mut out: Vec<(String, f64)> = Vec::new();
    for s in spans.iter().filter(|s| s.parent == Some(entrant.id)) {
        let us = s.end_ns.saturating_sub(s.start_ns) as f64 / 1e3;
        match out.iter_mut().find(|(n, _)| n == s.name) {
            Some((_, total)) => *total += us,
            None => out.push((s.name.to_string(), us)),
        }
    }
    out
}

fn main() {
    let reps: usize = std::env::var("BENCH_SOLVERS_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(5);
    let cases = [
        ("Even", programs::even()),
        ("IncDec", programs::inc_dec()),
        ("Diag", programs::diag()),
        ("EvenDiag", programs::even_diag()),
    ];
    let engine_names = ["fmf", "elem", "sizeelem", "regelem"];

    let mut program_objs: Vec<(String, Json)> = Vec::new();
    for (name, sys) in &cases {
        // One worker per entrant, regardless of the measuring host:
        // these are race latencies, not hardware benchmarks.
        let cfg = PortfolioConfig {
            parallel: ParallelConfig::with_threads(4),
            ..PortfolioConfig::default()
        };
        let mut race_ms: Vec<f64> = Vec::with_capacity(reps);
        let mut engine_ms: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); engine_names.len()];
        let mut verdict = "unknown";
        let mut winner = String::from("none");
        let mut statuses: Vec<String> = vec![String::new(); engine_names.len()];
        for _ in 0..reps {
            let (answer, stats) = solve_portfolio(sys, &cfg);
            verdict = match answer {
                PortfolioAnswer::Sat(_) => "sat",
                PortfolioAnswer::Unsat(_) => "unsat",
                PortfolioAnswer::Unknown => "unknown",
                PortfolioAnswer::Interrupted => "interrupted",
            };
            race_ms.push(ms(stats.elapsed));
            if let Some(report) = stats.winner_report() {
                winner = report.name.to_string();
            }
            for (ei, report) in stats.engines.iter().enumerate() {
                engine_ms[ei].push(ms(report.elapsed));
                statuses[ei] = format!("{:?}", report.status);
            }
        }
        // One extra instrumented race: the recorder's span tree gives
        // the per-phase breakdown (it is kept out of the timed reps so
        // the medians stay recorder-free).
        let recorder = Recorder::new();
        let guard = Guard::new().with_recorder(recorder.clone());
        let _ = solve_portfolio_guarded(sys, &cfg, &guard);
        let trace = recorder.snapshot();

        eprintln!(
            "{name:<10} {verdict:>8}  winner={winner:<8}  race {:.2}ms",
            median_ms(&mut race_ms)
        );
        let engines = Json::obj(engine_names.iter().enumerate().map(|(ei, engine)| {
            let phases = phase_breakdown(&trace.spans, engine);
            let mut fields = vec![
                ("status".to_string(), Json::Str(statuses[ei].clone())),
                (
                    "median_ms".to_string(),
                    Json::Num(median_ms(&mut engine_ms[ei])),
                ),
            ];
            if !phases.is_empty() {
                fields.push((
                    "phases_us".to_string(),
                    Json::Obj(
                        phases
                            .into_iter()
                            .map(|(n, us)| (n, Json::Num(us)))
                            .collect(),
                    ),
                ));
            }
            (*engine, Json::Obj(fields))
        }));
        program_objs.push((
            (*name).to_string(),
            Json::obj([
                ("verdict", Json::Str(verdict.to_string())),
                ("winner", Json::Str(winner.clone())),
                ("race_median_ms", Json::Num(median_ms(&mut race_ms))),
                ("engines", engines),
            ]),
        ));
    }
    let doc = Json::obj([
        ("reps", Json::Int(reps as i64)),
        ("programs", Json::Obj(program_objs)),
    ]);
    let mut json = doc.to_pretty();
    json.push('\n');

    match std::env::var("BENCH_SOLVERS_JSON") {
        Ok(path) => {
            std::fs::write(&path, &json).expect("write BENCH_SOLVERS_JSON");
            eprintln!("wrote {path}");
        }
        Err(_) => print!("{json}"),
    }
}
