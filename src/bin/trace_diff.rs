//! Compares two solve-trace documents phase-by-phase and fails on
//! end-to-end latency regressions — the `BENCH_solvers.json` CI gate,
//! companion to `bench_diff` (which gates the kernel microbenches).
//!
//! ```text
//! trace_diff <baseline.json> <current.json> [--tolerance R] [--floor-us U]
//! ```
//!
//! Both inputs may be either a `ringen-solve-report-v1` document
//! (`--report-json` / `RINGEN_TRACE` output — compared on its per-span
//! histogram medians and wall clock) or a `bench_solvers` document
//! (compared on every program's `race_median_ms` and every
//! per-engine phase's `p50_us`).
//!
//! End-to-end latencies are far noisier than in-process kernel ratios
//! — the committed baseline was measured on a different host than CI —
//! so the gate is deliberately wide and **two-sided on failure only in
//! the slow direction**: a metric fails only when the current value
//! exceeds `baseline × tolerance` (default 5×, `TRACE_DIFF_TOLERANCE`
//! or `--tolerance` overrides) **and** the absolute growth exceeds the
//! floor (default 5000 µs, `TRACE_DIFF_FLOOR_US` / `--floor-us`), so
//! microsecond-scale phases cannot trip the gate on scheduling jitter.
//! Metrics present on only one side are reported as notes, never
//! failures. Exit codes follow `bench_diff`: 0 clean, 1 regression,
//! 2 usage/input error.

use std::process::ExitCode;

use ringen::obs::json::{parse, Json};

/// The flat metric list extracted from either supported document kind:
/// `(label, microseconds)` pairs in document order.
fn metrics_from(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if doc.get("schema").and_then(|s| s.as_str()) == Some(ringen::report::SCHEMA) {
        if let Some(wall) = doc.get("wall_ms").and_then(|v| v.as_f64()) {
            out.push(("wall_ms".to_string(), wall * 1e3));
        }
        if let Some(Json::Obj(hists)) = doc.get("histograms") {
            for (name, h) in hists {
                if let Some(p50) = h.get("p50_us").and_then(|v| v.as_f64()) {
                    out.push((format!("span.{name}.p50_us"), p50));
                }
            }
        }
        return out;
    }
    if let Some(Json::Obj(programs)) = doc.get("programs") {
        for (prog, body) in programs {
            if let Some(race) = body.get("race_median_ms").and_then(|v| v.as_f64()) {
                out.push((format!("{prog}/race_median_ms"), race * 1e3));
            }
            if let Some(Json::Obj(engines)) = body.get("engines") {
                for (engine, ebody) in engines {
                    if let Some(Json::Obj(phases)) = ebody.get("phases") {
                        for (phase, pbody) in phases {
                            if let Some(p50) = pbody.get("p50_us").and_then(|v| v.as_f64()) {
                                out.push((format!("{prog}/{engine}/{phase}.p50_us"), p50));
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// The gate itself, pure for testing: returns the failure count and
/// the report lines in order.
fn compare(
    base: &[(String, f64)],
    cur: &[(String, f64)],
    tolerance: f64,
    floor_us: f64,
) -> (usize, Vec<String>) {
    let mut failures = 0usize;
    let mut lines = Vec::new();
    for (label, b) in base {
        match cur.iter().find(|(l, _)| l == label) {
            None => lines.push(format!("note {label}: missing from current run")),
            Some((_, c)) => {
                let slow = *c > b * tolerance && (c - b) > floor_us;
                if slow {
                    lines.push(format!(
                        "FAIL {label}: {c:.1}us vs baseline {b:.1}us \
                         (>{tolerance:.1}x and +{floor_us:.0}us floor exceeded)"
                    ));
                    failures += 1;
                } else {
                    lines.push(format!("ok   {label}: {c:.1}us (baseline {b:.1}us)"));
                }
            }
        }
    }
    for (label, c) in cur {
        if !base.iter().any(|(l, _)| l == label) {
            lines.push(format!(
                "note {label}: new metric at {c:.1}us (no baseline)"
            ));
        }
    }
    (failures, lines)
}

fn main() -> ExitCode {
    let mut tolerance: f64 = std::env::var("TRACE_DIFF_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let mut floor_us: f64 = std::env::var("TRACE_DIFF_FLOOR_US")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5000.0);

    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => tolerance = v,
                None => {
                    eprintln!("trace_diff: --tolerance needs a number");
                    return ExitCode::from(2);
                }
            },
            "--floor-us" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => floor_us = v,
                None => {
                    eprintln!("trace_diff: --floor-us needs a number");
                    return ExitCode::from(2);
                }
            },
            _ => paths.push(arg),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!(
            "usage: trace_diff <baseline.json> <current.json> [--tolerance R] [--floor-us U]"
        );
        return ExitCode::from(2);
    };

    let load = |path: &str| -> Option<Json> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_diff: cannot read {path}: {e}");
                return None;
            }
        };
        match parse(&text) {
            Ok(doc) => Some(doc),
            Err(e) => {
                eprintln!("trace_diff: {path}: invalid JSON: {e}");
                None
            }
        }
    };
    let (Some(base_doc), Some(cur_doc)) = (load(baseline_path), load(current_path)) else {
        return ExitCode::from(2);
    };

    let base = metrics_from(&base_doc);
    let cur = metrics_from(&cur_doc);
    if base.is_empty() || cur.is_empty() {
        eprintln!(
            "trace_diff: no comparable metrics ({} baseline, {} current) — \
             inputs must be solve reports or bench_solvers documents",
            base.len(),
            cur.len()
        );
        return ExitCode::from(2);
    }
    if !base.iter().any(|(l, _)| cur.iter().any(|(c, _)| c == l)) {
        eprintln!("trace_diff: baseline and current share no metric labels");
        return ExitCode::from(2);
    }

    let (failures, lines) = compare(&base, &cur, tolerance, floor_us);
    for line in lines {
        println!("{line}");
    }
    if failures > 0 {
        eprintln!(
            "trace_diff: {failures} latency regression(s) vs {baseline_path} \
             (tolerance {tolerance:.1}x, floor {floor_us:.0}us)"
        );
        ExitCode::FAILURE
    } else {
        println!("trace_diff: no latency regressions vs {baseline_path}");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH: &str = r#"{
  "reps": 5,
  "programs": {
    "Even": {
      "verdict": "sat",
      "winner": "fmf",
      "race_median_ms": 2.5,
      "engines": {
        "fmf": {
          "status": "Definitive",
          "median_ms": 1.2,
          "phases": {
            "fmf.search": {"reps": 5, "p50_us": 800.0, "p90_us": 900.0, "p99_us": 950.0, "max_us": 1000.0}
          }
        }
      }
    }
  }
}"#;

    const REPORT: &str = r#"{
  "schema": "ringen-solve-report-v1",
  "program": "even",
  "solver": "ringen",
  "verdict": "sat",
  "wall_ms": 3.25,
  "stats": {},
  "counters": {},
  "gauges": {},
  "histograms": {
    "saturate": {"count": 4, "min_us": 10.0, "max_us": 40.0, "p50_us": 20.0, "p90_us": 39.0, "p99_us": 40.0, "sum_us": 95.0}
  },
  "dropped_spans": {"ring": 0, "sampled": 0},
  "spans": []
}"#;

    #[test]
    fn extracts_bench_metrics() {
        let doc = parse(BENCH).unwrap();
        let m = metrics_from(&doc);
        assert_eq!(
            m,
            vec![
                ("Even/race_median_ms".to_string(), 2500.0),
                ("Even/fmf/fmf.search.p50_us".to_string(), 800.0),
            ]
        );
    }

    #[test]
    fn extracts_report_metrics() {
        let doc = parse(REPORT).unwrap();
        let m = metrics_from(&doc);
        assert_eq!(
            m,
            vec![
                ("wall_ms".to_string(), 3250.0),
                ("span.saturate.p50_us".to_string(), 20.0),
            ]
        );
    }

    #[test]
    fn gate_needs_both_ratio_and_floor() {
        let base = vec![("m".to_string(), 1000.0)];
        // 10x slower but only +9ms... wait, floor is 5000us: 10000-1000
        // = 9000 > 5000 and ratio 10 > 5 → fails.
        let (f, _) = compare(&base, &[("m".to_string(), 10_000.0)], 5.0, 5000.0);
        assert_eq!(f, 1);
        // Huge ratio, tiny absolute growth: passes (scheduling noise on
        // a microsecond-scale phase).
        let base_small = vec![("m".to_string(), 10.0)];
        let (f, _) = compare(&base_small, &[("m".to_string(), 400.0)], 5.0, 5000.0);
        assert_eq!(f, 0);
        // Large absolute growth but under the ratio: passes.
        let (f, _) = compare(&base, &[("m".to_string(), 4000.0)], 5.0, 1000.0);
        assert_eq!(f, 0);
        // Faster never fails.
        let (f, _) = compare(&base, &[("m".to_string(), 1.0)], 5.0, 0.0);
        assert_eq!(f, 0);
    }

    #[test]
    fn one_sided_metrics_are_notes_not_failures() {
        let base = vec![("gone".to_string(), 1000.0)];
        let cur = vec![("new".to_string(), 9_999_999.0)];
        let (f, lines) = compare(&base, &cur, 5.0, 5000.0);
        assert_eq!(f, 0);
        assert!(lines.iter().all(|l| l.starts_with("note ")));
        assert_eq!(lines.len(), 2);
    }
}
