//! A minimal, dependency-free stand-in for the `rustc-hash` crate,
//! vendored because this workspace builds without network access.
//!
//! Implements the Fx multiply-rotate hash: a fast, non-cryptographic,
//! deterministic hasher suited to small integer-heavy keys (interned
//! ids, state tuples). Not DoS-resistant — never use it on untrusted
//! external input.

use std::hash::{BuildHasherDefault, Hasher};

/// Hash state for the Fx algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        // Length tag so that e.g. [1] and [1, 0] differ.
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` using the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` using the Fx hash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes one value with [`FxHasher`] (convenience for custom tables).
#[inline]
pub fn hash_one<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(7))), Some(&i));
        }
        let s: FxHashSet<u64> = (0..100).collect();
        assert!(s.contains(&42) && !s.contains(&100));
    }

    #[test]
    fn hashes_are_deterministic_and_spread() {
        assert_eq!(hash_one(&12345u64), hash_one(&12345u64));
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        // Slice hashing distinguishes lengths.
        assert_ne!(hash_one(&[1u8][..]), hash_one(&[1u8, 0][..]));
    }
}
