//! A minimal, dependency-free stand-in for the `proptest` crate,
//! vendored because this workspace builds without network access.
//!
//! It supports the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` attribute, `x in strategy` bindings,
//! [`prop_assert!`]/[`prop_assert_eq!`], integer-range strategies
//! (half-open and inclusive), [`any::<bool>()`], strategy tuples,
//! `prop::collection::vec`, the [`Strategy::prop_map`] /
//! [`Strategy::prop_flat_map`] combinators, and [`option::of`].
//!
//! Differences from real proptest: generation is a fixed-seed
//! deterministic PRNG (xorshift64*), there is no shrinking, and a
//! failing case reports the case number instead of a minimized input.
//! Failures are still reproducible because the seed is fixed.

use std::ops::{Range, RangeInclusive};

/// Deterministic xorshift64* PRNG driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fixed-seed generator; `salt` varies the stream per test.
    pub fn deterministic(salt: u64) -> TestRng {
        TestRng {
            state: (0x9e37_79b9_7f4a_7c15 ^ salt.wrapping_mul(0xff51_afd7_ed55_8ccd)) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value and draws
    /// from it (proptest's `prop_flat_map`).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for "any value of `T`" (implemented for the types the
/// workspace's tests request).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`, as in proptest's prelude.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A constant strategy (proptest's `Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 / 0);
tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            super::Strategy::generate(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            super::Strategy::generate(self, rng)
        }
    }

    /// Strategy for `Vec`s of `elem`-generated values. Returned by
    /// [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// `prop::collection::vec(strategy, len_or_range)`.
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Optional-value strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option`s of `inner`-generated values. Returned by
    /// [`of`].
    #[derive(Debug, Clone)]
    pub struct OfStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(strategy)`: `None` or `Some(value)`, evenly.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy { inner }
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error type carried by `prop_assert!` failures through the runner.
#[derive(Debug)]
pub struct TestCaseError(pub String);

#[doc(hidden)]
pub fn _run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let salt = rustc_hash_like(test_name);
    for i in 0..config.cases {
        let mut rng = TestRng::deterministic(salt.wrapping_add(u64::from(i)));
        if let Err(TestCaseError(msg)) = case(&mut rng) {
            panic!(
                "proptest case {i}/{} failed for `{test_name}`: {msg}",
                config.cases
            );
        }
    }
}

/// FNV-style fold of the test name into a seed salt (keeps streams of
/// different tests decorrelated without pulling in a hasher).
fn rustc_hash_like(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!({ $config } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!({ $crate::ProptestConfig::default() } $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ({ $config:expr }) => {};
    (
        { $config:expr }
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::_run_cases(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_tests!({ $config } $($rest)*);
    };
}

/// Asserts inside a proptest body, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if *a != *b {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// The drop-in prelude: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Namespace alias so `prop::collection::vec` resolves, as with the
    /// real crate's prelude.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u8..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths_respect_range(
            v in prop::collection::vec(0usize..5, 2..6),
            w in prop::collection::vec(any::<bool>(), 3),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_compose((a, b, c) in (0u32..10, any::<bool>(), 1usize..3)) {
            prop_assert!(a < 10);
            prop_assert!(c == 1 || c == 2);
            let _ = b;
        }

        #[test]
        fn inclusive_ranges_hit_both_ends(x in 0usize..=2) {
            prop_assert!(x <= 2);
        }

        #[test]
        fn combinators_compose(
            v in (1usize..=3).prop_flat_map(|n| {
                prop::collection::vec(0usize..10, n).prop_map(move |xs| (n, xs))
            }),
            o in prop::option::of(0u8..4),
        ) {
            prop_assert_eq!(v.0, v.1.len());
            prop_assert!(o.is_none() || o.unwrap() < 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 10usize);
        let a = crate::Strategy::generate(&strat, &mut crate::TestRng::deterministic(7));
        let b = crate::Strategy::generate(&strat, &mut crate::TestRng::deterministic(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_the_case() {
        crate::_run_cases(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| -> Result<(), TestCaseError> {
                crate::prop_assert!(false);
                #[allow(unreachable_code)]
                Ok(())
            },
        );
    }
}
