//! A minimal, dependency-free stand-in for the `criterion` crate,
//! vendored because this workspace builds without network access.
//!
//! Supports the subset of the criterion API this workspace's benches
//! use: [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! `sample_size`/`measurement_time`/`warm_up_time`,
//! `bench_function`/`bench_with_input`, [`BenchmarkId`], and
//! [`black_box`]. Measurement is plain wall-clock sampling (median and
//! mean over `sample_size` samples) with a warm-up phase — no outlier
//! analysis or HTML reports.
//!
//! Extras for scripting:
//! * `CRITERION_OUTPUT_JSON=<path>` writes all results to a JSON file;
//! * `CRITERION_QUICK=1` shrinks warm-up/measurement for smoke runs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark: a function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("solver", "Even")`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id with only a function name.
    pub fn from_function(function: impl Into<String>) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId::from_function(s)
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId::from_function(s)
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Record {
    /// Group name (from `benchmark_group`).
    pub group: String,
    /// Function part of the id.
    pub function: String,
    /// Parameter part of the id (may be empty).
    pub parameter: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// The benchmark driver.
pub struct Criterion {
    records: Vec<Record>,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            records: Vec::new(),
            quick: std::env::var_os("CRITERION_QUICK").is_some(),
        }
    }
}

impl Criterion {
    /// Accepted for drop-in compatibility; command-line arguments are
    /// ignored (cargo passes `--bench`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// All results measured so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Prints a summary and honors `CRITERION_OUTPUT_JSON`.
    pub fn final_summary(&self) {
        if let Some(path) = std::env::var_os("CRITERION_OUTPUT_JSON") {
            let json = records_to_json(&self.records);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("criterion: cannot write {}: {e}", path.to_string_lossy());
            } else {
                eprintln!(
                    "criterion: wrote {} results to {}",
                    self.records.len(),
                    path.to_string_lossy()
                );
            }
        }
    }
}

/// Serializes records as a JSON array (hand-rolled; no serde in the
/// no-network build).
pub fn records_to_json(records: &[Record]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"group\": {}, \"function\": {}, \"parameter\": {}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
            json_str(&r.group),
            json_str(&r.function),
            json_str(&r.parameter),
            r.median_ns,
            r.mean_ns,
            r.samples,
            r.iters_per_sample,
        );
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the measurement phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Time budget for the warm-up phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id, |b| f(b));
        self
    }

    /// Benchmarks a closure with an input handle.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let (warm_up, measure) = if self.criterion.quick {
            (Duration::from_millis(20), Duration::from_millis(100))
        } else {
            (self.warm_up_time, self.measurement_time)
        };

        // Warm-up: run full Bencher passes, measuring the per-iteration
        // cost to size the measurement batches.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter;
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter = (b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX))
                .max(Duration::from_nanos(1));
            if warm_start.elapsed() >= warm_up {
                break;
            }
            // Grow towards batches of roughly 5 ms.
            let target = (5_000_000 / per_iter.as_nanos().max(1)) as u64;
            b.iters = target.clamp(1, 1_000_000_000);
        }

        // Measurement: `sample_size` samples within the time budget.
        let budget_per_sample = measure / u32::try_from(self.sample_size).unwrap_or(1);
        let iters = ((budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)) as u64)
            .clamp(1, 1_000_000_000);
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + measure.max(Duration::from_millis(1)) * 2;
        for _ in 0..self.sample_size {
            let mut bench = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bench);
            samples_ns.push(bench.elapsed.as_nanos() as f64 / bench.iters as f64);
            if Instant::now() > deadline {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("benchmark time is finite"));
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let record = Record {
            group: self.name.clone(),
            function: id.function,
            parameter: id.parameter,
            median_ns: median,
            mean_ns: mean,
            samples: samples_ns.len(),
            iters_per_sample: iters,
        };
        let label = if record.parameter.is_empty() {
            format!("{}/{}", record.group, record.function)
        } else {
            format!("{}/{}/{}", record.group, record.function, record.parameter)
        };
        eprintln!(
            "{label:<56} time: {:>12} (median of {} samples × {} iters)",
            fmt_ns(median),
            record.samples,
            iters
        );
        self.criterion.records.push(record);
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of
    /// iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `main` running the listed groups and writing the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("busy", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
        assert_eq!(c.records().len(), 2);
        assert!(c.records().iter().all(|r| r.median_ns > 0.0));
        assert_eq!(c.records()[1].parameter, "7");
    }

    #[test]
    fn json_escapes_and_shapes() {
        let rec = Record {
            group: "g\"x".into(),
            function: "f".into(),
            parameter: String::new(),
            median_ns: 12.5,
            mean_ns: 13.0,
            samples: 3,
            iters_per_sample: 10,
        };
        let json = records_to_json(&[rec]);
        assert!(json.starts_with('['));
        assert!(json.contains("\\\""));
        assert!(json.contains("\"median_ns\": 12.5"));
    }
}
