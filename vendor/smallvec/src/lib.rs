//! A minimal, dependency-free stand-in for the `smallvec` crate,
//! vendored because this workspace builds without network access.
//!
//! [`SmallVec<[T; N]>`] stores up to `N` elements inline (no heap
//! allocation) and spills to a `Vec<T>` beyond that. The workspace uses
//! it for short argument tuples — automaton transition left-hand sides,
//! predicate fact rows — where the common arity is ≤ 4 and a heap
//! allocation per tuple would dominate the hot paths.
//!
//! Only the API surface the workspace needs is implemented.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::{Deref, DerefMut};
use std::ptr;

/// Types usable as the inline backing store (`[T; N]`).
///
/// # Safety
///
/// `LEN` must be the exact number of `Item`s the type holds contiguously.
pub unsafe trait Array {
    /// Element type.
    type Item;
    /// Inline capacity.
    const LEN: usize;
}

unsafe impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    const LEN: usize = N;
}

enum Repr<A: Array> {
    /// `len` initialized elements at the front of the buffer.
    Inline(usize, MaybeUninit<A>),
    Heap(Vec<A::Item>),
}

/// A vector with inline storage for up to `A::LEN` elements.
pub struct SmallVec<A: Array>(Repr<A>);

impl<A: Array> SmallVec<A> {
    /// An empty vector (inline, no allocation).
    #[inline]
    pub fn new() -> Self {
        SmallVec(Repr::Inline(0, MaybeUninit::uninit()))
    }

    /// An empty vector; allocates only if `cap` exceeds the inline
    /// capacity.
    pub fn with_capacity(cap: usize) -> Self {
        if cap <= A::LEN {
            Self::new()
        } else {
            SmallVec(Repr::Heap(Vec::with_capacity(cap)))
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline(len, _) => *len,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements are stored inline (no heap allocation).
    #[inline]
    pub fn spilled(&self) -> bool {
        matches!(self.0, Repr::Heap(_))
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[A::Item] {
        match &self.0 {
            Repr::Inline(len, buf) => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const A::Item, *len)
            },
            Repr::Heap(v) => v.as_slice(),
        }
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [A::Item] {
        match &mut self.0 {
            Repr::Inline(len, buf) => unsafe {
                std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut A::Item, *len)
            },
            Repr::Heap(v) => v.as_mut_slice(),
        }
    }

    /// Moves the inline elements to the heap (no-op if already there).
    fn spill(&mut self) {
        if let Repr::Inline(len, buf) = &mut self.0 {
            let mut v = Vec::with_capacity((A::LEN * 2).max(*len + 1));
            let src = buf.as_ptr() as *const A::Item;
            unsafe {
                for i in 0..*len {
                    v.push(ptr::read(src.add(i)));
                }
            }
            // The inline elements were moved out; forget them by
            // resetting the length before replacing the repr.
            self.0 = Repr::Heap(v);
        }
    }

    /// Appends an element.
    #[inline]
    pub fn push(&mut self, value: A::Item) {
        match &mut self.0 {
            Repr::Inline(len, buf) => {
                if *len < A::LEN {
                    unsafe {
                        (buf.as_mut_ptr() as *mut A::Item).add(*len).write(value);
                    }
                    *len += 1;
                } else {
                    self.spill();
                    self.push(value);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<A::Item> {
        match &mut self.0 {
            Repr::Inline(len, buf) => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(unsafe { ptr::read((buf.as_ptr() as *const A::Item).add(*len)) })
                }
            }
            Repr::Heap(v) => v.pop(),
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        match &mut self.0 {
            Repr::Inline(len, buf) => {
                let l = *len;
                *len = 0;
                unsafe {
                    ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(
                        buf.as_mut_ptr() as *mut A::Item,
                        l,
                    ));
                }
            }
            Repr::Heap(v) => v.clear(),
        }
    }

    /// Converts into a plain `Vec`, reusing the heap buffer if spilled.
    pub fn into_vec(mut self) -> Vec<A::Item> {
        match &mut self.0 {
            Repr::Inline(len, buf) => {
                let mut v = Vec::with_capacity(*len);
                let src = buf.as_ptr() as *const A::Item;
                unsafe {
                    for i in 0..*len {
                        v.push(ptr::read(src.add(i)));
                    }
                }
                *len = 0; // elements moved out; Drop must not re-drop them
                v
            }
            Repr::Heap(v) => std::mem::take(v),
        }
    }
}

impl<A: Array> SmallVec<A>
where
    A::Item: Clone,
{
    /// Builds from a slice by cloning.
    pub fn from_slice(slice: &[A::Item]) -> Self {
        let mut out = Self::with_capacity(slice.len());
        for x in slice {
            out.push(x.clone());
        }
        out
    }

    /// Appends every element of `slice` by cloning.
    pub fn extend_from_slice(&mut self, slice: &[A::Item]) {
        for x in slice {
            self.push(x.clone());
        }
    }
}

impl<A: Array> Drop for SmallVec<A> {
    fn drop(&mut self) {
        if let Repr::Inline(..) = self.0 {
            self.clear();
        }
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];

    #[inline]
    fn deref(&self) -> &[A::Item] {
        self.as_slice()
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [A::Item] {
        self.as_mut_slice()
    }
}

impl<A: Array> Borrow<[A::Item]> for SmallVec<A> {
    #[inline]
    fn borrow(&self) -> &[A::Item] {
        self.as_slice()
    }
}

impl<A: Array> AsRef<[A::Item]> for SmallVec<A> {
    #[inline]
    fn as_ref(&self) -> &[A::Item] {
        self.as_slice()
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        let mut out = Self::new();
        out.extend(iter);
        out
    }
}

impl<A: Array> From<Vec<A::Item>> for SmallVec<A> {
    fn from(v: Vec<A::Item>) -> Self {
        SmallVec(Repr::Heap(v))
    }
}

impl<'a, A: Array> From<&'a [A::Item]> for SmallVec<A>
where
    A::Item: Clone,
{
    fn from(s: &'a [A::Item]) -> Self {
        Self::from_slice(s)
    }
}

/// Owning iterator. Returned by [`SmallVec::into_iter`].
pub struct IntoIter<A: Array> {
    inner: std::vec::IntoIter<A::Item>,
}

impl<A: Array> Iterator for IntoIter<A> {
    type Item = A::Item;

    fn next(&mut self) -> Option<A::Item> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = IntoIter<A>;

    fn into_iter(self) -> IntoIter<A> {
        IntoIter {
            inner: self.into_vec().into_iter(),
        }
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<A: Array, B: Array<Item = A::Item>> PartialEq<SmallVec<B>> for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &SmallVec<B>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> PartialOrd for SmallVec<A>
where
    A::Item: PartialOrd,
{
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<A: Array> Ord for SmallVec<A>
where
    A::Item: Ord,
{
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

/// Hashes exactly like the corresponding slice, so `&[T]` can be used
/// for map lookups through `Borrow<[T]>`.
impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

// ManuallyDrop is pulled in so the macro below can move array elements
// out without double-dropping, mirroring the real crate's `smallvec!`.
#[doc(hidden)]
pub fn _from_array<A: Array, const N: usize>(arr: [A::Item; N]) -> SmallVec<A> {
    let arr = ManuallyDrop::new(arr);
    let mut out = SmallVec::with_capacity(N);
    for i in 0..N {
        out.push(unsafe { ptr::read(arr.as_ptr().add(i)) });
    }
    out
}

/// `smallvec![a, b, c]` and `smallvec![elem; n]`, like `vec!`.
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($elem:expr; $n:expr) => {{
        let n = $n;
        let elem = $elem;
        let mut out = $crate::SmallVec::with_capacity(n);
        for _ in 0..n {
            out.push(elem.clone());
        }
        out
    }};
    ($($x:expr),+ $(,)?) => {
        $crate::_from_array([$($x),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    type SV = SmallVec<[u32; 4]>;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v = SV::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        v.push(4);
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn push_pop_clear() {
        let mut v = SV::new();
        v.push(7);
        v.push(8);
        assert_eq!(v.pop(), Some(8));
        assert_eq!(v.len(), 1);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn drops_elements_exactly_once() {
        use std::rc::Rc;
        let x = Rc::new(());
        {
            let mut v: SmallVec<[Rc<()>; 2]> = SmallVec::new();
            v.push(x.clone());
            v.push(x.clone());
            v.push(x.clone()); // spills
            assert_eq!(Rc::strong_count(&x), 4);
        }
        assert_eq!(Rc::strong_count(&x), 1);
        {
            let mut v: SmallVec<[Rc<()>; 2]> = SmallVec::new();
            v.push(x.clone());
            let vec = v.into_vec();
            assert_eq!(Rc::strong_count(&x), 2);
            drop(vec);
        }
        assert_eq!(Rc::strong_count(&x), 1);
    }

    #[test]
    fn hashes_and_borrows_like_a_slice() {
        use std::collections::HashSet;
        let mut s: HashSet<SV> = HashSet::new();
        s.insert(SV::from_slice(&[1, 2, 3]));
        assert!(s.contains(&[1u32, 2, 3][..]));
        assert!(!s.contains(&[1u32, 2][..]));
    }

    #[test]
    fn macro_forms() {
        let a: SV = smallvec![1, 2, 3];
        assert_eq!(a.as_slice(), &[1, 2, 3]);
        let b: SV = smallvec![9; 6];
        assert_eq!(b.len(), 6);
        assert!(b.spilled());
        let c: SV = smallvec![];
        assert!(c.is_empty());
    }

    #[test]
    fn equality_ordering_iteration() {
        let a: SV = smallvec![1, 2];
        let b: SV = SmallVec::from_slice(&[1, 2]);
        assert_eq!(a, b);
        assert!(a < SmallVec::<[u32; 4]>::from_slice(&[1, 3]));
        let doubled: Vec<u32> = a.into_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4]);
        let by_ref: u32 = (&b).into_iter().sum();
        assert_eq!(by_ref, 3);
    }
}
