//! Integration test walking every arrow of Figure 1 on a system that
//! exercises all preprocessing passes at once: testers, selectors,
//! disequalities and equalities.

use ringen::chc::parse_str;
use ringen::core::preprocess::{preprocess, skolemize};
use ringen::core::{
    check_inductive, check_refutation, solve, Answer, RegularInvariant, RingenConfig,
};
use ringen::fmf::{find_model, FinderConfig};

fn full_featured_system() -> ringen::chc::ChcSystem {
    // p marks non-zero evens; the query mixes a tester, a selector and a
    // disequality. Satisfiable: p ⊆ {2, 4, …} and pre(x) of an even
    // non-zero x is odd, hence never equal to x.
    parse_str(
        r#"
        (set-logic HORN)
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun p (Nat) Bool)
        (assert (p (S (S Z))))
        (assert (forall ((x Nat)) (=> (p x) (p (S (S x))))))
        (assert (forall ((x Nat))
          (=> (and (p x) ((_ is S) x) (= (pre x) x)) false)))
        (assert (forall ((x Nat) (y Nat))
          (=> (and (p x) (p y) (distinct x y) (= y (S x))) false)))
        "#,
    )
    .unwrap()
}

#[test]
fn figure1_every_arrow() {
    let sys = full_featured_system();
    assert!(sys.has_testers_or_selectors());
    assert!(sys.has_disequalities());

    // Arrow 1-3: preprocessing to constraint-free EUF clauses.
    let pre = preprocess(&sys);
    assert!(!pre.system.has_testers_or_selectors());
    assert!(!pre.system.has_disequalities());
    assert!(pre.system.clauses.iter().all(|c| c.is_constraint_free()));
    assert!(pre.stats.diseq_preds >= 1);
    assert!(pre.stats.tester_preds >= 1);

    // Arrow 4: the finite-model finder.
    let (outcome, _) = find_model(&pre.skolemized, &FinderConfig::default()).unwrap();
    let model = outcome.model().expect("a finite model exists");
    assert!(model.satisfies(&pre.skolemized));

    // Arrow 5: Theorem 1 — model to tree-tuple automaton.
    let inv = RegularInvariant::from_model(&pre.system, &model);
    assert!(check_inductive(&pre.system, &inv).is_inductive());

    // The invariant solves the original problem end to end.
    let (answer, stats) = solve(&sys, &RingenConfig::default());
    let sat = match answer {
        Answer::Sat(s) => s,
        other => panic!("expected SAT, got {other:?}"),
    };
    assert_eq!(stats.model_size, Some(sat.invariant.state_count()));

    // Semantics spot check: p holds of 2,4,6 and not of odds or zero.
    let p = sys.rels.by_name("p").unwrap();
    let z = sys.sig.func_by_name("Z").unwrap();
    let s = sys.sig.func_by_name("S").unwrap();
    let n = |k| ringen::terms::GroundTerm::iterate(s, ringen::terms::GroundTerm::leaf(z), k);
    for k in 0..10usize {
        if k >= 2 && k % 2 == 0 {
            assert!(sat.invariant.holds(p, &[n(k)]), "p should hold of {k}");
        }
        if k % 2 == 1 {
            assert!(!sat.invariant.holds(p, &[n(k)]), "p must not hold of {k}");
        }
    }
}

#[test]
fn refutations_replay_end_to_end() {
    let sys = parse_str(
        r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun p (Nat) Bool)
        (assert (p Z))
        (assert (forall ((x Nat)) (=> (p x) (p (S x)))))
        (assert (forall ((x Nat)) (=> (and (p x) ((_ is S) x) (distinct x (S Z))) false)))
        "#,
    )
    .unwrap();
    let (answer, _) = solve(&sys, &RingenConfig::default());
    let r = match answer {
        Answer::Unsat(r) => r,
        other => panic!("expected UNSAT, got {other:?}"),
    };
    assert!(check_refutation(&sys, &r).is_ok());
}

#[test]
fn skolemization_preserves_universal_systems() {
    let sys = full_featured_system();
    let pre = preprocess(&sys);
    let sk = skolemize(&pre.system);
    assert!(sk.skolem_funcs.is_empty());
    assert_eq!(sk.system.clauses.len(), pre.system.clauses.len());
}

#[test]
fn stlc_system_round_trips_through_smtlib() {
    use ringen::benchgen::stlc::{type_check_system, TypeExpr};
    let sys = type_check_system(&TypeExpr::paper_goal());
    let printed = ringen::chc::to_smtlib(&sys);
    let re = ringen::chc::parse_str(&printed).expect("printer output parses");
    assert_eq!(re.clauses.len(), sys.clauses.len());
    let q = re.clauses.iter().find(|c| c.is_query()).unwrap();
    assert_eq!(q.exist_vars.len(), 2, "∀∃ query survives the round trip");
    assert!(re.well_sorted().is_ok());
}
