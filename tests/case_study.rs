//! The §5 case study as an integration test: the finite-model finder
//! discovers the paper's invariant ℐ for `(a → b) → a`, its semantics
//! match the paper's description, and Peirce's law diverges.

use ringen::benchgen::stlc::{type_check_system, TypeExpr};
use ringen::core::{solve, Answer, RingenConfig};
use ringen::terms::GroundTerm;

#[test]
fn paper_goal_gets_the_six_state_invariant() {
    let sys = type_check_system(&TypeExpr::paper_goal());
    let (answer, stats) = solve(&sys, &RingenConfig::default());
    let sat = match answer {
        Answer::Sat(s) => s,
        other => panic!("expected SAT, got {other:?}"),
    };
    // The paper's model: |Var| + |Type| + |Expr| + |Env| = 1+2+1+2 = 6.
    assert_eq!(stats.model_size, Some(6));

    // Check the invariant against the paper's ℐ on ground instances:
    // ⟨empty, e, t⟩ ∈ ℐ iff M₀ ⊨ t for the all-false interpretation
    // (since the empty environment has no type to falsify).
    let sig = &sat.preprocessed.system.sig;
    let tc = sat.preprocessed.system.rels.by_name("typeCheck").unwrap();
    let prim = sig.func_by_name("prim0").unwrap();
    let arrow = sig.func_by_name("arrow").unwrap();
    let empty = sig.func_by_name("empty").unwrap();
    let evar = sig.func_by_name("evar").unwrap();
    let v0 = sig.func_by_name("v0").unwrap();
    let e = GroundTerm::app(evar, vec![GroundTerm::leaf(v0)]);
    let p = GroundTerm::leaf(prim);
    let arr = |a: &GroundTerm, b: &GroundTerm| GroundTerm::app(arrow, vec![a.clone(), b.clone()]);

    // M₀ ⊭ prim, so ⟨empty, e, prim⟩ ∉ ℐ …
    assert!(!sat
        .invariant
        .holds(tc, &[GroundTerm::leaf(empty), e.clone(), p.clone()]));
    // … but prim → prim is satisfied by M₀, so it is in ℐ.
    let p_to_p = arr(&p, &p);
    assert!(sat
        .invariant
        .holds(tc, &[GroundTerm::leaf(empty), e.clone(), p_to_p.clone()]));
    // The goal instance (prim → prim) → prim is falsified by M₀: not in ℐ.
    let goal = arr(&p_to_p, &p);
    assert!(!sat.invariant.holds(tc, &[GroundTerm::leaf(empty), e, goal]));
}

#[test]
fn peirce_diverges() {
    let sys = type_check_system(&TypeExpr::peirce());
    let mut cfg = RingenConfig::quick();
    cfg.finder.max_total_size = 7;
    let (answer, _) = solve(&sys, &cfg);
    assert!(answer.is_unknown(), "Peirce must diverge, got {answer:?}");
}
