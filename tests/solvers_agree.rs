//! Cross-solver consistency over suite samples: no solver may ever
//! contradict the ground truth or another solver, every RInGen SAT
//! carries a verified invariant, and template invariants must contain
//! the least model while excluding query violations.

use ringen::benchgen::{diseq_suite, positive_eq_suite, tip_suite, Expected};
use ringen::core::definability::LfpOracle;
use ringen::core::saturation::SaturationConfig;
use ringen::core::{solve, Answer, RingenConfig};
use ringen::elem::{solve_elem, ElemAnswer, ElemConfig};
use ringen::sizeelem::{solve_size_elem, SizeElemAnswer, SizeElemConfig};

fn sample() -> Vec<ringen::benchgen::Benchmark> {
    let mut out = Vec::new();
    out.extend(positive_eq_suite().into_iter().take(8));
    out.extend(diseq_suite().into_iter().take(7));
    let tip = tip_suite();
    // A slice from each designed region.
    for name in [
        "tip/reg-only-0",
        "tip/parity-0",
        "tip/order-0",
        "tip/diag-0",
        "tip/incdec-0",
        "tip/unsat-depth-2",
        "tip/hard-0",
    ] {
        out.push(tip.iter().find(|b| b.name == name).unwrap().clone());
    }
    out
}

#[test]
fn no_solver_contradicts_ground_truth() {
    use ringen::regelem::{solve_regelem, RegElemConfig};
    // The combined phase alone: the regular and elementary phases are
    // covered by their own solvers on the previous lines.
    let regelem_cfg = RegElemConfig {
        regular: None,
        elementary: None,
        ..RegElemConfig::quick()
    };
    for b in sample() {
        let (core_ans, _) = solve(&b.system, &RingenConfig::quick());
        let (elem_ans, _) = solve_elem(&b.system, &ElemConfig::quick());
        let (size_ans, _) = solve_size_elem(&b.system, &SizeElemConfig::quick());
        let (regelem_ans, _) = solve_regelem(&b.system, &regelem_cfg);
        let verdicts = [
            ("ringen", core_ans.is_sat(), core_ans.is_unsat()),
            ("elem", elem_ans.is_sat(), elem_ans.is_unsat()),
            ("sizeelem", size_ans.is_sat(), size_ans.is_unsat()),
            ("regelem", regelem_ans.is_sat(), regelem_ans.is_unsat()),
        ];
        for (who, sat, unsat) in verdicts {
            match b.expected {
                Expected::Sat => assert!(!unsat, "{who} refuted satisfiable {}", b.name),
                Expected::Unsat => assert!(!sat, "{who} proved unsatisfiable {}", b.name),
            }
        }
    }
}

#[test]
fn template_invariants_contain_the_least_model() {
    // On SAT answers, the inferred invariant must contain every
    // saturation-derived fact (it over-approximates the least model) and
    // never make a query body true.
    let cfg = SaturationConfig {
        max_facts: 200,
        max_rounds: 12,
        max_term_height: 10,
        free_var_candidates: 4,
        max_steps: 50_000,
        ..SaturationConfig::default()
    };
    for b in sample() {
        if b.expected != Expected::Sat {
            continue;
        }
        let oracle = LfpOracle::new(&b.system, &cfg);
        if let (ElemAnswer::Sat(inv), _) = solve_elem(&b.system, &ElemConfig::quick()) {
            for p in b.system.rels.iter() {
                for fact in oracle.members(p) {
                    assert!(
                        inv.holds(p, fact),
                        "elem invariant of {} misses a least-model fact",
                        b.name
                    );
                }
            }
        }
        if let (SizeElemAnswer::Sat(inv), _) = solve_size_elem(&b.system, &SizeElemConfig::quick())
        {
            for p in b.system.rels.iter() {
                for fact in oracle.members(p) {
                    assert!(
                        inv.holds(p, fact),
                        "sizeelem invariant of {} misses a least-model fact",
                        b.name
                    );
                }
            }
        }
    }
}

#[test]
fn regular_invariants_contain_the_least_model() {
    let cfg = SaturationConfig {
        max_facts: 200,
        max_rounds: 12,
        max_term_height: 10,
        free_var_candidates: 4,
        max_steps: 50_000,
        ..SaturationConfig::default()
    };
    for b in sample() {
        if b.expected != Expected::Sat {
            continue;
        }
        if let (Answer::Sat(sat), _) = solve(&b.system, &RingenConfig::quick()) {
            let oracle = LfpOracle::new(&b.system, &cfg);
            for p in b.system.rels.iter() {
                for fact in oracle.members(p) {
                    assert!(
                        sat.invariant.holds(p, fact),
                        "regular invariant of {} misses a least-model fact",
                        b.name
                    );
                }
            }
        }
    }
}
