//! Byte-stability of the `ringen-solve-report-v1` serialization — the
//! property `trace_diff` relies on: two identical runs must produce
//! documents that differ *only* in measured numbers, and section
//! insertion order must not leak into the output.

use ringen::automata::AutStore;
use ringen::benchgen::programs;
use ringen::core::{solve_guarded, Guard, Recorder, RingenConfig};
use ringen::obs::json::Json;
use ringen::obs::report::Section;
use ringen::parallel::ParallelConfig;
use ringen::report::{solve_sections, store_section, SolveReport};

/// Replaces every float leaf with zero, leaving structure, strings,
/// and integers (counters, ids, stats) untouched — the parts of a
/// report that must be run-independent.
fn zero_nums(j: &mut Json) {
    match j {
        Json::Num(f) => *f = 0.0,
        Json::Arr(items) => items.iter_mut().for_each(zero_nums),
        Json::Obj(pairs) => pairs.iter_mut().for_each(|(_, v)| zero_nums(v)),
        _ => {}
    }
}

/// One deterministic, single-threaded, fully instrumented solve.
fn run_once() -> SolveReport {
    let sys = programs::even();
    let mut cfg = RingenConfig::quick();
    cfg.saturation.parallel = ParallelConfig::with_threads(1);
    cfg.finder.parallel = ParallelConfig::with_threads(1);
    let recorder = Recorder::new();
    let guard = Guard::new().with_recorder(recorder.clone());
    let mut store = AutStore::new();
    let (answer, stats) = solve_guarded(&sys, &cfg, &mut store, &guard);
    let mut sections = solve_sections(&stats);
    sections.push(store_section(&store.stats()));
    SolveReport {
        program: "even".to_string(),
        solver: "ringen".to_string(),
        verdict: if answer.is_interrupted() {
            "interrupted".to_string()
        } else {
            "sat".to_string()
        },
        wall_ms: 1.0,
        trace: recorder.snapshot(),
        sections,
    }
}

#[test]
fn identical_runs_serialize_identically_modulo_timings() {
    let a = run_once();
    let b = run_once();
    // Raw documents differ only in measured floats: zeroing every
    // float leaf must make them byte-equal — same keys, same order,
    // same span ids, same counters.
    let mut da = a.to_json();
    let mut db = b.to_json();
    zero_nums(&mut da);
    zero_nums(&mut db);
    assert_eq!(
        da.to_pretty(),
        db.to_pretty(),
        "two identical single-threaded runs disagree structurally"
    );
}

#[test]
fn section_insertion_order_does_not_leak_into_the_document() {
    let mut report = run_once();
    let baseline = report.to_json_string();
    report.sections.reverse();
    assert_eq!(
        report.to_json_string(),
        baseline,
        "section order changed the serialized document"
    );
    // And a freshly appended out-of-order section lands sorted, not
    // last.
    report
        .sections
        .push(Section::new("aaa_first").entry("x", 1));
    let doc = report.to_json();
    let stats = doc.get("stats").unwrap();
    let keys: Vec<&str> = stats
        .as_obj()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "stats sections not in sorted order");
    assert_eq!(keys.first().copied(), Some("aaa_first"));
}

#[test]
fn flame_export_is_stable_across_identical_runs() {
    let a = run_once();
    let b = run_once();
    let paths = |r: &SolveReport| -> Vec<String> {
        r.to_collapsed_stacks()
            .lines()
            .map(|l| l.rsplit_once(' ').expect("weighted line").0.to_string())
            .collect()
    };
    assert_eq!(
        paths(&a),
        paths(&b),
        "collapsed-stack paths differ between identical runs"
    );
}
