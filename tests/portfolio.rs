//! Acceptance tests for the cancellation subsystem and the portfolio
//! racer: a divergent system under a tight deadline comes home as
//! `Interrupted` with partial stats (no panic, no hang) at 1 and 4
//! worker threads, and the race agrees with the sequential
//! `solve_regelem` chain on the showcase programs while actually
//! cancelling the losers.

use std::time::{Duration, Instant};

use ringen::automata::AutStore;
use ringen::benchgen::programs;
use ringen::core::{solve_guarded, Answer, Guard, RingenConfig};
use ringen::parallel::ParallelConfig;
use ringen::portfolio::{solve_portfolio, EngineStatus, PortfolioAnswer, PortfolioConfig};
use ringen::regelem::{solve_regelem, RegElemAnswer, RegElemConfig};

/// Diag diverges under the regular-invariant engine (Prop. 11: the
/// diagonal is not regular), so the finder sweeps sizes forever; a
/// 50ms deadline must interrupt it cleanly at any thread count.
#[test]
fn divergent_solve_under_deadline_interrupts_with_partial_stats() {
    let sys = programs::diag();
    for threads in [1usize, 4] {
        let mut cfg = RingenConfig::default();
        // An effectively unbounded sweep: only the deadline stops it.
        cfg.finder.max_total_size = 64;
        cfg.saturation.parallel = ParallelConfig::with_threads(threads);
        cfg.finder.parallel = ParallelConfig::with_threads(threads);
        let mut store = AutStore::new();
        let guard = Guard::with_deadline(Duration::from_millis(50));
        let start = Instant::now();
        let (answer, stats) = solve_guarded(&sys, &cfg, &mut store, &guard);
        let elapsed = start.elapsed();
        assert!(
            matches!(answer, Answer::Interrupted),
            "threads={threads}: expected Interrupted, got {answer:?}"
        );
        // Partial stats from the phases that did run.
        assert!(
            stats.saturation.is_some() || stats.finder.is_some(),
            "threads={threads}: expected partial stats, got {stats:?}"
        );
        // Came home near the deadline — not a hang. Generous bound:
        // the engine polls cooperatively, it does not preempt.
        assert!(
            elapsed < Duration::from_secs(30),
            "threads={threads}: took {elapsed:?}"
        );
        // The store survived the interruption: an easy solve on the
        // same store still succeeds.
        let (answer, _) = solve_guarded(&sys, &RingenConfig::quick(), &mut store, &Guard::new());
        assert!(
            matches!(answer, Answer::Unknown(_)),
            "threads={threads}: quick Diag solve should exhaust budgets, got {answer:?}"
        );
    }
}

/// The deadline also bounds the whole portfolio race.
#[test]
fn deadlined_portfolio_race_degrades_gracefully() {
    let sys = programs::even_left_diag(); // no engine solves this one
    for threads in [1usize, 4] {
        let cfg = PortfolioConfig {
            deadline: Some(Duration::from_millis(50)),
            parallel: ParallelConfig::with_threads(threads),
            ..PortfolioConfig::default()
        };
        let start = Instant::now();
        let (answer, stats) = solve_portfolio(&sys, &cfg);
        assert!(
            answer.is_interrupted(),
            "threads={threads}: expected Interrupted, got {answer:?}"
        );
        assert!(stats.timed_out() >= 1, "threads={threads}: {stats:?}");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "threads={threads}"
        );
    }
}

/// The race returns the same verdict as the sequential `solve_regelem`
/// chain on the four `hybrid_portfolio` programs, and in every decided
/// race at least one losing engine is *cancelled* (observed via
/// `PortfolioStats`), not merely left to finish.
#[test]
fn portfolio_matches_sequential_regelem_and_cancels_losers() {
    let cases = [
        ("Even", programs::even()),
        ("IncDec", programs::inc_dec()),
        ("Diag", programs::diag()),
        ("EvenDiag", programs::even_diag()),
    ];
    for (name, sys) in cases {
        let seq_cfg = if name == "EvenDiag" {
            // The regular and elementary phases provably diverge on
            // EvenDiag (Props. 1 and 11); skip straight to the combined
            // phase, as the `ringen-regelem` crate docs do — the
            // verdict is the same, the wall-clock is not.
            RegElemConfig {
                regular: None,
                elementary: None,
                ..RegElemConfig::quick()
            }
        } else {
            RegElemConfig::quick()
        };
        let (sequential, _) = solve_regelem(&sys, &seq_cfg);
        let cfg = PortfolioConfig {
            parallel: ParallelConfig::with_threads(4),
            ..PortfolioConfig::default()
        };
        let (raced, stats) = solve_portfolio(&sys, &cfg);
        let agree = matches!(
            (&sequential, &raced),
            (RegElemAnswer::Sat(..), PortfolioAnswer::Sat(_))
                | (RegElemAnswer::Unsat(_), PortfolioAnswer::Unsat(_))
                | (RegElemAnswer::Unknown, PortfolioAnswer::Unknown)
        );
        assert!(
            agree,
            "{name}: sequential {sequential:?} vs raced {raced:?}"
        );
        assert!(
            stats.winner.is_some(),
            "{name}: every showcase program is decided, got {stats:?}"
        );
        assert!(
            stats.cancelled() >= 1,
            "{name}: expected at least one cancelled loser, got {stats:?}"
        );
        let winner = stats.winner_report().expect("decided race");
        assert_eq!(winner.status, EngineStatus::Won, "{name}");
    }
}
