//! Span-tree integrity of the observability layer under the two hard
//! regimes: random cooperative cancellation (a guard tripping at an
//! arbitrary fuel level mid-solve) and entrant panics inside the
//! portfolio race. In both, every recorded span must come home closed,
//! uniquely identified, and properly nested under a parent whose
//! interval contains it — a trace that loads cleanly in Perfetto no
//! matter where the solve was cut.

use proptest::prelude::*;
use ringen::automata::AutStore;
use ringen::benchgen::programs;
use ringen::chc::{parse_str, ChcSystem};
use ringen::core::portfolio::{race, Engine, EngineVerdict, RaceConfig};
use ringen::core::{solve_guarded, Guard, Recorder, RingenConfig};
use ringen::obs::{ArgVal, SpanRec};
use ringen::parallel::ParallelConfig;
use ringen::portfolio::{solve_portfolio_guarded, PortfolioConfig};

const ENTRANTS: [&str; 4] = ["fmf", "elem", "sizeelem", "regelem"];

/// Every span closed (`end >= start`), ids unique, and every parent
/// reference resolving to a recorded span whose interval contains the
/// child's. Children always close before their parents (same-thread
/// nesting is RAII; the cross-thread race span closes after its
/// entrants), so containment must hold even for traces cut short by
/// cancellation or a panic.
fn assert_integrity(spans: &[SpanRec]) {
    let mut ids = std::collections::HashSet::new();
    for s in spans {
        assert!(ids.insert(s.id), "duplicate span id {} ({})", s.id, s.name);
        assert!(
            s.end_ns >= s.start_ns,
            "span {} closes before it opens",
            s.name
        );
    }
    for s in spans {
        if let Some(p) = s.parent {
            let parent = spans
                .iter()
                .find(|c| c.id == p)
                .unwrap_or_else(|| panic!("span {} has a dangling parent id {p}", s.name));
            assert!(
                parent.start_ns <= s.start_ns && s.end_ns <= parent.end_ns,
                "span {} [{}, {}] escapes its parent {} [{}, {}]",
                s.name,
                s.start_ns,
                s.end_ns,
                parent.name,
                parent.start_ns,
                parent.end_ns
            );
        }
    }
}

/// The `cancel_residue_prop` systems: SAT and UNSAT paths, plus a
/// multi-predicate join that keeps saturation busy for several rounds.
fn systems() -> Vec<ChcSystem> {
    let unsat = r#"
        (declare-datatypes ((Nat 0)) (((Z) (S (pre Nat)))))
        (declare-fun even (Nat) Bool)
        (assert (even Z))
        (assert (forall ((x Nat)) (=> (even x) (even (S (S x))))))
        (assert (=> (even (S (S (S (S Z))))) false))
    "#;
    vec![
        programs::even(),
        parse_str(unsat).expect("template parses"),
        programs::inc_dec(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A guard tripping at an arbitrary fuel level must leave a
    /// well-formed trace: the engines close their spans on the
    /// `Interrupted` exit path, never abandon them.
    #[test]
    fn cancelled_solve_leaves_a_balanced_span_tree(
        which in 0usize..3,
        fuel in 0u64..300,
        threads_idx in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_idx];
        let sys = systems().swap_remove(which);
        let mut cfg = RingenConfig::quick();
        cfg.saturation.parallel = ParallelConfig::with_threads(threads);
        cfg.finder.parallel = ParallelConfig::with_threads(threads);

        let recorder = Recorder::new();
        let g = Guard::with_fuel(fuel).with_recorder(recorder.clone());
        let mut store = AutStore::new();
        let (answer, _) = solve_guarded(&sys, &cfg, &mut store, &g);
        if g.is_cancelled() {
            prop_assert!(
                answer.is_interrupted(),
                "tripped guard must yield Interrupted, got {:?}",
                answer
            );
        } else {
            // The run completed: the phase chain must have recorded.
            prop_assert!(!recorder.snapshot().spans.is_empty());
        }
        assert_integrity(&recorder.snapshot().spans);
    }
}

/// A panicking entrant is isolated by the racer, and its span still
/// closes — tagged with the `panicked` verdict, nested under the race.
#[test]
fn panicking_entrant_still_records_its_span() {
    let recorder = Recorder::new();
    let guard = Guard::new().with_recorder(recorder.clone());
    let cfg = RaceConfig {
        deadline: None,
        parallel: ParallelConfig::with_threads(2),
    };
    let engines = vec![
        Engine::new("boom", |_: &Guard| -> (EngineVerdict, ()) {
            panic!("entrant crashed mid-solve")
        }),
        Engine::new("steady", |_: &Guard| (EngineVerdict::Sat, ())),
    ];
    let (_, stats) = race(engines, &cfg, &guard);
    assert_eq!(stats.panicked(), 1, "{stats:?}");

    let trace = recorder.snapshot();
    assert_integrity(&trace.spans);
    let race_span = trace
        .spans
        .iter()
        .find(|s| s.name == "race")
        .expect("race span");
    let boom = trace
        .spans
        .iter()
        .find(|s| s.name == "boom")
        .expect("panicked entrant must still record its span");
    assert_eq!(boom.parent, Some(race_span.id));
    assert!(
        boom.args
            .iter()
            .any(|(k, v)| *k == "verdict" && matches!(v, ArgVal::Str("panicked"))),
        "panicked entrant span lacks the verdict tag: {:?}",
        boom.args
    );
}

/// The acceptance shape of the tentpole: a portfolio solve records one
/// span per racing entrant under the race span, and the winner carries
/// per-phase child spans.
#[test]
fn portfolio_trace_shows_every_entrant_and_the_winners_phases() {
    let sys = programs::even();
    let recorder = Recorder::new();
    let guard = Guard::new().with_recorder(recorder.clone());
    let cfg = PortfolioConfig {
        parallel: ParallelConfig::with_threads(4),
        ..PortfolioConfig::default()
    };
    let (answer, stats) = solve_portfolio_guarded(&sys, &cfg, &guard);
    assert!(!answer.is_interrupted(), "unbounded race cannot interrupt");

    let trace = recorder.snapshot();
    assert_integrity(&trace.spans);
    let race_span = trace
        .spans
        .iter()
        .find(|s| s.name == "race")
        .expect("race span");
    for name in ENTRANTS {
        assert!(
            trace
                .spans
                .iter()
                .any(|s| s.name == name && s.parent == Some(race_span.id)),
            "entrant {name} missing from the race span"
        );
    }
    // Losers may be cancelled before reaching any instrumented phase,
    // but the winner ran a full chain: it must have phase children.
    let winner = stats.winner_report().expect("Even is decided").name;
    let wspan = trace
        .spans
        .iter()
        .find(|s| s.name == winner && s.parent == Some(race_span.id))
        .expect("winner span");
    assert!(
        trace.spans.iter().any(|s| s.parent == Some(wspan.id)),
        "winning entrant {winner} recorded no phase spans"
    );
}
