//! Property-based integration tests across crates.

use proptest::prelude::*;
use ringen::benchgen::programs;
use ringen::chc::{parse_str, to_smtlib};
use ringen::core::{solve, Answer, RingenConfig};
use ringen::terms::{herbrand::pseudo_random_term, GroundTerm};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The regular invariant for Even agrees with the parity semantics
    /// on arbitrary ground terms.
    #[test]
    fn even_invariant_is_parity(n in 0usize..40) {
        let sys = programs::even();
        let (answer, _) = solve(&sys, &RingenConfig::quick());
        let sat = match answer { Answer::Sat(s) => s, _ => unreachable!("Even is SAT") };
        let even = sys.rels.by_name("even").unwrap();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let t = GroundTerm::iterate(s, GroundTerm::leaf(z), n);
        prop_assert_eq!(sat.invariant.holds(even, &[t]), n % 2 == 0);
    }

    /// Printing and re-parsing any §7 program (or either RegElem
    /// separation program) is a semantic identity: clause counts and
    /// solver verdicts survive the round trip.
    #[test]
    fn smtlib_round_trip(idx in 0usize..7) {
        let sys = match idx {
            0 => programs::even(),
            1 => programs::inc_dec(),
            2 => programs::even_left(),
            3 => programs::diag(),
            4 => programs::lt_gt(),
            5 => programs::even_diag(),
            _ => programs::even_left_diag(),
        };
        let printed = to_smtlib(&sys);
        let reparsed = parse_str(&printed).expect("printer output parses");
        prop_assert_eq!(reparsed.clauses.len(), sys.clauses.len());
        prop_assert!(reparsed.well_sorted().is_ok());
    }

    /// The EvenLeft invariant agrees with the leftmost-spine-parity
    /// semantics on pseudo-random trees.
    #[test]
    fn evenleft_invariant_matches_semantics(seed in 0u64..500) {
        let sys = programs::even_left();
        let (answer, _) = solve(&sys, &RingenConfig::quick());
        let sat = match answer { Answer::Sat(s) => s, _ => unreachable!("EvenLeft is SAT") };
        let el = sys.rels.by_name("evenleft").unwrap();
        let tree = sys.sig.sort_by_name("Tree").unwrap();
        let t = pseudo_random_term(&sys.sig, tree, seed, 7).unwrap();
        // Reference semantics: leftmost spine length parity.
        fn left_depth(t: &GroundTerm) -> usize {
            if t.args().is_empty() { 0 } else { 1 + left_depth(&t.args()[0]) }
        }
        // The invariant over-approximates the least model {even spines}
        // and must stay disjoint from {t : evenleft(t) ∧ evenleft(node(t,_))}.
        // For this program the model-derived invariant is exactly spine
        // parity, which we check directly.
        prop_assert_eq!(
            sat.invariant.holds(el, std::slice::from_ref(&t)),
            left_depth(&t).is_multiple_of(2)
        );
    }

    /// The certified RegElem invariant of EvenDiag never witnesses a
    /// query violation on ground pairs: it stays inside the diagonal
    /// and never holds for two consecutive diagonal pairs.
    #[test]
    fn evendiag_invariant_respects_both_queries(n in 0usize..20, m in 0usize..20) {
        use ringen::regelem::{solve_regelem, RegElemAnswer, RegElemConfig, RegElemInvariant};
        use std::sync::OnceLock;
        static SOLVED: OnceLock<(ringen::chc::ChcSystem, RegElemInvariant)> = OnceLock::new();
        let (sys, inv) = SOLVED.get_or_init(|| {
            let sys = programs::even_diag();
            let cfg =
                RegElemConfig { regular: None, elementary: None, ..RegElemConfig::quick() };
            let (answer, _) = solve_regelem(&sys, &cfg);
            let inv = match answer {
                RegElemAnswer::Sat(inv, _) => *inv,
                other => unreachable!("EvenDiag is SAT, got {other:?}"),
            };
            (sys, inv)
        });
        let p = sys.rels.by_name("evenpair").unwrap();
        let z = sys.sig.func_by_name("Z").unwrap();
        let s = sys.sig.func_by_name("S").unwrap();
        let num = |k: usize| GroundTerm::iterate(s, GroundTerm::leaf(z), k);
        // Query 1: inv ∧ x ≠ y is impossible.
        if n != m {
            prop_assert!(!inv.holds(p, &[num(n), num(m)]));
        }
        // Query 2: inv(x, y) ∧ inv(S x, S y) is impossible.
        prop_assert!(
            !(inv.holds(p, &[num(n), num(m)])
                && inv.holds(p, &[num(n + 1), num(m + 1)]))
        );
        // And the least model is contained: even diagonals hold.
        if n == m && n % 2 == 0 {
            prop_assert!(inv.holds(p, &[num(n), num(m)]));
        }
    }
}
